//! Offline shim for the subset of the `criterion` API used by the RayFlex-RS workspace.
//!
//! The build environment for this repository has no access to crates.io, so `cargo bench` runs
//! against this minimal wall-clock harness instead: each `bench_function` warms up for
//! `warm_up_time`, sizes its iteration count so one sample lasts roughly
//! `measurement_time / sample_size`, takes `sample_size` samples, and reports the median time per
//! iteration plus element throughput when a [`Throughput`] was declared.  There is no statistical
//! analysis, no HTML report and no baseline comparison.  To switch back to the real crate,
//! repoint the `criterion` entry of the root `[workspace.dependencies]` table at crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup; the shim treats all variants identically (setup is always
/// excluded from timing).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small routine inputs.
    SmallInput,
    /// Large routine inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, time: Duration) -> Self {
        self.warm_up_time = time;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let report = run_bench(self, name, None, &mut f);
        println!("{report}");
        self
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let report = run_bench(self.criterion, &full, self.throughput, &mut f);
        println!("{report}");
        self
    }

    /// Ends the group (a no-op in the shim, kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures to time the hot routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F) -> Duration {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(
    config: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) -> String {
    // Warm up and estimate the cost of one iteration.
    let warmup_deadline = Instant::now() + config.warm_up_time;
    let mut per_iter = time_once(f);
    while Instant::now() < warmup_deadline {
        per_iter = time_once(f).min(per_iter);
    }
    let per_iter_ns = per_iter.as_nanos().max(1);
    let per_sample_budget = config.measurement_time.as_nanos() / config.sample_size as u128;
    let iters = (per_sample_budget / per_iter_ns).clamp(1, u128::from(u32::MAX)) as u64;

    let mut samples: Vec<f64> = (0..config.sample_size)
        .map(|_| {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            bencher.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = samples[samples.len() / 2];

    let mut report = format!("{name:<44} time: {:>12}/iter", format_seconds(median));
    if let Some(throughput) = throughput {
        let (amount, unit) = match throughput {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = amount as f64 / median;
        report.push_str(&format!("  thrpt: {:>14}", format_rate(rate, unit)));
    }
    report
}

fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn format_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}/s", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}/s")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_functions_run_and_report() {
        let mut criterion = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = criterion.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        let mut runs = 0u64;
        group.bench_function("count", |bencher| {
            bencher.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut criterion = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        criterion.bench_function("batched", |bencher| {
            bencher.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn rates_and_times_format_with_sensible_units() {
        assert_eq!(format_seconds(2.0), "2.000 s");
        assert_eq!(format_seconds(2e-3), "2.000 ms");
        assert_eq!(format_seconds(2e-6), "2.000 us");
        assert_eq!(format_seconds(2e-9), "2.0 ns");
        assert_eq!(format_rate(5e9, "elem"), "5.000 Gelem/s");
        assert_eq!(format_rate(5e6, "elem"), "5.000 Melem/s");
        assert_eq!(format_rate(5e3, "elem"), "5.000 Kelem/s");
        assert_eq!(format_rate(5.0, "elem"), "5.0 elem/s");
    }
}
