//! The runner: configuration, deterministic per-test seeding, and case errors.

use std::fmt;

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// The random generator threaded through strategies.
pub type TestRng = StdRng;

/// Maximum consecutive filter rejections before a strategy is declared exhausted.
const MAX_REJECTS: usize = 65_536;

/// Per-test configuration (`cases` only; the shim has no forking, persistence or shrinking).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment override.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property inside a [`proptest!`](crate::proptest) body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A deterministic generator seeded from the test name (FNV-1a), so every run of a test explores
/// the same case stream.
#[must_use]
pub fn rng_for_test(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Draws one value from a strategy, retrying filter rejections.
///
/// # Panics
///
/// Panics if the strategy rejects `MAX_REJECTS` (65536) values in a row (mirrors proptest's
/// "too many global rejects" error).
pub fn generate_value<S: Strategy>(strategy: &S, rng: &mut TestRng, test_name: &str) -> S::Value {
    for _ in 0..MAX_REJECTS {
        if let Some(value) = strategy.generate(rng) {
            return value;
        }
    }
    panic!("proptest {test_name}: strategy rejected {MAX_REJECTS} values in a row");
}
