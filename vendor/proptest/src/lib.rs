//! Offline shim for the subset of the `proptest` API used by the RayFlex-RS workspace.
//!
//! The build environment for this repository has no access to crates.io, so this crate provides a
//! minimal property-testing engine with the same surface the workspace's tests are written
//! against: the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with `prop_map` / `prop_filter` /
//! `prop_filter_map`, range / tuple / array strategies, [`any`], [`prop_oneof!`],
//! `prop::array::uniform*`, `prop::collection::vec`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: value streams differ, there is **no shrinking** (a failing
//! case reports its inputs verbatim), and each test's random stream is seeded deterministically
//! from the test name, so runs are reproducible by construction.  Case counts honour the
//! `PROPTEST_CASES` environment variable as an override.  To switch back to the real crate,
//! repoint the `proptest` entry of the root `[workspace.dependencies]` table at crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod prop {
    //! The `prop::` helper namespace (`prop::array`, `prop::collection`).

    pub mod array {
        //! Fixed-size array strategies.

        use crate::strategy::{Strategy, UniformArray};

        /// Strategy producing `[S::Value; 8]` by sampling `strategy` eight times.
        pub fn uniform8<S: Strategy>(strategy: S) -> UniformArray<S, 8> {
            UniformArray::new(strategy)
        }

        /// Strategy producing `[S::Value; 16]` by sampling `strategy` sixteen times.
        pub fn uniform16<S: Strategy>(strategy: S) -> UniformArray<S, 16> {
            UniformArray::new(strategy)
        }
    }

    pub mod collection {
        //! Variable-size collection strategies.

        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// Strategy producing a `Vec` whose length is drawn uniformly from `length` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
            VecStrategy::new(element, length)
        }
    }
}

/// Strategy covering a type's full value domain (`any::<u32>()`, `any::<bool>()`, ...).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod prelude {
    //! Single-import prelude mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, reporting the generated inputs on failure
/// instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $({
                // Callers conventionally parenthesise range strategies (`(-1.0f32..1.0)`);
                // don't let that style choice trip `-D warnings` builds.
                #[allow(unused_parens)]
                let strategy = $strategy;
                $crate::strategy::Strategy::boxed(strategy)
            }),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// that runs `body` against `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.effective_cases();
                let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
                for case in 0..cases {
                    $(
                        let $arg = $crate::test_runner::generate_value(
                            &($strat),
                            &mut rng,
                            stringify!($name),
                        );
                    )+
                    let inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}", &$arg));
                            s.push_str("; ");
                        )+
                        s
                    };
                    let outcome = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{cases}: {error}\n  inputs: {inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}
