//! The [`Strategy`] trait and the strategy combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A recipe for generating values of one type.
///
/// `generate` returns `None` when a filter rejects the sampled value; the runner retries until a
/// value is produced (with a global cap, see
/// [`generate_value`](crate::test_runner::generate_value)).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Attempts to generate one value.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `map`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }

    /// Rejects generated values for which `filter` returns `false`; `reason` is kept for API
    /// compatibility (real proptest reports it on exhaustion).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        filter: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            filter,
        }
    }

    /// Combined map + filter: values for which `filter_map` returns `None` are rejected.
    fn prop_filter_map<T, F: Fn(Self::Value) -> Option<T>>(
        self,
        reason: &'static str,
        filter_map: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            reason,
            filter_map,
        }
    }

    /// Erases the concrete strategy type (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate(rng).map(&self.map)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    filter: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.filter)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    filter_map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate(rng).and_then(&self.filter_map)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<V>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between strategies (the engine behind [`prop_oneof!`](crate::prop_oneof)).
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Creates a choice over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

/// Numeric ranges are strategies sampling uniformly from the range.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// An array of strategies generates an array of values (e.g. `[aabb(), aabb(), aabb(), aabb()]`).
impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let mut values = Vec::with_capacity(N);
        for strategy in self {
            values.push(strategy.generate(rng)?);
        }
        values.try_into().ok().or_else(|| unreachable!())
    }
}

/// One strategy sampled `N` times (see [`prop::array`](crate::prop::array)).
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> UniformArray<S, N> {
    pub(crate) fn new(element: S) -> Self {
        UniformArray { element }
    }
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let mut values = Vec::with_capacity(N);
        for _ in 0..N {
            values.push(self.element.generate(rng)?);
        }
        values.try_into().ok().or_else(|| unreachable!())
    }
}

/// A `Vec` strategy (see [`prop::collection::vec`](crate::prop::collection::vec)).
pub struct VecStrategy<S> {
    element: S,
    length: Range<usize>,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, length: Range<usize>) -> Self {
        VecStrategy { element, length }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let len = rng.gen_range(self.length.clone());
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(self.element.generate(rng)?);
        }
        Some(values)
    }
}

/// Types with a canonical full-domain strategy (see [`any`](crate::any)).
pub trait Arbitrary: Sized {
    /// Samples one value covering the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

/// The strategy returned by [`any`](crate::any).
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}
