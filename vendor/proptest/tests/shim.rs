//! Self-tests of the proptest shim: strategies honour their constraints, the macro wires
//! configuration and generation together, and failing properties actually fail.

use proptest::prelude::*;

fn small_even() -> impl Strategy<Value = u32> {
    (0u32..1000).prop_filter("even", |n| n % 2 == 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ranges_stay_in_bounds(x in 5u32..10, y in -2.0f32..2.0) {
        prop_assert!((5..10).contains(&x));
        prop_assert!((-2.0..2.0).contains(&y));
    }

    #[test]
    fn filters_hold(n in small_even()) {
        prop_assert_eq!(n % 2, 0);
    }

    #[test]
    fn maps_apply(s in (0u32..50).prop_map(|n| n * 3)) {
        prop_assert_eq!(s % 3, 0, "{} is a multiple of three", s);
    }

    #[test]
    fn filter_maps_apply(v in (0u32..100).prop_filter_map("nonzero", |n| n.checked_sub(50))) {
        prop_assert!(v <= 49);
    }

    #[test]
    fn tuples_and_arrays_compose(
        pair in (0u32..10, 10u32..20),
        arr in [0u32..5, 5u32..10, 10u32..15, 15u32..20],
        uniform in proptest::prop::array::uniform8(0u32..3),
    ) {
        let (a, b) = pair;
        prop_assert!(a < 10 && b >= 10);
        for (i, v) in arr.iter().enumerate() {
            prop_assert!((i as u32 * 5..(i as u32 + 1) * 5).contains(v));
        }
        prop_assert!(uniform.iter().all(|&v| v < 3));
    }

    #[test]
    fn collections_honour_lengths(v in prop::collection::vec(0u32..7, 3..9)) {
        prop_assert!((3..9).contains(&v.len()));
        prop_assert!(v.iter().all(|&x| x < 7));
    }

    #[test]
    fn oneof_picks_every_branch(x in prop_oneof![Just(1u32), Just(2u32), (10u32..20)]) {
        prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
    }

    #[test]
    fn any_produces_values(bits in any::<u32>(), flag in any::<bool>()) {
        // Domain coverage is probabilistic; just exercise the strategies.
        let _ = (bits, flag);
        prop_assert!(true);
    }
}

// No `#[test]` attribute here on purpose: the generated function is called by the should_panic
// wrappers below instead of by the test harness.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    fn always_fails(x in 0u32..10) {
        prop_assert!(x > 100, "x is only {}", x);
    }

    fn eq_always_fails(x in 0u32..10) {
        prop_assert_eq!(x, x + 1);
    }
}

#[test]
#[should_panic(expected = "failed at case")]
fn failing_properties_panic_with_case_context() {
    always_fails();
}

#[test]
#[should_panic(expected = "assertion failed")]
fn failing_equalities_report_both_sides() {
    eq_always_fails();
}

#[test]
fn streams_are_deterministic_per_test_name() {
    use proptest::strategy::Strategy as _;
    let strategy = 0u64..u64::MAX;
    let mut a = proptest::test_runner::rng_for_test("some_test");
    let mut b = proptest::test_runner::rng_for_test("some_test");
    let mut c = proptest::test_runner::rng_for_test("other_test");
    let va = strategy.generate(&mut a);
    assert_eq!(va, strategy.generate(&mut b));
    assert_ne!(va, strategy.generate(&mut c));
}
