//! Offline shim for the subset of the `rand` 0.8 API used by the RayFlex-RS workspace.
//!
//! The build environment for this repository has no access to crates.io, so the workspace vendors
//! this minimal, dependency-free implementation instead: [`rngs::StdRng`] is a small-state
//! xoshiro256++ generator seeded through SplitMix64, and the [`Rng`] trait provides `gen_range`
//! over the integer and float range types the workspace samples from, plus `gen_bool` and `gen`.
//!
//! The shim intentionally implements *only* what the workspace calls.  It is deterministic for a
//! given seed (all workspace stimulus is seeded), but its value streams do **not** match the real
//! `rand` crate — nothing in the workspace depends on specific stream values, only on seeded
//! reproducibility.  To switch back to the real crate, repoint the `rand` entry of the root
//! `[workspace.dependencies]` table at crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a full value domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the generator.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // The unit interval is computed in f64 and the result rounded once at the end;
                // rounding can still land exactly on `end`, so the exclusive bound is enforced
                // explicitly (`end` occurs with probability ~2^-25 in f32 otherwise).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let span = self.end as f64 - self.start as f64;
                let value = (self.start as f64 + span * unit) as $t;
                if value >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    value.max(self.start)
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                let span = end as f64 - start as f64;
                ((start as f64 + span * unit) as $t).clamp(start, end)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + value) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let value = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + value) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value interface (the `rand` 0.8 `Rng` trait subset).
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Samples a value covering the type's full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

/// Construction of seeded generators (the `rand` 0.8 `SeedableRng` trait subset).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! The standard generator.

    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256++ generator (the shim's stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as xoshiro recommends.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-3.0f32..5.0);
            assert!((-3.0..5.0).contains(&x));
            let y: f32 = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn integer_ranges_stay_in_bounds_and_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let x = rng.gen_range(0usize..6);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 should appear");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_covers_full_width() {
        let mut rng = StdRng::seed_from_u64(13);
        let wide: u16 = rng.gen();
        let _ = wide;
        let any_high_bit = (0..64).any(|_| rng.gen::<u64>() > u64::from(u32::MAX));
        assert!(any_high_bit);
    }
}
