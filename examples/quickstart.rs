//! Quickstart: issue ray–box and ray–triangle beats through the RayFlex datapath, both through
//! the fast functional model and through the cycle-accurate eleven-stage elastic pipeline.
//!
//! Run with `cargo run --example quickstart`.

use rayflex::core::{
    PipelineConfig, RayFlexDatapath, RayFlexPipeline, RayFlexRequest, PIPELINE_DEPTH,
};
use rayflex::geometry::{Aabb, Ray, Triangle, Vec3};

fn main() {
    // A ray shooting down +z from z = -5, and the four children of a BVH node.
    let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
    let boxes = [
        Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0)),
        Aabb::new(Vec3::new(-1.0, -1.0, 3.0), Vec3::new(1.0, 1.0, 4.0)),
        Aabb::new(Vec3::new(9.0, 9.0, 9.0), Vec3::new(10.0, 10.0, 10.0)),
        Aabb::new(Vec3::new(-1.0, -1.0, 6.0), Vec3::new(1.0, 1.0, 7.0)),
    ];
    let triangle = Triangle::new(
        Vec3::new(-1.0, -1.0, 3.5),
        Vec3::new(1.0, -1.0, 3.5),
        Vec3::new(0.0, 1.0, 3.5),
    );

    // --- Functional model: one call per beat. ---------------------------------------------------
    let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());

    let box_beat = RayFlexRequest::ray_box(0, &ray, &boxes);
    let box_result = datapath.execute(&box_beat).box_result.expect("box beat");
    println!("ray-box beat:");
    println!("  hits              = {:?}", box_result.hit);
    println!("  entry distances   = {:?}", box_result.t_entry);
    println!("  traversal order   = {:?}", box_result.traversal_order);

    let tri_beat = RayFlexRequest::ray_triangle(1, &ray, &triangle);
    let tri_result = datapath
        .execute(&tri_beat)
        .triangle_result
        .expect("triangle beat");
    println!("ray-triangle beat:");
    println!("  hit               = {}", tri_result.hit);
    println!(
        "  distance          = {} / {} = {}",
        tri_result.t_num,
        tri_result.det,
        tri_result.distance()
    );

    // --- Cycle-accurate pipeline: same results, plus timing. ------------------------------------
    let mut pipeline = RayFlexPipeline::new(PipelineConfig::baseline_unified());
    let beats = vec![box_beat; 32];
    let responses = pipeline.execute_batch(&beats);
    let stats = pipeline.stats();
    println!();
    println!(
        "pipelined {} ray-box beats in {} cycles (depth {}, so II = 1 beat/cycle)",
        responses.len(),
        stats.cycles,
        PIPELINE_DEPTH
    );
    println!(
        "stage-2 adder operations recorded for the power model: {}",
        pipeline.activity().fu_ops(2, rayflex::hw::FuKind::Adder)
    );
}
