//! Batched and parallel ray-stream traversal: builds a scene, generates a camera ray stream,
//! traces it under the scalar-reference, wavefront and parallel execution policies through the
//! single policy-driven entry point ([`TraversalEngine::trace`]), and reports their agreement
//! and relative throughput.

use std::time::Instant;

use rayflex::geometry::Vec3;
use rayflex::rtunit::{default_parallelism, ExecPolicy, Scene, TraceRequest, TraversalEngine};
use rayflex::workloads::{rays, scenes};

fn main() {
    let scene = Scene::flat(scenes::icosphere(3, 5.0, Vec3::new(0.0, 0.0, 20.0)));
    // The SoA packet is the storage format; the policy API traces plain ray slices.
    let stream = rays::camera_grid_packet(64, 64, 12.0);
    let slice = stream.to_rays();
    let request = TraceRequest::closest_hit(&scene, &slice);
    println!(
        "scene: icosphere with {} triangles, stream of {} rays",
        scene.triangle_count(),
        stream.len()
    );

    // Scalar reference: one ray at a time through the register-accurate datapath emulation.
    let mut scalar = TraversalEngine::baseline();
    let start = Instant::now();
    let scalar_hits = scalar.trace(&request, &ExecPolicy::scalar()).into_closest();
    let scalar_time = start.elapsed();

    // Wavefront: the whole stream in flight, beats dispatched in bulk on the fast model.
    let mut wavefront = TraversalEngine::baseline();
    let start = Instant::now();
    let wavefront_hits = wavefront
        .trace(&request, &ExecPolicy::wavefront())
        .into_closest();
    let wavefront_time = start.elapsed();

    // Parallel: the wavefront sharded across worker threads.
    let threads = default_parallelism();
    let mut parallel = TraversalEngine::baseline();
    let start = Instant::now();
    let parallel_hits = parallel
        .trace(&request, &ExecPolicy::parallel(threads))
        .into_closest();
    let parallel_time = start.elapsed();

    assert_eq!(scalar_hits, wavefront_hits, "policies must agree");
    assert_eq!(scalar_hits, parallel_hits, "parallel shards must agree");
    assert_eq!(scalar.stats(), wavefront.stats());
    assert_eq!(scalar.stats(), parallel.stats());

    let hit_count = scalar_hits.iter().flatten().count();
    let stats = scalar.stats();
    println!(
        "hits: {hit_count}/{} rays, {} box beats + {} triangle beats",
        stream.len(),
        stats.box_ops,
        stats.triangle_ops
    );
    let rate = |t: std::time::Duration| stream.len() as f64 / t.as_secs_f64();
    println!(
        "scalar:    {:>8.1} ms  ({:>9.0} rays/s)",
        scalar_time.as_secs_f64() * 1e3,
        rate(scalar_time)
    );
    println!(
        "wavefront: {:>8.1} ms  ({:>9.0} rays/s, {:.1}x)",
        wavefront_time.as_secs_f64() * 1e3,
        rate(wavefront_time),
        scalar_time.as_secs_f64() / wavefront_time.as_secs_f64()
    );
    println!(
        "parallel:  {:>8.1} ms  ({:>9.0} rays/s, {:.1}x on {threads} thread(s))",
        parallel_time.as_secs_f64() * 1e3,
        rate(parallel_time),
        scalar_time.as_secs_f64() / parallel_time.as_secs_f64()
    );
}
