//! Batched and parallel ray-stream traversal: builds a scene, packs a camera ray stream into a
//! structure-of-arrays packet, traces it through the scalar, wavefront and parallel frontends,
//! and reports their agreement and relative throughput.

use std::time::Instant;

use rayflex::core::PipelineConfig;
use rayflex::geometry::Vec3;
use rayflex::rtunit::{default_parallelism, trace_packet_parallel, Bvh4, TraversalEngine};
use rayflex::workloads::{rays, scenes};

fn main() {
    let triangles = scenes::icosphere(3, 5.0, Vec3::new(0.0, 0.0, 20.0));
    let bvh = Bvh4::build(&triangles);
    let stream = rays::camera_grid_packet(64, 64, 12.0);
    let slice = stream.to_rays();
    println!(
        "scene: icosphere with {} triangles, stream of {} rays",
        triangles.len(),
        stream.len()
    );

    // Scalar reference: one ray at a time through the register-accurate datapath emulation.
    let mut scalar = TraversalEngine::baseline();
    let start = Instant::now();
    let scalar_hits = scalar.closest_hits(&bvh, &triangles, &slice);
    let scalar_time = start.elapsed();

    // Wavefront: the whole stream in flight, beats dispatched in bulk on the fast model.
    let mut wavefront = TraversalEngine::baseline();
    let start = Instant::now();
    let wavefront_hits = wavefront.closest_hits_stream(&bvh, &triangles, &stream);
    let wavefront_time = start.elapsed();

    // Parallel: the wavefront frontend sharded across worker threads.
    let threads = default_parallelism();
    let start = Instant::now();
    let (parallel_hits, parallel_stats) = trace_packet_parallel(
        PipelineConfig::baseline_unified(),
        &bvh,
        &triangles,
        &stream,
        threads,
    );
    let parallel_time = start.elapsed();

    assert_eq!(scalar_hits, wavefront_hits, "frontends must agree");
    assert_eq!(scalar_hits, parallel_hits, "parallel shards must agree");
    assert_eq!(scalar.stats(), wavefront.stats());
    assert_eq!(scalar.stats(), parallel_stats);

    let hit_count = scalar_hits.iter().flatten().count();
    let stats = scalar.stats();
    println!(
        "hits: {hit_count}/{} rays, {} box beats + {} triangle beats",
        stream.len(),
        stats.box_ops,
        stats.triangle_ops
    );
    let rate = |t: std::time::Duration| stream.len() as f64 / t.as_secs_f64();
    println!(
        "scalar:    {:>8.1} ms  ({:>9.0} rays/s)",
        scalar_time.as_secs_f64() * 1e3,
        rate(scalar_time)
    );
    println!(
        "wavefront: {:>8.1} ms  ({:>9.0} rays/s, {:.1}x)",
        wavefront_time.as_secs_f64() * 1e3,
        rate(wavefront_time),
        scalar_time.as_secs_f64() / wavefront_time.as_secs_f64()
    );
    println!(
        "parallel:  {:>8.1} ms  ({:>9.0} rays/s, {:.1}x on {threads} thread(s))",
        parallel_time.as_secs_f64() * 1e3,
        rate(parallel_time),
        scalar_time.as_secs_f64() / parallel_time.as_secs_f64()
    );
}
