//! Explore the paper's design space interactively: print the Fig. 4c stage map of any
//! configuration, its area at a chosen clock and its power per operating mode — the workflow a
//! researcher would use RayFlex for when sizing an RT-unit datapath.
//!
//! Run with `cargo run --release --example design_space [clock_mhz]`.

use rayflex::core::activity::full_throughput_trace;
use rayflex::core::inventory::build_inventory;
use rayflex::core::{Opcode, PipelineConfig};
use rayflex::synth::report::Table;
use rayflex::synth::{estimate_area, estimate_power, CellLibrary};

fn main() {
    let clock_mhz: f64 = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(1000.0);
    let library = CellLibrary::freepdk15();
    println!(
        "RayFlex design-space exploration at {clock_mhz:.0} MHz ({} library)\n",
        library.name()
    );

    let mut area_table = Table::new(vec![
        "configuration",
        "adders",
        "multipliers",
        "squarers",
        "register bits",
        "area (um^2)",
        "peak ops/cycle",
    ]);
    for config in PipelineConfig::evaluated_configs() {
        let inventory = build_inventory(&config);
        let area = estimate_area(&inventory, clock_mhz, &library);
        area_table.add_row(vec![
            config.name(),
            inventory.fu_count(rayflex::hw::FuKind::Adder).to_string(),
            inventory
                .fu_count(rayflex::hw::FuKind::Multiplier)
                .to_string(),
            inventory.fu_count(rayflex::hw::FuKind::Squarer).to_string(),
            inventory.register_bits().to_string(),
            format!("{:.0}", area.total()),
            inventory.peak_ops_per_cycle().to_string(),
        ]);
    }
    println!("{}", area_table.render());

    let mut power_table = Table::new(vec![
        "configuration",
        "ray-box (mW)",
        "ray-triangle (mW)",
        "euclidean (mW)",
        "cosine (mW)",
    ]);
    for config in PipelineConfig::evaluated_configs() {
        let inventory = build_inventory(&config);
        let mut row = vec![config.name()];
        for opcode in Opcode::ALL {
            if config.supports(opcode) {
                let trace = full_throughput_trace(opcode, &config, 100);
                let power = estimate_power(&inventory, &trace, clock_mhz, &library);
                row.push(format!("{:.1}", power.total_mw()));
            } else {
                row.push("-".to_string());
            }
        }
        power_table.add_row(row);
    }
    println!("{}", power_table.render());

    println!("Stage map of the baseline-unified pipeline (Fig. 4c):");
    println!("{}", build_inventory(&PipelineConfig::baseline_unified()));
}
