//! Render a procedural scene through the RT-unit substrate: build a four-wide BVH over an
//! icosphere mesh (the repository's bunny stand-in), cast one primary ray per pixel through the
//! RayFlex datapath, shade the hits and print the image as ASCII art, then report the traversal
//! statistics and a first-order cycle estimate from the simplified RT-unit timing model.
//!
//! Run with `cargo run --release --example render_scene`.

use rayflex::core::PipelineConfig;
use rayflex::geometry::Vec3;
use rayflex::rtunit::{Bvh4, Camera, Renderer, RtUnit, RtUnitConfig};
use rayflex::workloads::scenes;

fn main() {
    // The scene: a subdivided icosphere hovering above a quad "floor" wall behind it.
    let mut triangles = scenes::icosphere(3, 4.0, Vec3::new(0.0, 0.0, 18.0));
    triangles.extend(scenes::quad_wall(6, 5.0, 30.0));
    let bvh = Bvh4::build(&triangles);
    println!(
        "scene: {} triangles, BVH with {} nodes, depth {}",
        triangles.len(),
        bvh.node_count(),
        bvh.depth()
    );

    // Render a small frame entirely through datapath beats.
    let camera = Camera::looking_at(Vec3::new(0.0, 1.5, 0.0), Vec3::new(0.0, 0.0, 18.0));
    let (width, height) = (72, 36);
    let mut renderer = Renderer::with_config(PipelineConfig::baseline_unified());
    let image = renderer.render(&bvh, &triangles, &camera, width, height);
    println!("{}", image.to_ascii());

    let stats = renderer.stats();
    println!(
        "primary rays: {}   ray-box beats: {}   ray-triangle beats: {}   coverage: {:.1}%",
        stats.rays,
        stats.box_ops,
        stats.triangle_ops,
        image.coverage() * 100.0
    );

    // First-order timing through the simplified RT-unit scheduler: compare the RayFlex 11-cycle
    // datapath against the 2-cycle assumption Vulkan-Sim uses (§IV-B of the paper).
    let rays: Vec<_> = (0..width * height / 4)
        .map(|i| {
            let x = i % (width / 2);
            let y = i / (width / 2);
            camera.primary_ray(x * 2, y * 2, width, height)
        })
        .collect();
    let (_, rayflex_timing) =
        RtUnit::with_configs(PipelineConfig::baseline_unified(), RtUnitConfig::default())
            .trace_rays(&bvh, &triangles, &rays);
    let (_, optimistic_timing) = RtUnit::with_configs(
        PipelineConfig::baseline_unified(),
        RtUnitConfig {
            datapath_latency: 2,
            ..RtUnitConfig::default()
        },
    )
    .trace_rays(&bvh, &triangles, &rays);
    println!(
        "RT-unit estimate over {} rays: {} cycles with the 11-cycle RayFlex datapath, {} cycles \
         with a 2-cycle datapath assumption ({:.1}% faster — the Vulkan-Sim configuration is \
         optimistic, as §IV-B argues)",
        rays.len(),
        rayflex_timing.cycles,
        optimistic_timing.cycles,
        (1.0 - optimistic_timing.cycles as f64 / rayflex_timing.cycles as f64) * 100.0
    );
}
