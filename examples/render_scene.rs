//! Render a procedural scene through the RT-unit substrate: build a four-wide BVH over the lit
//! scene preset (floor + occluder sphere + grounded contact sphere), run the multi-pass deferred
//! renderer — a closest-hit primary pass, an any-hit shadow pass and an any-hit
//! ambient-occlusion pass — print both the primary-only and the shadowed+AO frame as ASCII art,
//! then report the traversal statistics and a first-order cycle estimate from the simplified
//! RT-unit timing model.
//!
//! Run with `cargo run --release --example render_scene`.  Flags:
//!
//! * `--mode scalar|wavefront|parallel|fused` — the execution policy every pass stream is
//!   traced under (default `wavefront`); all modes render bit-identical frames, so the flag is
//!   a live demonstration of the `ExecPolicy` invariant.
//! * `--bounce` — adds the one-bounce mirror-reflection pass; under `--mode fused` its bounce
//!   closest-hit stream and the shadow any-hit stream share bulk passes over one datapath, and
//!   the example prints the per-kind beat mix the fusion produced.
//! * `--instanced` — renders the lit scene as a two-level TLAS/BLAS scene (one BLAS, three
//!   placed instances) instead of one flat BVH, and cross-checks that the instanced frame is
//!   bit-identical to rendering `Scene::flatten()` of the same geometry.  CI smokes this path
//!   once per `--mode`.
//! * `--corrupt` — deliberately poisons the scene (a NaN vertex, or a NaN instance transform
//!   under `--instanced`) and renders through the hardened `try_render` entry point: the run
//!   prints the structured `invalid scene` error and exits with status 2 instead of panicking.
//!   CI smokes this path.
//!
//! Setting `RAYFLEX_SMOKE=1` shrinks the frame and skips the timing sweep — the CI smoke mode
//! that keeps the example from rotting (CI runs it once per `--mode`).

use rayflex::core::PipelineConfig;
use rayflex::geometry::{Affine, Vec3};
use rayflex::rtunit::{
    Blas, Bvh4, Camera, ExecMode, ExecPolicy, FrameDesc, Instance, RenderPasses, Renderer, RtUnit,
    RtUnitConfig, Scene,
};
use rayflex::workloads::scenes;

/// The valid `--mode` values, straight from the mode enum so the help text can never go stale.
fn mode_list() -> String {
    ExecMode::ALL
        .iter()
        .map(|mode| mode.name())
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let smoke = std::env::var("RAYFLEX_SMOKE").is_ok_and(|v| v != "0");
    let args: Vec<String> = std::env::args().collect();
    let bounce = args.iter().any(|arg| arg == "--bounce");
    let corrupt = args.iter().any(|arg| arg == "--corrupt");
    let instanced = args.iter().any(|arg| arg == "--instanced");
    let mode = args
        .iter()
        .position(|arg| arg == "--mode")
        .map(|at| {
            let Some(name) = args.get(at + 1) else {
                eprintln!("--mode needs a value; valid modes: {}", mode_list());
                std::process::exit(2);
            };
            ExecMode::parse(name).unwrap_or_else(|| {
                eprintln!("unknown mode {name:?}; valid modes: {}", mode_list());
                std::process::exit(2);
            })
        })
        .unwrap_or(ExecMode::Wavefront);
    let policy = ExecPolicy::with_mode(mode);
    let (width, height) = if smoke { (36, 18) } else { (72, 36) };

    // The scene: a floor, a floating occluder icosphere and a small grounded sphere, with a
    // point light placed so the occluder's shadow falls across the floor.
    let scene = scenes::lit_scene(if smoke { 1 } else { 3 }, 24.0);
    let world = if instanced {
        // Two-level form: the lit scene as one BLAS, placed three times (the extra copies sit
        // far off to the sides, outside the camera frustum, so the visible frame must stay
        // bit-identical to the flat render of the original geometry).
        Scene::instanced(
            vec![Blas::new(scene.triangles.clone())],
            vec![
                Instance::new(0, Affine::identity()),
                Instance::new(0, Affine::translation(Vec3::new(-500.0, 0.0, 0.0))),
                Instance::new(0, Affine::translation(Vec3::new(500.0, 0.0, 0.0))),
            ],
        )
    } else {
        Scene::flat(scene.triangles.clone())
    };
    match world.bvh() {
        Some(bvh) => println!(
            "scene: {} triangles, BVH with {} nodes, depth {} — policy: {}",
            world.triangle_count(),
            bvh.node_count(),
            bvh.depth(),
            policy.mode,
        ),
        None => println!(
            "scene: {} instances x {} BLAS triangles = {} placed triangles, TLAS with {} nodes \
             — policy: {}",
            world.instances().len(),
            world.blas_list()[0].triangles().len(),
            world.triangle_count(),
            world.tlas().map_or(0, Bvh4::node_count),
            policy.mode,
        ),
    }

    let camera = Camera::looking_at(scene.eye, scene.target);
    let mut renderer = Renderer::with_config(PipelineConfig::baseline_unified());

    if corrupt {
        // The hardened-path demonstration CI smokes: poison one vertex (or one instance
        // placement) and render through `try_render`, which must reject the scene with a
        // structured error — no panic, a clean nonzero exit.
        let poisoned_world = if instanced {
            let mut poisoned = world.clone();
            poisoned.set_instance_transform(1, Affine::translation(Vec3::new(f32::NAN, 0.0, 0.0)));
            poisoned
        } else {
            let mut poisoned = scene.triangles.clone();
            poisoned[0].v0.x = f32::NAN;
            Scene::flat(poisoned)
        };
        match renderer.try_render(
            &poisoned_world,
            &FrameDesc::primary(camera, width, height),
            &policy,
        ) {
            Ok(_) => {
                eprintln!("the corrupted scene rendered anyway — validation is broken");
                std::process::exit(1);
            }
            Err(err) => {
                eprintln!("error: {err}");
                std::process::exit(2);
            }
        }
    }

    // Pass 1 only: the primary-ray frame under the fixed directional light.
    let primary = renderer.render(&world, &FrameDesc::primary(camera, width, height), &policy);
    println!("primary-only frame:\n{}", primary.to_ascii());
    if instanced {
        // The tentpole invariant, live: the two-level trace must shade every pixel exactly as
        // the same geometry baked into one flat BVH does.
        let flat_frame = Renderer::with_config(PipelineConfig::baseline_unified()).render(
            &world.flatten(),
            &FrameDesc::primary(camera, width, height),
            &policy,
        );
        assert_eq!(
            primary.first_mismatch(&flat_frame),
            None,
            "instanced frame diverged from the flattened reference"
        );
        println!("instanced frame is bit-identical to the flattened-scene render");
    }

    // The full deferred pipeline: primary + shadow + ambient-occlusion passes (+ the one-bounce
    // mirror pass with --bounce), every stream traced under the selected policy.
    let mut passes = RenderPasses::shadowed(scene.light).with_ambient_occlusion(
        if smoke { 2 } else { 8 },
        6.0,
        2024,
    );
    if bounce {
        passes = passes.with_bounce(0.35);
    }
    let deferred = renderer.render(
        &world,
        &FrameDesc::deferred(camera, width, height, passes),
        &policy,
    );
    if bounce {
        println!(
            "shadowed + AO + one-bounce reflection frame ({}):\n{}",
            policy.mode,
            deferred.to_ascii()
        );
        if mode == ExecMode::Fused {
            let mix = renderer.beat_mix();
            println!(
                "fused scheduler: {} bulk passes mixed >= 2 query kinds; per-kind beats: \
                 closest-hit {}, any-hit {}",
                mix.fused_passes(),
                mix.kind_total(rayflex::core::QueryKind::ClosestHit),
                mix.kind_total(rayflex::core::QueryKind::AnyHit),
            );
        }
    } else {
        println!(
            "shadowed + ambient-occlusion frame ({}):\n{}",
            policy.mode,
            deferred.to_ascii()
        );
    }

    let stats = renderer.stats();
    println!(
        "rays (both frames): {}   ray-box beats: {}   ray-triangle beats: {}   coverage: {:.1}%",
        stats.rays,
        stats.box_ops,
        stats.triangle_ops,
        deferred.coverage() * 100.0
    );

    if smoke {
        println!("smoke mode: skipping the RT-unit timing sweep");
        return;
    }

    // First-order timing through the simplified RT-unit scheduler: compare the RayFlex 11-cycle
    // datapath against the 2-cycle assumption Vulkan-Sim uses (§IV-B of the paper).
    let rays: Vec<_> = (0..width * height / 4)
        .map(|i| {
            let x = i % (width / 2);
            let y = i / (width / 2);
            camera.primary_ray(x * 2, y * 2, width, height)
        })
        .collect();
    let bvh = Bvh4::build(&scene.triangles);
    let (_, rayflex_timing) =
        RtUnit::with_configs(PipelineConfig::baseline_unified(), RtUnitConfig::default())
            .trace_rays(&bvh, &scene.triangles, &rays);
    let (_, optimistic_timing) = RtUnit::with_configs(
        PipelineConfig::baseline_unified(),
        RtUnitConfig {
            datapath_latency: 2,
            ..RtUnitConfig::default()
        },
    )
    .trace_rays(&bvh, &scene.triangles, &rays);
    println!(
        "RT-unit estimate over {} rays: {} cycles with the 11-cycle RayFlex datapath, {} cycles \
         with a 2-cycle datapath assumption ({:.1}% faster — the Vulkan-Sim configuration is \
         optimistic, as §IV-B argues)",
        rays.len(),
        rayflex_timing.cycles,
        optimistic_timing.cycles,
        (1.0 - optimistic_timing.cycles as f64 / rayflex_timing.cycles as f64) * 100.0
    );
}
