//! Render a procedural scene through the RT-unit substrate: build a four-wide BVH over the lit
//! scene preset (floor + occluder sphere + grounded contact sphere), run the multi-pass deferred
//! renderer — a batched closest-hit primary pass, a batched any-hit shadow pass and a batched
//! any-hit ambient-occlusion pass — print both the primary-only and the shadowed+AO frame as
//! ASCII art, then report the traversal statistics and a first-order cycle estimate from the
//! simplified RT-unit timing model.
//!
//! Run with `cargo run --release --example render_scene`.  Pass `--bounce` to add the one-bounce
//! mirror-reflection pass, whose bounce closest-hit stream and shadow any-hit stream are traced
//! **fused in the same bulk passes** over one datapath (the fused multi-stream scheduler); the
//! example then prints the per-kind beat mix the fusion produced.  Setting `RAYFLEX_SMOKE=1`
//! shrinks the frame and skips the timing sweep — the CI smoke mode that keeps the example from
//! rotting.

use rayflex::core::PipelineConfig;
use rayflex::rtunit::{Bvh4, Camera, RenderPasses, Renderer, RtUnit, RtUnitConfig};
use rayflex::workloads::scenes;

fn main() {
    let smoke = std::env::var("RAYFLEX_SMOKE").is_ok_and(|v| v != "0");
    let bounce = std::env::args().any(|arg| arg == "--bounce");
    let (width, height) = if smoke { (36, 18) } else { (72, 36) };

    // The scene: a floor, a floating occluder icosphere and a small grounded sphere, with a
    // point light placed so the occluder's shadow falls across the floor.
    let scene = scenes::lit_scene(if smoke { 1 } else { 3 }, 24.0);
    let bvh = Bvh4::build(&scene.triangles);
    println!(
        "scene: {} triangles, BVH with {} nodes, depth {}",
        scene.triangles.len(),
        bvh.node_count(),
        bvh.depth()
    );

    let camera = Camera::looking_at(scene.eye, scene.target);
    let mut renderer = Renderer::with_config(PipelineConfig::baseline_unified());

    // Pass 1 only: the primary-ray frame under the fixed directional light.
    let primary = renderer.render(&bvh, &scene.triangles, &camera, width, height);
    println!("primary-only frame:\n{}", primary.to_ascii());

    // The full deferred pipeline: primary + shadow + ambient-occlusion passes, each traced as
    // one batched wavefront stream.
    let passes = RenderPasses::shadowed(scene.light).with_ambient_occlusion(
        if smoke { 2 } else { 8 },
        6.0,
        2024,
    );
    let deferred = if bounce {
        // --bounce: add the one-bounce mirror pass; its closest-hit stream and the shadow
        // any-hit stream share the same bulk passes through the fused scheduler.
        let bounce_passes = passes.with_bounce(0.35);
        let frame = renderer.render_deferred_bounce(
            &bvh,
            &scene.triangles,
            &camera,
            width,
            height,
            &bounce_passes,
        );
        println!(
            "shadowed + AO + fused one-bounce reflection frame:\n{}",
            frame.to_ascii()
        );
        let mix = renderer.beat_mix();
        println!(
            "fused scheduler: {} bulk passes mixed >= 2 query kinds; per-kind beats: \
             closest-hit {}, any-hit {}",
            mix.fused_passes(),
            mix.kind_total(rayflex::core::QueryKind::ClosestHit),
            mix.kind_total(rayflex::core::QueryKind::AnyHit),
        );
        frame
    } else {
        let frame =
            renderer.render_deferred(&bvh, &scene.triangles, &camera, width, height, &passes);
        println!("shadowed + ambient-occlusion frame:\n{}", frame.to_ascii());
        frame
    };

    let stats = renderer.stats();
    println!(
        "rays (both frames): {}   ray-box beats: {}   ray-triangle beats: {}   coverage: {:.1}%",
        stats.rays,
        stats.box_ops,
        stats.triangle_ops,
        deferred.coverage() * 100.0
    );

    if smoke {
        println!("smoke mode: skipping the RT-unit timing sweep");
        return;
    }

    // First-order timing through the simplified RT-unit scheduler: compare the RayFlex 11-cycle
    // datapath against the 2-cycle assumption Vulkan-Sim uses (§IV-B of the paper).
    let rays: Vec<_> = (0..width * height / 4)
        .map(|i| {
            let x = i % (width / 2);
            let y = i / (width / 2);
            camera.primary_ray(x * 2, y * 2, width, height)
        })
        .collect();
    let (_, rayflex_timing) =
        RtUnit::with_configs(PipelineConfig::baseline_unified(), RtUnitConfig::default())
            .trace_rays(&bvh, &scene.triangles, &rays);
    let (_, optimistic_timing) = RtUnit::with_configs(
        PipelineConfig::baseline_unified(),
        RtUnitConfig {
            datapath_latency: 2,
            ..RtUnitConfig::default()
        },
    )
    .trace_rays(&bvh, &scene.triangles, &rays);
    println!(
        "RT-unit estimate over {} rays: {} cycles with the 11-cycle RayFlex datapath, {} cycles \
         with a 2-cycle datapath assumption ({:.1}% faster — the Vulkan-Sim configuration is \
         optimistic, as §IV-B argues)",
        rays.len(),
        rayflex_timing.cycles,
        optimistic_timing.cycles,
        (1.0 - optimistic_timing.cycles as f64 / rayflex_timing.cycles as f64) * 100.0
    );
}
