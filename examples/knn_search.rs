//! k-nearest-neighbour search on the extended datapath (the paper's §V-A case study): stream a
//! clustered vector dataset through the Euclidean- and cosine-distance operations, report the
//! neighbours found and cross-check them against a plain software scan.
//!
//! Run with `cargo run --release --example knn_search`.

use rayflex::core::PipelineConfig;
use rayflex::geometry::Vec3;
use rayflex::rtunit::{ExecPolicy, HierarchicalSearch, KnnEngine, KnnMetric};
use rayflex::workloads::{scenes, vectors};

fn main() {
    // A 48-dimensional clustered dataset: each vector needs three 16-lane Euclidean beats (or six
    // 8-lane cosine beats), exercising the multi-beat accumulator path of §V-A.
    let dataset = vectors::clustered_dataset(42, 400, 48, 8, 4.0);
    let queries = vectors::queries_near_dataset(7, &dataset, 4, 1.0);
    println!(
        "dataset: {} vectors x {} dimensions in {} clusters",
        dataset.len(),
        dataset.dimension(),
        dataset.centers.len()
    );

    let mut engine = KnnEngine::with_config(PipelineConfig::extended_unified());
    let policy = ExecPolicy::wavefront();
    for (q, query) in queries.iter().enumerate() {
        let neighbors = engine.k_nearest(query, &dataset.vectors, 5, KnnMetric::Euclidean, &policy);
        println!("query {q}: 5 nearest by squared Euclidean distance (RT-unit beats)");
        for n in &neighbors {
            println!(
                "   vector {:4}  distance {:10.3}  (cluster {})",
                n.index, n.distance, dataset.assignments[n.index]
            );
        }
        // Software cross-check of the top answer.
        let software_best = dataset
            .vectors
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let d: f32 = query.iter().zip(v).map(|(a, b)| (a - b) * (a - b)).sum();
                (i, d)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty dataset");
        assert_eq!(
            neighbors[0].index, software_best.0,
            "datapath and software scans must agree on the nearest neighbour"
        );
    }

    // The same dataset under the cosine metric.
    let query = &queries[0];
    let cosine = engine.k_nearest(query, &dataset.vectors, 3, KnnMetric::Cosine, &policy);
    println!("query 0: 3 nearest by cosine distance");
    for n in &cosine {
        println!("   vector {:4}  distance {:.6}", n.index, n.distance);
    }

    let stats = engine.stats();
    println!(
        "datapath work: {} candidate vectors scored with {} Euclidean/cosine beats",
        stats.candidates, stats.beats
    );

    // Hierarchical search over 3-D points: the BVH filters the dataset with ray-box beats and the
    // survivors are scored exactly with Euclidean beats — all on the same extended datapath.
    let cloud: Vec<Vec3> = scenes::sphere_cloud(5, 5_000, 80.0, 0.01)
        .into_iter()
        .map(|s| s.center)
        .collect();
    let mut search = HierarchicalSearch::build(cloud, 0.01, PipelineConfig::extended_unified());
    let query = Vec3::new(12.0, -30.0, 44.0);
    let in_radius = search.radius_query(query, 12.0, &policy);
    let nearest = search
        .nearest(query, 2.0, &policy)
        .expect("non-empty dataset");
    let hstats = search.stats();
    println!(
        "hierarchical search over {} points: {} within radius 12.0, nearest = point {} at d^2 = {:.3}",
        hstats.dataset_size,
        in_radius.len(),
        nearest.index,
        nearest.distance
    );
    println!(
        "  BVH filter: {} ray-box beats, exact scoring: {} Euclidean beats, only {:.1}% of the dataset scored",
        hstats.box_beats,
        hstats.euclidean_beats,
        hstats.scored_fraction() * 100.0
    );
}
