//! # RayFlex-RS
//!
//! Facade crate re-exporting every component of the RayFlex-RS workspace, a Rust reproduction of
//! the RayFlex hardware ray-tracer datapath (ISPASS 2025).  See the workspace `README.md` and
//! `DESIGN.md` for the architecture overview and the experiment index.

#![forbid(unsafe_code)]

pub use rayflex_core as core;
pub use rayflex_geometry as geometry;
pub use rayflex_hw as hw;
pub use rayflex_rtl as rtl;
pub use rayflex_rtunit as rtunit;
pub use rayflex_softfloat as softfloat;
pub use rayflex_synth as synth;
pub use rayflex_workloads as workloads;
