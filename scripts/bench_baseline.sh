#!/usr/bin/env bash
# Runs the simulator performance baseline suites and writes BENCH_baseline.json (scalar vs
# batched vs parallel traversal), BENCH_query_engine.json (render/shadow/knn query kinds on
# the generic batched query engine), BENCH_render_passes.json (deferred-render pass
# configurations: primary vs shadowed vs shadowed+AO, batched vs the scalar multi-pass
# reference) and BENCH_fused.json (the mixed multi-workload — render + shadow + knn +
# radius-query collection — scalar vs sequential-batched vs fused multi-stream scheduling,
# with the fused per-kind beat mix) at the repo root.
#
# Tunables (environment variables, all optional):
#   RAYFLEX_BENCH_RAYS         rays per scene / items per mode   (default 4096)
#   RAYFLEX_BENCH_REPEATS      best-of timing repeats            (default 3)
#   RAYFLEX_BENCH_THREADS      parallel worker threads           (default: available parallelism,
#                                                                 at least 2 so the pool engages)
#   RAYFLEX_BENCH_MIN_SPEEDUP  fail below this batched/fused-vs-scalar speedup floor (CI sets 3.0)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
export RAYFLEX_BENCH_JSON="${RAYFLEX_BENCH_JSON:-$repo_root/BENCH_baseline.json}"
export RAYFLEX_BENCH_QUERY_JSON="${RAYFLEX_BENCH_QUERY_JSON:-$repo_root/BENCH_query_engine.json}"
export RAYFLEX_BENCH_RENDER_JSON="${RAYFLEX_BENCH_RENDER_JSON:-$repo_root/BENCH_render_passes.json}"
export RAYFLEX_BENCH_FUSED_JSON="${RAYFLEX_BENCH_FUSED_JSON:-$repo_root/BENCH_fused.json}"

cargo bench -p rayflex-bench --bench perf_simulator

echo
echo "Baseline: $RAYFLEX_BENCH_JSON"
echo "Query engine: $RAYFLEX_BENCH_QUERY_JSON"
echo "Render passes: $RAYFLEX_BENCH_RENDER_JSON"
echo "Fused scheduler: $RAYFLEX_BENCH_FUSED_JSON"
