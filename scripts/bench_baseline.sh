#!/usr/bin/env bash
# Runs the simulator performance baseline suite and writes BENCH_baseline.json at the repo root.
#
# Tunables (environment variables, all optional):
#   RAYFLEX_BENCH_RAYS     rays per scene           (default 4096)
#   RAYFLEX_BENCH_REPEATS  best-of timing repeats   (default 3)
#   RAYFLEX_BENCH_THREADS  parallel worker threads  (default: available parallelism)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
export RAYFLEX_BENCH_JSON="${RAYFLEX_BENCH_JSON:-$repo_root/BENCH_baseline.json}"

cargo bench -p rayflex-bench --bench perf_simulator

echo
echo "Baseline: $RAYFLEX_BENCH_JSON"
