#!/usr/bin/env bash
# Guards the committed benchmark baselines: diffs the speedup_vs_scalar columns of freshly
# generated BENCH_baseline.json / BENCH_fused.json / BENCH_server.json against committed
# copies and fails when any entry regressed by more than 20% (speedups are scalar-relative
# ratios, so they are comparable across hosts in a way raw wall times are not).  A set that is
# missing on either side is skipped, so callers can gate just the subset they regenerated.
#
# Usage:
#   scripts/bench_diff.sh                      # regenerate into a temp dir, diff vs repo root
#   scripts/bench_diff.sh COMMITTED_DIR FRESH_DIR
#                                              # diff two existing sets (CI stashes the
#                                              # committed copies, runs the suite in place,
#                                              # then calls this with both directories)
#
# Tunables: RAYFLEX_BENCH_MAX_REGRESSION (default 0.20), plus the RAYFLEX_BENCH_* knobs of
# scripts/bench_baseline.sh when this script generates the fresh set itself.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
max_regression="${RAYFLEX_BENCH_MAX_REGRESSION:-0.20}"

if [ "$#" -eq 2 ]; then
  committed_dir="$1"
  fresh_dir="$2"
elif [ "$#" -eq 0 ]; then
  committed_dir="$repo_root"
  fresh_dir="$(mktemp -d)"
  trap 'rm -rf "$fresh_dir"' EXIT
  RAYFLEX_BENCH_JSON="$fresh_dir/BENCH_baseline.json" \
  RAYFLEX_BENCH_QUERY_JSON="$fresh_dir/BENCH_query_engine.json" \
  RAYFLEX_BENCH_RENDER_JSON="$fresh_dir/BENCH_render_passes.json" \
  RAYFLEX_BENCH_FUSED_JSON="$fresh_dir/BENCH_fused.json" \
    "$repo_root/scripts/bench_baseline.sh"
  RAYFLEX_SERVER_JSON="$fresh_dir/BENCH_server.json" \
    "$repo_root/scripts/bench_server.sh"
else
  echo "usage: $0 [COMMITTED_DIR FRESH_DIR]" >&2
  exit 2
fi

status=0
for name in BENCH_baseline.json BENCH_fused.json BENCH_server.json; do
  if [ ! -f "$committed_dir/$name" ] || [ ! -f "$fresh_dir/$name" ]; then
    echo
    echo "== $name == (missing on one side, skipped)"
    continue
  fi
  echo
  echo "== $name =="
  cargo run --release -q -p rayflex-bench --bin bench_diff -- \
    "$committed_dir/$name" "$fresh_dir/$name" --max-regression "$max_regression" || status=1
done
exit "$status"
