#!/usr/bin/env bash
# Runs the online-service benchmark and writes BENCH_server.json at the repo root: loadgen
# spawns one rayflex-server per batching variant (batch1: every request its own fused run;
# dynamic: the real coalescing knobs), drives the same closed-loop small-request mix at both,
# and records wire latency/throughput (p50/p99/req/s) alongside the modeled device throughput
# ratio taken from the server's SIMD lane accounting — the `speedup_vs_scalar` the bench gate
# tracks (see the loadgen module docs for why the two throughputs differ).
#
# Tunables (environment variables, all optional):
#   RAYFLEX_SERVER_CLIENTS     concurrent closed-loop clients        (default 64)
#   RAYFLEX_SERVER_REQUESTS    requests per client                   (default 25)
#   RAYFLEX_SERVER_MAX_BATCH   dynamic-variant batch-size flush      (default 32)
#   RAYFLEX_SERVER_FLUSH_US    dynamic-variant deadline flush, us    (default 200)
#   RAYFLEX_SERVER_MIN_RATIO   fail below this modeled device throughput ratio (default off)
#   RAYFLEX_SERVER_MAX_P99_US  fail if any variant's p99 exceeds this bound    (default off)
#   RAYFLEX_SERVER_JSON        output path (default BENCH_server.json at the repo root)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
out="${RAYFLEX_SERVER_JSON:-$repo_root/BENCH_server.json}"

cargo build --release -q -p rayflex-server -p rayflex-workloads

extra=()
if [ -n "${RAYFLEX_SERVER_MIN_RATIO:-}" ]; then
  extra+=(--min-ratio "$RAYFLEX_SERVER_MIN_RATIO")
fi
if [ -n "${RAYFLEX_SERVER_MAX_P99_US:-}" ]; then
  extra+=(--max-p99-us "$RAYFLEX_SERVER_MAX_P99_US")
fi

"$repo_root/target/release/loadgen" \
  --server-bin "$repo_root/target/release/rayflex-server" \
  --clients "${RAYFLEX_SERVER_CLIENTS:-64}" \
  --requests "${RAYFLEX_SERVER_REQUESTS:-25}" \
  --max-batch "${RAYFLEX_SERVER_MAX_BATCH:-32}" \
  --flush-us "${RAYFLEX_SERVER_FLUSH_US:-200}" \
  --out "$out" \
  "${extra[@]+"${extra[@]}"}"

echo
echo "Server: $out"
