//! Affine instance transforms for two-level (TLAS/BLAS) scenes.
//!
//! An [`Affine`] maps object-space geometry of a bottom-level acceleration structure into world
//! space: a 3×3 linear part (rotation / scale / shear) followed by a translation.  Two bit-level
//! contracts matter for the RT-unit layer built on top:
//!
//! * **Determinism** — [`Affine::transform_point`] evaluates each output component with one
//!   fixed association, `((m0·x + m1·y) + m2·z) + t`, so transforming the same point with the
//!   same transform always yields the same `f32` bits.  [`Triangle::transformed`] is three such
//!   point transforms, which is what lets an instanced traversal intersect lazily-transformed
//!   triangles with bits identical to a flattened scene that baked the same triangles up front.
//! * **Conservative boxes** — [`Aabb::transformed`] brackets every term of that same expression
//!   with interval arithmetic (the min/max corner product per axis, summed in the same order).
//!   Because `f32` multiplication and addition are weakly monotone under round-to-nearest, the
//!   resulting box rigorously contains `transform_point(p)` for every `p` in the source box —
//!   no epsilon inflation needed — so a transformed BVH node box can never cause a false miss.

use crate::{Aabb, Triangle, Vec3};

/// An affine transform: `p' = linear · p + translation`, with the linear part stored as three
/// row vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    /// Rows of the 3×3 linear part: `linear[i]` dotted with the input point yields output
    /// component `i` (before translation).
    pub linear: [Vec3; 3],
    /// Translation applied after the linear part.
    pub translation: Vec3,
}

impl Default for Affine {
    fn default() -> Self {
        Affine::identity()
    }
}

impl Affine {
    /// The identity transform.
    #[must_use]
    pub const fn identity() -> Self {
        Affine {
            linear: [
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            translation: Vec3::ZERO,
        }
    }

    /// A pure translation.
    #[must_use]
    pub const fn translation(offset: Vec3) -> Self {
        Affine {
            linear: [
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            translation: offset,
        }
    }

    /// A per-axis scale about the origin.
    #[must_use]
    pub const fn scale(factors: Vec3) -> Self {
        Affine {
            linear: [
                Vec3::new(factors.x, 0.0, 0.0),
                Vec3::new(0.0, factors.y, 0.0),
                Vec3::new(0.0, 0.0, factors.z),
            ],
            translation: Vec3::ZERO,
        }
    }

    /// A uniform scale about the origin.
    #[must_use]
    pub const fn uniform_scale(factor: f32) -> Self {
        Affine::scale(Vec3::splat(factor))
    }

    /// A rotation of `radians` about the X axis (right-handed).
    #[must_use]
    pub fn rotate_x(radians: f32) -> Self {
        let (s, c) = radians.sin_cos();
        Affine {
            linear: [
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, c, -s),
                Vec3::new(0.0, s, c),
            ],
            translation: Vec3::ZERO,
        }
    }

    /// A rotation of `radians` about the Y axis (right-handed).
    #[must_use]
    pub fn rotate_y(radians: f32) -> Self {
        let (s, c) = radians.sin_cos();
        Affine {
            linear: [
                Vec3::new(c, 0.0, s),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(-s, 0.0, c),
            ],
            translation: Vec3::ZERO,
        }
    }

    /// A rotation of `radians` about the Z axis (right-handed).
    #[must_use]
    pub fn rotate_z(radians: f32) -> Self {
        let (s, c) = radians.sin_cos();
        Affine {
            linear: [
                Vec3::new(c, -s, 0.0),
                Vec3::new(s, c, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            translation: Vec3::ZERO,
        }
    }

    /// The composition `self ∘ other`: applies `other` first, then `self`.
    #[must_use]
    pub fn then(&self, other: &Affine) -> Affine {
        // Rows of the product: row_i(self) · columns(other).
        let col = |j: usize| {
            Vec3::new(
                other.linear[0].to_array()[j],
                other.linear[1].to_array()[j],
                other.linear[2].to_array()[j],
            )
        };
        let cols = [col(0), col(1), col(2)];
        let row = |i: usize| {
            Vec3::new(
                self.linear[i].dot(cols[0]),
                self.linear[i].dot(cols[1]),
                self.linear[i].dot(cols[2]),
            )
        };
        Affine {
            linear: [row(0), row(1), row(2)],
            translation: self.transform_point(other.translation),
        }
    }

    /// Transforms a point: `linear · p + translation`, each component evaluated as
    /// `((m0·x + m1·y) + m2·z) + t` — the fixed association the interval bounds of
    /// [`Aabb::transformed`] mirror.
    #[must_use]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        let component = |row: Vec3, t: f32| ((row.x * p.x + row.y * p.y) + row.z * p.z) + t;
        Vec3::new(
            component(self.linear[0], self.translation.x),
            component(self.linear[1], self.translation.y),
            component(self.linear[2], self.translation.z),
        )
    }

    /// Transforms a direction vector (linear part only, no translation).
    #[must_use]
    pub fn transform_vector(&self, v: Vec3) -> Vec3 {
        let component = |row: Vec3| (row.x * v.x + row.y * v.y) + row.z * v.z;
        Vec3::new(
            component(self.linear[0]),
            component(self.linear[1]),
            component(self.linear[2]),
        )
    }

    /// The determinant of the linear part — zero (or subnormal-tiny) means the transform
    /// collapses volume and the instance's geometry degenerates.
    #[must_use]
    pub fn determinant(&self) -> f32 {
        self.linear[0].dot(self.linear[1].cross(self.linear[2]))
    }

    /// `true` when every coefficient is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.linear.iter().all(|row| row.is_finite()) && self.translation.is_finite()
    }
}

impl Triangle {
    /// The triangle with every vertex mapped through `transform`.
    ///
    /// Uses [`Affine::transform_point`] per vertex, so baking a scene flat and transforming
    /// lazily during an instanced traversal produce bit-identical vertices.
    #[must_use]
    pub fn transformed(&self, transform: &Affine) -> Triangle {
        Triangle::new(
            transform.transform_point(self.v0),
            transform.transform_point(self.v1),
            transform.transform_point(self.v2),
        )
    }
}

impl Aabb {
    /// A box rigorously containing the image of this box under `transform`.
    ///
    /// Per output axis, every term of the point-transform expression is bracketed by the
    /// smaller/larger of the products with the source interval's endpoints, and the brackets
    /// are summed in the **same association** as [`Affine::transform_point`].  Since `f32`
    /// multiplication and addition round monotonically, the result contains
    /// `transform.transform_point(p)` — bit-level, not just in exact arithmetic — for every
    /// point `p` of this box.  Conservative boxes may admit extra traversal visits but can
    /// never lose a hit.
    #[must_use]
    pub fn transformed(&self, transform: &Affine) -> Aabb {
        let lo = self.min.to_array();
        let hi = self.max.to_array();
        let mut out_min = [0.0f32; 3];
        let mut out_max = [0.0f32; 3];
        for axis in 0..3 {
            let row = transform.linear[axis].to_array();
            let t = transform.translation.to_array()[axis];
            // Bracket each product m·x over x ∈ [lo, hi].
            let bracket = |m: f32, l: f32, h: f32| {
                let a = m * l;
                let b = m * h;
                (a.min(b), a.max(b))
            };
            let (x_lo, x_hi) = bracket(row[0], lo[0], hi[0]);
            let (y_lo, y_hi) = bracket(row[1], lo[1], hi[1]);
            let (z_lo, z_hi) = bracket(row[2], lo[2], hi[2]);
            out_min[axis] = ((x_lo + y_lo) + z_lo) + t;
            out_max[axis] = ((x_hi + y_hi) + z_hi) + t;
        }
        Aabb::new(Vec3::from_array(out_min), Vec3::from_array(out_max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_transform() -> Affine {
        Affine::translation(Vec3::new(3.0, -2.0, 0.5))
            .then(&Affine::rotate_y(0.7))
            .then(&Affine::scale(Vec3::new(1.5, 0.25, 2.0)))
    }

    #[test]
    fn identity_is_a_no_op() {
        let p = Vec3::new(1.25, -3.5, 0.75);
        assert_eq!(Affine::identity().transform_point(p), p);
        assert_eq!(Affine::identity().transform_vector(p), p);
        assert_eq!(Affine::identity().determinant(), 1.0);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a = Affine::rotate_z(0.3);
        let b = Affine::translation(Vec3::new(1.0, 2.0, 3.0));
        let p = Vec3::new(0.5, -1.0, 2.0);
        let via_compose = a.then(&b).transform_point(p);
        let sequential = a.transform_point(b.transform_point(p));
        assert!((via_compose - sequential).length() < 1e-5);
    }

    #[test]
    fn transformed_box_contains_every_transformed_corner_point() {
        let t = sample_transform();
        let aabb = Aabb::new(Vec3::new(-1.0, -2.0, 0.5), Vec3::new(2.0, 0.0, 4.0));
        let image = aabb.transformed(&t);
        // Dense sample of the source box: every transformed point must land inside.
        for i in 0..=4 {
            for j in 0..=4 {
                for k in 0..=4 {
                    let p = Vec3::new(
                        aabb.min.x + (aabb.max.x - aabb.min.x) * (i as f32 / 4.0),
                        aabb.min.y + (aabb.max.y - aabb.min.y) * (j as f32 / 4.0),
                        aabb.min.z + (aabb.max.z - aabb.min.z) * (k as f32 / 4.0),
                    );
                    assert!(image.contains(t.transform_point(p)), "point {p:?} escaped");
                }
            }
        }
    }

    #[test]
    fn triangle_transform_is_per_vertex_point_transform() {
        let t = sample_transform();
        let tri = Triangle::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let moved = tri.transformed(&t);
        assert_eq!(moved.v0, t.transform_point(tri.v0));
        assert_eq!(moved.v1, t.transform_point(tri.v1));
        assert_eq!(moved.v2, t.transform_point(tri.v2));
    }

    #[test]
    fn determinant_flags_singular_transforms() {
        let flat = Affine::scale(Vec3::new(1.0, 0.0, 1.0));
        assert_eq!(flat.determinant(), 0.0);
        assert!(sample_transform().determinant().abs() > 1e-3);
    }

    #[test]
    fn finiteness_check_catches_nan_coefficients() {
        let mut t = Affine::identity();
        assert!(t.is_finite());
        t.linear[1].y = f32::NAN;
        assert!(!t.is_finite());
        let mut u = Affine::identity();
        u.translation.z = f32::INFINITY;
        assert!(!u.is_finite());
    }
}
