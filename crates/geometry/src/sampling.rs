//! Random generators for geometric stimulus (the paper verifies the RTL with "hundreds of
//! thousands of random test cases"; these helpers produce the equivalent stimulus).

use rand::Rng;

use crate::{Aabb, Ray, Sphere, Triangle, Vec3};

/// Samples a point uniformly inside an axis-aligned box.
pub fn point_in_box<R: Rng + ?Sized>(rng: &mut R, bounds: &Aabb) -> Vec3 {
    Vec3::new(
        rng.gen_range(bounds.min.x..=bounds.max.x),
        rng.gen_range(bounds.min.y..=bounds.max.y),
        rng.gen_range(bounds.min.z..=bounds.max.z),
    )
}

/// Samples a direction approximately uniformly on the unit sphere (rejection sampling), never
/// returning the zero vector.
pub fn unit_direction<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
        );
        let len_sq = v.length_squared();
        if len_sq > 1e-4 && len_sq <= 1.0 {
            return v / len_sq.sqrt();
        }
    }
}

/// Samples a random ray with its origin inside `bounds` and a random direction; the extent is
/// `[0, +inf)`.
pub fn ray_in_box<R: Rng + ?Sized>(rng: &mut R, bounds: &Aabb) -> Ray {
    Ray::new(point_in_box(rng, bounds), unit_direction(rng))
}

/// Samples a random axis-aligned box with corners inside `bounds` (the corners are sorted so the
/// box is never inverted, but it may be degenerate along an axis).
pub fn aabb_in_box<R: Rng + ?Sized>(rng: &mut R, bounds: &Aabb) -> Aabb {
    let a = point_in_box(rng, bounds);
    let b = point_in_box(rng, bounds);
    Aabb::new(a.min(b), a.max(b))
}

/// Samples a random triangle with vertices inside `bounds`, discarding nearly degenerate
/// triangles (area below `1e-4`).
pub fn triangle_in_box<R: Rng + ?Sized>(rng: &mut R, bounds: &Aabb) -> Triangle {
    loop {
        let t = Triangle::new(
            point_in_box(rng, bounds),
            point_in_box(rng, bounds),
            point_in_box(rng, bounds),
        );
        if t.area() > 1e-4 {
            return t;
        }
    }
}

/// Samples a random sphere with its centre inside `bounds` and a radius in `(0, max_radius]`.
pub fn sphere_in_box<R: Rng + ?Sized>(rng: &mut R, bounds: &Aabb, max_radius: f32) -> Sphere {
    Sphere::new(
        point_in_box(rng, bounds),
        rng.gen_range(f32::EPSILON..=max_radius),
    )
}

/// The default stimulus bounds used by the random test benches: a cube spanning ±100 units.
#[must_use]
pub fn default_bounds() -> Aabb {
    Aabb::new(Vec3::splat(-100.0), Vec3::splat(100.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn points_fall_inside_the_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let bounds = default_bounds();
        for _ in 0..200 {
            assert!(bounds.contains(point_in_box(&mut rng, &bounds)));
        }
    }

    #[test]
    fn directions_are_unit_length() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let d = unit_direction(&mut rng);
            assert!((d.length() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn boxes_triangles_and_spheres_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(3);
        let bounds = default_bounds();
        for _ in 0..100 {
            let b = aabb_in_box(&mut rng, &bounds);
            assert!(!b.is_empty());
            let t = triangle_in_box(&mut rng, &bounds);
            assert!(t.area() > 0.0);
            let s = sphere_in_box(&mut rng, &bounds, 5.0);
            assert!(s.radius > 0.0 && s.radius <= 5.0);
            let r = ray_in_box(&mut rng, &bounds);
            assert!(bounds.contains(r.origin));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let bounds = default_bounds();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            assert_eq!(ray_in_box(&mut a, &bounds), ray_in_box(&mut b, &bounds));
        }
    }
}
