//! Axis-aligned bounding boxes.

use crate::{Axis, Vec3};

/// An axis-aligned bounding box, defined by its minimum and maximum corners — the node format of
/// the Bounding Volume Hierarchy the RT unit traverses (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// The corner with the smallest coordinates.
    pub min: Vec3,
    /// The corner with the largest coordinates.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from its two corners.
    #[must_use]
    pub const fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// The empty box: any union with it returns the other operand and it contains no point.
    #[must_use]
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f32::INFINITY),
            max: Vec3::splat(f32::NEG_INFINITY),
        }
    }

    /// A degenerate box containing exactly one point.
    #[must_use]
    pub fn from_point(p: Vec3) -> Self {
        Aabb { min: p, max: p }
    }

    /// The smallest box containing every point of an iterator.  Returns [`Aabb::empty`] for an
    /// empty iterator.
    #[must_use]
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Self {
        points
            .into_iter()
            .fold(Aabb::empty(), |acc, p| acc.union_point(p))
    }

    /// Returns `true` if the box contains no points (any max component below the min).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// The smallest box containing both operands.
    #[must_use]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The smallest box containing this box and the point `p`.
    #[must_use]
    pub fn union_point(&self, p: Vec3) -> Aabb {
        Aabb {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// Returns `true` if the point lies inside or on the surface of the box.
    #[must_use]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The centre point of the box.
    #[must_use]
    pub fn centroid(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// The edge lengths of the box.
    #[must_use]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// The surface area of the box (used by the SAH BVH builder).  Zero for empty boxes.
    #[must_use]
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// The axis along which the box is widest.
    #[must_use]
    pub fn longest_axis(&self) -> Axis {
        self.extent().max_abs_axis()
    }

    /// Grows the box by `margin` in every direction.
    #[must_use]
    pub fn inflated(&self, margin: f32) -> Aabb {
        Aabb {
            min: self.min - Vec3::splat(margin),
            max: self.max + Vec3::splat(margin),
        }
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_behaviour() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.surface_area(), 0.0);
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(e.union(&b), b);
        assert!(!e.contains(Vec3::ZERO));
        assert_eq!(Aabb::default(), e);
    }

    #[test]
    fn union_and_contains() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let b = Aabb::new(Vec3::new(2.0, -1.0, 0.5), Vec3::new(3.0, 0.5, 2.0));
        let u = a.union(&b);
        assert_eq!(u.min, Vec3::new(0.0, -1.0, 0.0));
        assert_eq!(u.max, Vec3::new(3.0, 1.0, 2.0));
        assert!(u.contains(Vec3::new(1.5, 0.0, 1.0)));
        assert!(!a.contains(Vec3::new(1.5, 0.0, 1.0)));
        assert!(a.contains(Vec3::ONE), "surface points are contained");
    }

    #[test]
    fn from_points_bounds_everything() {
        let pts = [
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-1.0, 5.0, 0.0),
            Vec3::new(0.0, 0.0, -2.0),
        ];
        let b = Aabb::from_points(pts);
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, -2.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 3.0));
        assert!(Aabb::from_points(std::iter::empty()).is_empty());
    }

    #[test]
    fn geometric_queries() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b.centroid(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.extent(), Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b.surface_area(), 2.0 * (8.0 + 24.0 + 12.0));
        assert_eq!(b.longest_axis(), Axis::Z);
        let g = b.inflated(1.0);
        assert_eq!(g.min, Vec3::splat(-1.0));
        assert_eq!(g.max, Vec3::new(3.0, 5.0, 7.0));
        assert_eq!(Aabb::from_point(Vec3::ONE).centroid(), Vec3::ONE);
    }
}
