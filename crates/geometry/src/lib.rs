//! # rayflex-geometry
//!
//! Geometry primitives and *golden* software intersection models for the RayFlex-RS workspace.
//!
//! The RayFlex paper verifies its RTL against "a golden software implementation that serves as
//! our ground truth" (§IV-A).  This crate is that ground truth: it provides the vectors, rays,
//! axis-aligned bounding boxes, triangles and spheres the datapath operates on, plus reference
//! implementations of
//!
//! * the slab ray–box intersection method (Algorithm 1 of the paper),
//! * the watertight ray–triangle intersection method (Woop et al.) with backface culling and the
//!   paper's edge-case semantics (coplanar rays miss, edge and vertex hits count as hits),
//! * the Euclidean and cosine distance operations of the extended datapath (§V-A),
//!
//! each written with the *same operation structure and per-step `f32` rounding* as the hardware
//! stages, so the hardware model can be checked for bit-exact equivalence.  The crate also
//! provides structure-of-arrays ray/box streams ([`RayPacket`], [`AabbPacket`]) for the batched
//! execution frontends of the RT-unit layer.
//!
//! # Example
//!
//! ```
//! use rayflex_geometry::{golden, Aabb, Ray, Triangle, Vec3};
//!
//! let ray = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
//! let aabb = Aabb::new(Vec3::new(-1.0, -1.0, 2.0), Vec3::new(1.0, 1.0, 4.0));
//! assert!(golden::slab::ray_box(&ray, &aabb).hit);
//!
//! let tri = Triangle::new(
//!     Vec3::new(-1.0, -1.0, 3.0),
//!     Vec3::new(1.0, -1.0, 3.0),
//!     Vec3::new(0.0, 1.0, 3.0),
//! );
//! let hit = golden::watertight::ray_triangle(&ray, &tri);
//! assert!(hit.hit);
//! assert!((hit.distance() - 3.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod aabb;
pub mod golden;
mod packet;
mod ray;
pub mod sampling;
mod sphere;
mod transform;
mod triangle;
mod vec3;

pub use aabb::Aabb;
pub use packet::{AabbPacket, RayPacket};
pub use ray::{Ray, ShearConstants};
pub use sphere::Sphere;
pub use transform::Affine;
pub use triangle::Triangle;
pub use vec3::{Axis, Vec3};
