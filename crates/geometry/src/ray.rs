//! Rays and the pre-computed shear constants of the watertight triangle test.

use crate::{Axis, Vec3};

/// The axis renaming and shear constants pre-computed at ray-instantiation time.
///
/// The watertight triangle test (paper §II-C2, Fig. 4b steps 1–3) renames the axes so the ray
/// direction's largest component lies on the z axis (preserving winding) and computes the shear
/// constants of the affine transform that maps the ray onto the unit +z ray.  These values are
/// properties of the ray alone and require divisions, so the paper computes them on the
/// general-purpose GPU core when the ray is created and passes them to the datapath as six extra
/// FP32 operands (the 3-dimensional `k` and `S` values of the IO specification).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShearConstants {
    /// The renamed x axis.
    pub kx: Axis,
    /// The renamed y axis.
    pub ky: Axis,
    /// The renamed z axis (the ray direction's dominant axis).
    pub kz: Axis,
    /// Shear constant `Sx = dir[kx] / dir[kz]`.
    pub sx: f32,
    /// Shear constant `Sy = dir[ky] / dir[kz]`.
    pub sy: f32,
    /// Scale constant `Sz = 1 / dir[kz]`.
    pub sz: f32,
}

impl ShearConstants {
    /// Computes the axis renaming and shear constants for a ray direction.
    ///
    /// # Panics
    ///
    /// Panics if the direction is the zero vector (such a ray cannot be traced).
    #[must_use]
    pub fn for_direction(dir: Vec3) -> Self {
        assert!(
            dir.x != 0.0 || dir.y != 0.0 || dir.z != 0.0,
            "ray direction must be non-zero"
        );
        // Calculate the dimension where the ray direction is maximal (2 comparisons).
        let kz = dir.max_abs_axis();
        let mut kx = kz.next();
        let mut ky = kx.next();
        // Swap kx and ky to preserve the winding direction of triangles (1 comparison).
        if dir.axis(kz) < 0.0 {
            core::mem::swap(&mut kx, &mut ky);
        }
        // Calculate the shear constants (3 divisions).
        let sx = dir.axis(kx) / dir.axis(kz);
        let sy = dir.axis(ky) / dir.axis(kz);
        let sz = 1.0 / dir.axis(kz);
        ShearConstants {
            kx,
            ky,
            kz,
            sx,
            sy,
            sz,
        }
    }
}

/// A ray in the RDNA3-style format the datapath consumes: origin, direction, the pre-computed
/// element-wise inverse direction, a parametric extent `[t_beg, t_end]`, and the pre-computed
/// shear constants for the triangle test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Ray direction (not required to be normalised).
    pub dir: Vec3,
    /// Element-wise inverse of the direction (`±inf` where a component is zero).
    pub inv_dir: Vec3,
    /// Start of the parametric extent (`t_r_beg` in Algorithm 1).
    pub t_beg: f32,
    /// End of the parametric extent (`t_r_end` in Algorithm 1).
    pub t_end: f32,
    /// Pre-computed axis renaming and shear constants.
    pub shear: ShearConstants,
}

impl Ray {
    /// Creates a ray with the default extent `[0, +inf)`.
    ///
    /// # Panics
    ///
    /// Panics if the direction is the zero vector.
    #[must_use]
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Ray::with_extent(origin, dir, 0.0, f32::INFINITY)
    }

    /// Creates a ray with an explicit parametric extent.
    ///
    /// # Panics
    ///
    /// Panics if the direction is the zero vector.
    #[must_use]
    pub fn with_extent(origin: Vec3, dir: Vec3, t_beg: f32, t_end: f32) -> Self {
        Ray {
            origin,
            dir,
            inv_dir: dir.recip(),
            t_beg,
            t_end,
            shear: ShearConstants::for_direction(dir),
        }
    }

    /// The point `origin + t * dir`.
    #[must_use]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_ray_precomputes_inverse_and_extent() {
        let r = Ray::new(Vec3::new(1.0, 2.0, 3.0), Vec3::new(0.0, 0.5, -2.0));
        assert!(r.inv_dir.x.is_infinite());
        assert_eq!(r.inv_dir.y, 2.0);
        assert_eq!(r.inv_dir.z, -0.5);
        assert_eq!(r.t_beg, 0.0);
        assert!(r.t_end.is_infinite());
        assert_eq!(r.at(2.0), Vec3::new(1.0, 3.0, -1.0));
    }

    #[test]
    fn shear_constants_put_dominant_axis_on_z() {
        let s = ShearConstants::for_direction(Vec3::new(0.1, 5.0, 0.2));
        assert_eq!(s.kz, Axis::Y);
        // Winding preserved: positive dominant component keeps (kx, ky) = (next, next-next).
        assert_eq!(s.kx, Axis::Z);
        assert_eq!(s.ky, Axis::X);
        assert_eq!(s.sz, 1.0 / 5.0);
        assert_eq!(s.sx, 0.2 / 5.0);
        assert_eq!(s.sy, 0.1 / 5.0);
    }

    #[test]
    fn negative_dominant_component_swaps_kx_ky() {
        let s = ShearConstants::for_direction(Vec3::new(0.0, 0.0, -1.0));
        assert_eq!(s.kz, Axis::Z);
        assert_eq!(s.kx, Axis::Y);
        assert_eq!(s.ky, Axis::X);
        assert_eq!(s.sz, -1.0);
    }

    #[test]
    fn axis_aligned_directions_have_exact_constants() {
        let s = ShearConstants::for_direction(Vec3::new(0.0, 0.0, 1.0));
        assert_eq!((s.sx, s.sy, s.sz), (0.0, 0.0, 1.0));
        let s = ShearConstants::for_direction(Vec3::new(2.0, 0.0, 0.0));
        assert_eq!(s.kz, Axis::X);
        assert_eq!((s.sx, s.sy, s.sz), (0.0, 0.0, 0.5));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_direction_panics() {
        let _ = Ray::new(Vec3::ZERO, Vec3::ZERO);
    }
}
