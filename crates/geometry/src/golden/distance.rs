//! Golden models of the extended datapath's Euclidean- and cosine-distance operations (§V-A).

/// Number of vector elements consumed per Euclidean beat.
pub const EUCLIDEAN_LANES: usize = 16;
/// Number of vector elements consumed per cosine beat (the 16 stage-3 multipliers are split into
/// 8 element-wise products and 8 element-wise squares).
pub const COSINE_LANES: usize = 8;

/// The two partial sums produced by one cosine beat.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CosinePartial {
    /// Partial sum of element-wise products `a[i] * b[i]` (the numerator of the cosine
    /// similarity).
    pub dot: f32,
    /// Partial sum of element-wise squares `b[i] * b[i]` (the squared norm of the candidate
    /// vector, the denominator of the cosine similarity).
    pub norm_sq: f32,
}

/// One beat of the Euclidean-distance operation: the partial sum of squared differences over up
/// to sixteen dimensions, computed with the exact reduction-tree structure of datapath stages
/// 2–9 (Fig. 6a / Fig. 6c).
///
/// `mask` bit `i` set means dimension `i` participates; cleared dimensions contribute zero,
/// matching the hardware's zero-gated subtractor inputs.
#[must_use]
pub fn euclidean_partial(a: &[f32; EUCLIDEAN_LANES], b: &[f32; EUCLIDEAN_LANES], mask: u16) -> f32 {
    // Stage 2 — element-wise differences (16 subtractions, zero-gated by the mask).
    let mut diff = [0.0f32; EUCLIDEAN_LANES];
    for i in 0..EUCLIDEAN_LANES {
        if mask & (1 << i) != 0 {
            diff[i] = a[i] - b[i];
        }
    }
    // Stage 3 — element-wise squares (16 multiplications).
    let mut sq = [0.0f32; EUCLIDEAN_LANES];
    for i in 0..EUCLIDEAN_LANES {
        sq[i] = diff[i] * diff[i];
    }
    // Stages 4, 6, 8, 9 — pairwise reduction tree: 8, 4, 2, 1 additions.
    let s8: [f32; 8] = core::array::from_fn(|i| sq[2 * i] + sq[2 * i + 1]);
    let s4: [f32; 4] = core::array::from_fn(|i| s8[2 * i] + s8[2 * i + 1]);
    let s2: [f32; 2] = core::array::from_fn(|i| s4[2 * i] + s4[2 * i + 1]);
    s2[0] + s2[1]
}

/// One beat of the cosine-distance operation: partial sums of element-wise products and squares
/// over up to eight dimensions, computed with the exact reduction-tree structure of datapath
/// stages 3–8 (Fig. 6b / Fig. 6c).
#[must_use]
pub fn cosine_partial(a: &[f32; COSINE_LANES], b: &[f32; COSINE_LANES], mask: u8) -> CosinePartial {
    // Stage 3 — element-wise products of query and candidate, and element-wise squares of the
    // candidate (8 + 8 multiplications, zero-gated by the mask).
    let mut prod = [0.0f32; COSINE_LANES];
    let mut sq = [0.0f32; COSINE_LANES];
    for i in 0..COSINE_LANES {
        if mask & (1 << i) != 0 {
            prod[i] = a[i] * b[i];
            sq[i] = b[i] * b[i];
        }
    }
    // Stages 4, 6, 8 — pairwise reduction of both sums: 4, 2, 1 additions each.
    let p4: [f32; 4] = core::array::from_fn(|i| prod[2 * i] + prod[2 * i + 1]);
    let q4: [f32; 4] = core::array::from_fn(|i| sq[2 * i] + sq[2 * i + 1]);
    let p2: [f32; 2] = core::array::from_fn(|i| p4[2 * i] + p4[2 * i + 1]);
    let q2: [f32; 2] = core::array::from_fn(|i| q4[2 * i] + q4[2 * i + 1]);
    CosinePartial {
        dot: p2[0] + p2[1],
        norm_sq: q2[0] + q2[1],
    }
}

/// The squared Euclidean distance between two vectors of arbitrary dimension, computed exactly as
/// the extended RT unit would: the vectors are consumed in sixteen-element beats (the last beat
/// masked to the remaining dimensions) and the per-beat partial sums are accumulated in order.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[must_use]
pub fn euclidean_distance_squared(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector dimensions must match");
    let mut acc = 0.0f32;
    let mut offset = 0usize;
    while offset < a.len() {
        let lanes = (a.len() - offset).min(EUCLIDEAN_LANES);
        let mut beat_a = [0.0f32; EUCLIDEAN_LANES];
        let mut beat_b = [0.0f32; EUCLIDEAN_LANES];
        beat_a[..lanes].copy_from_slice(&a[offset..offset + lanes]);
        beat_b[..lanes].copy_from_slice(&b[offset..offset + lanes]);
        let mask = if lanes == EUCLIDEAN_LANES {
            u16::MAX
        } else {
            (1u16 << lanes) - 1
        };
        // Stage-10 accumulation: one addition per beat.
        acc += euclidean_partial(&beat_a, &beat_b, mask);
        offset += lanes;
    }
    acc
}

/// The cosine-similarity building blocks for two vectors of arbitrary dimension, accumulated over
/// eight-element beats exactly as the extended RT unit would.  Returns the dot product of the two
/// vectors and the squared norm of `b` (the candidate); the caller combines them with the
/// (pre-computed) query norm to obtain the cosine similarity.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[must_use]
pub fn cosine_parts(a: &[f32], b: &[f32]) -> CosinePartial {
    assert_eq!(a.len(), b.len(), "vector dimensions must match");
    let mut acc = CosinePartial::default();
    let mut offset = 0usize;
    while offset < a.len() {
        let lanes = (a.len() - offset).min(COSINE_LANES);
        let mut beat_a = [0.0f32; COSINE_LANES];
        let mut beat_b = [0.0f32; COSINE_LANES];
        beat_a[..lanes].copy_from_slice(&a[offset..offset + lanes]);
        beat_b[..lanes].copy_from_slice(&b[offset..offset + lanes]);
        let mask = if lanes == COSINE_LANES {
            u8::MAX
        } else {
            (1u8 << lanes) - 1
        };
        let partial = cosine_partial(&beat_a, &beat_b, mask);
        // Stage-9 accumulation: one addition per beat for each running sum.
        acc.dot += partial.dot;
        acc.norm_sq += partial.norm_sq;
        offset += lanes;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_partial_of_identical_vectors_is_zero() {
        let v = [1.5f32; EUCLIDEAN_LANES];
        assert_eq!(euclidean_partial(&v, &v, u16::MAX), 0.0);
    }

    #[test]
    fn euclidean_partial_matches_manual_sum() {
        let mut a = [0.0f32; EUCLIDEAN_LANES];
        let mut b = [0.0f32; EUCLIDEAN_LANES];
        for i in 0..EUCLIDEAN_LANES {
            a[i] = i as f32;
            b[i] = (i as f32) * 0.5 - 1.0;
        }
        let expect: f32 = (0..EUCLIDEAN_LANES)
            .map(|i| {
                let d = a[i] - b[i];
                d * d
            })
            .sum();
        let got = euclidean_partial(&a, &b, u16::MAX);
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }

    #[test]
    fn mask_excludes_dimensions() {
        let a = [3.0f32; EUCLIDEAN_LANES];
        let b = [1.0f32; EUCLIDEAN_LANES];
        // Only dimensions 0 and 5 participate: 2 * (2^2) = 8.
        assert_eq!(euclidean_partial(&a, &b, 0b10_0001), 8.0);
        assert_eq!(euclidean_partial(&a, &b, 0), 0.0);
    }

    #[test]
    fn cosine_partial_matches_manual_sums() {
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [0.5f32, -1.0, 2.0, 0.0, 1.0, 3.0, -2.0, 0.25];
        let got = cosine_partial(&a, &b, u8::MAX);
        let dot: f32 = (0..8).map(|i| a[i] * b[i]).sum();
        let norm: f32 = (0..8).map(|i| b[i] * b[i]).sum();
        assert!((got.dot - dot).abs() < 1e-4);
        assert!((got.norm_sq - norm).abs() < 1e-4);
        let masked = cosine_partial(&a, &b, 0b0000_0011);
        assert_eq!(masked.dot, a[0] * b[0] + a[1] * b[1]);
        assert_eq!(masked.norm_sq, b[0] * b[0] + b[1] * b[1]);
    }

    #[test]
    fn arbitrary_dimension_vectors_accumulate_over_beats() {
        // 40 dimensions: 2 full Euclidean beats plus one masked beat of 8.
        let a: Vec<f32> = (0..40).map(|i| (i as f32) * 0.25).collect();
        let b: Vec<f32> = (0..40).map(|i| 10.0 - i as f32 * 0.5).collect();
        let expect: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let got = euclidean_distance_squared(&a, &b);
        assert!((got - expect).abs() / expect < 1e-5, "{got} vs {expect}");

        let parts = cosine_parts(&a, &b);
        let dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let norm: f32 = b.iter().map(|y| y * y).sum();
        assert!((parts.dot - dot).abs() / dot.abs() < 1e-4);
        assert!((parts.norm_sq - norm).abs() / norm < 1e-4);
    }

    #[test]
    fn empty_vectors_produce_zero() {
        assert_eq!(euclidean_distance_squared(&[], &[]), 0.0);
        assert_eq!(cosine_parts(&[], &[]), CosinePartial::default());
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn mismatched_dimensions_panic() {
        let _ = euclidean_distance_squared(&[1.0], &[1.0, 2.0]);
    }
}
