//! Golden model of the watertight ray–triangle intersection test (Woop et al., paper §II-C2).

use crate::{Ray, Triangle};

/// The result of one ray–triangle intersection test.
///
/// The datapath reports the intersection distance as a numerator/denominator pair (`t_num`,
/// `t_det`) because it contains no dividers; [`TriangleHit::distance`] performs the final
/// division in software, as the GPU core would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleHit {
    /// Whether the ray hits the front face of the triangle.
    pub hit: bool,
    /// Scaled barycentric coordinate U.
    pub u: f32,
    /// Scaled barycentric coordinate V.
    pub v: f32,
    /// Scaled barycentric coordinate W.
    pub w: f32,
    /// The determinant `U + V + W` (the denominator of the hit distance).
    pub det: f32,
    /// The scaled hit distance `U·Az + V·Bz + W·Cz` (the numerator of the hit distance).
    pub t_num: f32,
}

impl TriangleHit {
    /// A definite miss.
    #[must_use]
    pub fn miss() -> Self {
        TriangleHit {
            hit: false,
            u: 0.0,
            v: 0.0,
            w: 0.0,
            det: 0.0,
            t_num: 0.0,
        }
    }

    /// The parametric hit distance `t_num / det`.  NaN when the determinant is zero (which only
    /// happens for misses).
    #[must_use]
    pub fn distance(&self) -> f32 {
        self.t_num / self.det
    }
}

/// The watertight ray–triangle intersection test with backface culling, computed with the exact
/// operation structure of datapath stages 2–10 (Fig. 4b steps 4–9).
///
/// Semantics pinned by the paper's §IV-A test cases:
/// * backface culling — a hit requires the ray to strike the front face
///   (`dir · (AB × AC) > 0` in the paper's convention, equivalently `det > 0` here),
/// * coplanar rays always miss (they produce `det == 0`),
/// * a non-coplanar ray passing through an edge or vertex of the triangle hits,
/// * triangles behind the ray origin miss (negative scaled distance).
#[must_use]
pub fn ray_triangle(ray: &Ray, tri: &Triangle) -> TriangleHit {
    let shear = &ray.shear;
    let (kx, ky, kz) = (shear.kx, shear.ky, shear.kz);

    // Stage 2 — translate the triangle vertices to the ray origin (9 subtractions).
    let a = tri.v0 - ray.origin;
    let b = tri.v1 - ray.origin;
    let c = tri.v2 - ray.origin;

    // Stage 3 — shear/scale products against the pre-computed constants (9 multiplications).
    let sx_az = shear.sx * a.axis(kz);
    let sy_az = shear.sy * a.axis(kz);
    let az = shear.sz * a.axis(kz);
    let sx_bz = shear.sx * b.axis(kz);
    let sy_bz = shear.sy * b.axis(kz);
    let bz = shear.sz * b.axis(kz);
    let sx_cz = shear.sx * c.axis(kz);
    let sy_cz = shear.sy * c.axis(kz);
    let cz = shear.sz * c.axis(kz);

    // Stage 4 — complete the shear (6 subtractions).
    let ax = a.axis(kx) - sx_az;
    let ay = a.axis(ky) - sy_az;
    let bx = b.axis(kx) - sx_bz;
    let by = b.axis(ky) - sy_bz;
    let cx = c.axis(kx) - sx_cz;
    let cy = c.axis(ky) - sy_cz;

    // Stage 5 — products for the scaled barycentric coordinates (6 multiplications).
    let cxby = cx * by;
    let cybx = cy * bx;
    let axcy = ax * cy;
    let aycx = ay * cx;
    let bxay = bx * ay;
    let byax = by * ax;

    // Stage 6 — scaled barycentric coordinates (3 subtractions).  The operand order is chosen so
    // that a front-face hit under the paper's culling convention (`dir · (AB × AC) > 0`) yields
    // non-negative U, V, W and a positive determinant.
    let u = cybx - cxby;
    let v = aycx - axcy;
    let w = byax - bxay;

    // Stage 7 — products for the scaled hit distance (3 multiplications).
    let uaz = u * az;
    let vbz = v * bz;
    let wcz = w * cz;

    // Stages 8 and 9 — determinant and scaled hit distance (2 + 2 additions).
    let det_partial = u + v;
    let t_partial = uaz + vbz;
    let det = det_partial + w;
    let t_num = t_partial + wcz;

    // Stage 10 — the hit decision (5 comparisons, depth 1).
    let hit = u >= 0.0 && v >= 0.0 && w >= 0.0 && det > 0.0 && t_num >= 0.0;

    TriangleHit {
        hit,
        u,
        v,
        w,
        det,
        t_num,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec3;

    /// A front-facing triangle in the z = 3 plane for a ray travelling along +z.
    fn facing_triangle() -> Triangle {
        Triangle::new(
            Vec3::new(-1.0, -1.0, 3.0),
            Vec3::new(1.0, -1.0, 3.0),
            Vec3::new(0.0, 1.0, 3.0),
        )
    }

    #[test]
    fn front_face_hit_reports_correct_distance() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let hit = ray_triangle(&ray, &facing_triangle());
        assert!(hit.hit);
        assert!((hit.distance() - 3.0).abs() < 1e-6);
        assert!(hit.det > 0.0);
    }

    #[test]
    fn back_face_hit_is_culled() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let hit = ray_triangle(&ray, &facing_triangle().flipped());
        assert!(!hit.hit, "backface culling must reject back-side hits");
    }

    #[test]
    fn miss_outside_the_triangle() {
        let ray = Ray::new(Vec3::new(5.0, 5.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(!ray_triangle(&ray, &facing_triangle()).hit);
    }

    #[test]
    fn edge_and_vertex_hits_count_as_hits() {
        // The edge from (-1,-1,3) to (1,-1,3) passes through (0,-1,3).
        let edge_ray = Ray::new(Vec3::new(0.0, -1.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(ray_triangle(&edge_ray, &facing_triangle()).hit);
        // The vertex at (0,1,3).
        let vertex_ray = Ray::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(ray_triangle(&vertex_ray, &facing_triangle()).hit);
    }

    #[test]
    fn coplanar_ray_misses() {
        // Ray travelling inside the z = 3 plane, straight at the triangle.
        let ray = Ray::new(Vec3::new(-5.0, 0.0, 3.0), Vec3::new(1.0, 0.0, 0.0));
        let hit = ray_triangle(&ray, &facing_triangle());
        assert!(!hit.hit, "coplanar rays always miss");
    }

    #[test]
    fn triangle_behind_the_origin_misses() {
        let ray = Ray::new(Vec3::new(0.0, 0.0, 10.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = ray_triangle(&ray, &facing_triangle());
        assert!(!hit.hit, "triangle behind the ray must miss");
    }

    #[test]
    fn oblique_hit_matches_analytic_distance() {
        let origin = Vec3::new(-2.0, -1.5, 0.0);
        let target = Vec3::new(0.1, -0.2, 3.0); // inside the triangle's plane footprint
        let dir = target - origin;
        let ray = Ray::new(origin, dir);
        let hit = ray_triangle(&ray, &facing_triangle());
        assert!(hit.hit);
        // dir was constructed so the triangle plane (z = 3) is reached at t = 1.
        assert!((hit.distance() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn hit_for_any_dominant_axis() {
        // The same geometry rotated so the ray travels along +x and +y, exercising the axis
        // renaming paths (kz = X and kz = Y).
        let tri_x = Triangle::new(
            Vec3::new(3.0, -1.0, -1.0),
            Vec3::new(3.0, 1.0, -1.0),
            Vec3::new(3.0, 0.0, 1.0),
        );
        let ray_x = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        let hit = ray_triangle(&ray_x, &tri_x);
        assert!(hit.hit);
        assert!((hit.distance() - 3.0).abs() < 1e-6);

        let tri_y = Triangle::new(
            Vec3::new(-1.0, 3.0, -1.0),
            Vec3::new(0.0, 3.0, 1.0),
            Vec3::new(1.0, 3.0, -1.0),
        );
        let ray_y = Ray::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        let hit = ray_triangle(&ray_y, &tri_y);
        assert!(
            hit.hit,
            "u={} v={} w={} det={}",
            hit.u, hit.v, hit.w, hit.det
        );
        assert!((hit.distance() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn barycentrics_sum_to_the_determinant() {
        let ray = Ray::new(Vec3::new(0.1, -0.3, 0.0), Vec3::new(0.05, 0.02, 1.0));
        let hit = ray_triangle(&ray, &facing_triangle());
        assert!(hit.hit);
        let sum = hit.u + hit.v + hit.w;
        assert!((sum - hit.det).abs() <= f32::EPSILON * sum.abs() * 4.0);
    }
}
