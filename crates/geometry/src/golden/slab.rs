//! Golden model of the slab ray–box intersection test (paper Algorithm 1).

use crate::{Aabb, Ray};

/// The result of one ray–box intersection test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxHit {
    /// Whether the ray's extent overlaps the box.
    pub hit: bool,
    /// The parametric distance at which the ray enters the box (`tmin` in Algorithm 1).
    /// Only meaningful when `hit` is true; may be NaN for degenerate (coplanar) rays.
    pub t_entry: f32,
    /// The parametric distance at which the ray exits the box (`tmax` in Algorithm 1).
    pub t_exit: f32,
}

impl BoxHit {
    /// A definite miss, as produced for degenerate inputs.
    #[must_use]
    pub fn miss() -> Self {
        BoxHit {
            hit: false,
            t_entry: f32::INFINITY,
            t_exit: f32::NEG_INFINITY,
        }
    }

    /// The sort key used when ordering children by their order of intersection: hits sort by
    /// entry distance, misses sort last.
    #[must_use]
    pub fn sort_key(&self) -> f32 {
        if self.hit {
            self.t_entry
        } else {
            f32::INFINITY
        }
    }
}

/// Hardware-style minimum: a comparator (which also reports the *unordered* condition) followed
/// by a select.  NaN propagates from either operand, so a coplanar ray's `inf × 0 = NaN` poisons
/// the interval bounds and the final `tmin <= tmax` comparison returns false — the miss semantics
/// §IV-A of the paper relies on.
///
/// Public so the lane-batched fast path can pin its branchless select formulation against this
/// reference for every operand class (including NaN payload preservation).
#[must_use]
#[inline]
pub fn hw_min(a: f32, b: f32) -> f32 {
    if a.is_nan() {
        a
    } else if b.is_nan() {
        b
    } else if a < b {
        a
    } else {
        b
    }
}

/// Hardware-style maximum with the same NaN-propagating behaviour as [`hw_min`].
#[must_use]
#[inline]
pub fn hw_max(a: f32, b: f32) -> f32 {
    if a.is_nan() {
        a
    } else if b.is_nan() {
        b
    } else if a > b {
        a
    } else {
        b
    }
}

/// The slab ray–box intersection test, computed with the exact operation structure of the
/// datapath (translate, multiply by the inverse direction, per-axis near/far selection, interval
/// intersection with the ray extent).
///
/// The NaN semantics follow §IV-A of the paper: when a direction component is zero its inverse is
/// ±infinity, a coplanar ray then produces `inf × 0 = NaN`, every comparison involving NaN is
/// false and the ray reports a miss.
#[must_use]
#[inline]
pub fn ray_box(ray: &Ray, aabb: &Aabb) -> BoxHit {
    // Stage 2 — translate the box corners to the ray origin (6 subtractions per box).
    let lo_x = aabb.min.x - ray.origin.x;
    let lo_y = aabb.min.y - ray.origin.y;
    let lo_z = aabb.min.z - ray.origin.z;
    let hi_x = aabb.max.x - ray.origin.x;
    let hi_y = aabb.max.y - ray.origin.y;
    let hi_z = aabb.max.z - ray.origin.z;

    // Stage 3 — multiply by the pre-computed inverse direction (6 multiplications per box).
    let t_lo_x = lo_x * ray.inv_dir.x;
    let t_lo_y = lo_y * ray.inv_dir.y;
    let t_lo_z = lo_z * ray.inv_dir.z;
    let t_hi_x = hi_x * ray.inv_dir.x;
    let t_hi_y = hi_y * ray.inv_dir.y;
    let t_hi_z = hi_z * ray.inv_dir.z;

    // Stage 4 — per-axis near/far selection (3 comparisons), interval intersection with the ray
    // extent (6 comparisons) and the hit decision (1 comparison): 9 + 1 per box.
    let near_x = hw_min(t_lo_x, t_hi_x);
    let near_y = hw_min(t_lo_y, t_hi_y);
    let near_z = hw_min(t_lo_z, t_hi_z);
    let far_x = hw_max(t_lo_x, t_hi_x);
    let far_y = hw_max(t_lo_y, t_hi_y);
    let far_z = hw_max(t_lo_z, t_hi_z);

    let t_entry = hw_max(hw_max(near_x, near_y), hw_max(near_z, ray.t_beg));
    let t_exit = hw_min(hw_min(far_x, far_y), hw_min(far_z, ray.t_end));

    BoxHit {
        hit: t_entry <= t_exit,
        t_entry,
        t_exit,
    }
}

/// Sorts four ray–box results by their order of intersection using the five-comparator sorting
/// network of Fig. 4a step 5 (compare-exchange pairs (0,1), (2,3), (0,2), (1,3), (1,2)).
/// Misses sort after every hit; equal keys keep their original order.  Returns the child indices
/// in visit order, as `u8` lane numbers to keep the result struct compact.
#[must_use]
#[inline]
pub fn sort_boxes(hits: &[BoxHit; 4]) -> [u8; 4] {
    let mut order = [0u8, 1, 2, 3];
    let exchange = |order: &mut [u8; 4], i: usize, j: usize| {
        // Swap so that the element with the smaller key ends up at position i.
        if hits[order[j] as usize].sort_key() < hits[order[i] as usize].sort_key() {
            order.swap(i, j);
        }
    };
    exchange(&mut order, 0, 1);
    exchange(&mut order, 2, 3);
    exchange(&mut order, 0, 2);
    exchange(&mut order, 1, 3);
    exchange(&mut order, 1, 2);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec3;

    fn unit_box_at(center: Vec3, half: f32) -> Aabb {
        Aabb::new(center - Vec3::splat(half), center + Vec3::splat(half))
    }

    #[test]
    fn ray_from_inside_hits() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.3, 0.2, 1.0));
        let hit = ray_box(&ray, &unit_box_at(Vec3::ZERO, 1.0));
        assert!(hit.hit);
        assert!(hit.t_entry <= 0.0, "entry behind or at the origin");
    }

    #[test]
    fn ray_pointing_away_misses() {
        let ray = Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = ray_box(&ray, &unit_box_at(Vec3::ZERO, 1.0));
        assert!(!hit.hit);
    }

    #[test]
    fn ray_towards_box_hits_at_expected_distance() {
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = ray_box(&ray, &unit_box_at(Vec3::ZERO, 1.0));
        assert!(hit.hit);
        assert_eq!(hit.t_entry, 4.0);
        assert_eq!(hit.t_exit, 6.0);
    }

    #[test]
    fn coplanar_ray_misses_via_nan() {
        // Ray lying exactly in the plane of the box's top face, travelling along x.
        let ray = Ray::new(Vec3::new(-5.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        let aabb = unit_box_at(Vec3::ZERO, 1.0);
        let hit = ray_box(&ray, &aabb);
        assert!(
            !hit.hit,
            "coplanar rays must miss (inf * 0 = NaN semantics)"
        );
    }

    #[test]
    fn ray_extent_limits_the_hit() {
        let aabb = unit_box_at(Vec3::ZERO, 1.0);
        let short = Ray::with_extent(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::new(0.0, 0.0, 1.0),
            0.0,
            3.0,
        );
        assert!(!ray_box(&short, &aabb).hit, "box begins beyond the extent");
        let long = Ray::with_extent(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::new(0.0, 0.0, 1.0),
            0.0,
            4.5,
        );
        assert!(ray_box(&long, &aabb).hit);
    }

    #[test]
    fn negative_direction_components_are_handled() {
        let ray = Ray::new(Vec3::new(5.0, 5.0, 5.0), Vec3::new(-1.0, -1.0, -1.0));
        let hit = ray_box(&ray, &unit_box_at(Vec3::ZERO, 1.0));
        assert!(hit.hit);
        assert_eq!(hit.t_entry, 4.0);
    }

    #[test]
    fn sort_orders_hits_before_misses_by_distance() {
        let hits = [
            BoxHit {
                hit: true,
                t_entry: 7.0,
                t_exit: 8.0,
            },
            BoxHit::miss(),
            BoxHit {
                hit: true,
                t_entry: 2.0,
                t_exit: 3.0,
            },
            BoxHit {
                hit: true,
                t_entry: 5.0,
                t_exit: 6.0,
            },
        ];
        assert_eq!(sort_boxes(&hits), [2, 3, 0, 1]);
    }

    #[test]
    fn sort_is_stable_for_equal_keys_and_all_misses() {
        let all_miss = [BoxHit::miss(); 4];
        assert_eq!(sort_boxes(&all_miss), [0, 1, 2, 3]);
        let equal = [
            BoxHit {
                hit: true,
                t_entry: 1.0,
                t_exit: 2.0,
            },
            BoxHit {
                hit: true,
                t_entry: 1.0,
                t_exit: 2.5,
            },
            BoxHit {
                hit: true,
                t_entry: 1.0,
                t_exit: 3.0,
            },
            BoxHit {
                hit: true,
                t_entry: 1.0,
                t_exit: 3.5,
            },
        ];
        assert_eq!(sort_boxes(&equal), [0, 1, 2, 3]);
    }

    #[test]
    fn sort_handles_every_permutation_of_distinct_keys() {
        // Exhaustively check the 5-comparator network against a reference sort.
        let distances = [1.0f32, 2.0, 3.0, 4.0];
        let mut permutation = [0usize, 1, 2, 3];
        // Heap's algorithm, iterative enough for 24 permutations.
        let mut c = [0usize; 4];
        let check = |perm: &[usize; 4]| {
            let hits: Vec<BoxHit> = perm
                .iter()
                .map(|&p| BoxHit {
                    hit: true,
                    t_entry: distances[p],
                    t_exit: 10.0,
                })
                .collect();
            let hits: [BoxHit; 4] = [hits[0], hits[1], hits[2], hits[3]];
            let order = sort_boxes(&hits);
            let sorted: Vec<f32> = order.iter().map(|&i| hits[i as usize].t_entry).collect();
            assert_eq!(sorted, vec![1.0, 2.0, 3.0, 4.0], "permutation {perm:?}");
        };
        check(&permutation);
        let mut i = 0;
        while i < 4 {
            if c[i] < i {
                if i % 2 == 0 {
                    permutation.swap(0, i);
                } else {
                    permutation.swap(c[i], i);
                }
                check(&permutation);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    }
}
