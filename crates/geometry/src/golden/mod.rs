//! Golden software models of every operation the RayFlex datapath performs.
//!
//! These are the paper's "golden software implementation that serves as our ground truth"
//! (§IV-A).  Each model is written with the *same operation structure and evaluation order* as
//! the corresponding hardware stages and performs ordinary `f32` arithmetic, which rounds after
//! every operation exactly as the datapath's recoded-format units do.  The hardware model in
//! `rayflex-core` is therefore expected to reproduce these results bit-for-bit, and the
//! integration tests enforce that.

pub mod distance;
pub mod slab;
pub mod watertight;

pub use distance::{cosine_partial, euclidean_partial, CosinePartial};
pub use slab::{ray_box, sort_boxes, BoxHit};
pub use watertight::{ray_triangle, TriangleHit};
