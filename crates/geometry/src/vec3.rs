//! Three-component `f32` vectors and axis indexing.

use core::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub};

/// One of the three coordinate axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// The x axis (index 0).
    X,
    /// The y axis (index 1).
    Y,
    /// The z axis (index 2).
    Z,
}

impl Axis {
    /// All three axes in index order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// The numeric index of the axis (0, 1 or 2).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// The axis with index `(self + 1) % 3`, used by the watertight test's winding-preserving
    /// axis renaming.
    #[must_use]
    pub fn next(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::Z,
            Axis::Z => Axis::X,
        }
    }

    /// Builds an axis from a numeric index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not 0, 1 or 2.
    #[must_use]
    pub fn from_index(index: usize) -> Axis {
        match index {
            0 => Axis::X,
            1 => Axis::Y,
            2 => Axis::Z,
            other => panic!("axis index out of range: {other}"),
        }
    }
}

/// A three-component single-precision vector (point, direction or colour).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// The x component.
    pub x: f32,
    /// The y component.
    pub y: f32,
    /// The z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    #[must_use]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[must_use]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Returns the component along `axis`.
    #[must_use]
    pub fn axis(self, axis: Axis) -> f32 {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
            Axis::Z => self.z,
        }
    }

    /// Returns the components as an array in `[x, y, z]` order.
    #[must_use]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an `[x, y, z]` array.
    #[must_use]
    pub fn from_array(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }

    /// The dot product of two vectors.
    #[must_use]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// The cross product of two vectors.
    #[must_use]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// The Euclidean length of the vector.
    #[must_use]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// The squared Euclidean length of the vector.
    #[must_use]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics if the vector has zero length.
    #[must_use]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        assert!(len > 0.0, "cannot normalise a zero-length vector");
        self / len
    }

    /// Component-wise minimum.
    #[must_use]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[must_use]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise reciprocal (`1.0 / v`), producing ±infinity for zero components exactly as
    /// the pre-computed inverse ray direction does in the RDNA3 ray format.
    #[must_use]
    pub fn recip(self) -> Vec3 {
        Vec3::new(1.0 / self.x, 1.0 / self.y, 1.0 / self.z)
    }

    /// The axis along which the vector has the largest absolute component (ties broken towards
    /// the later axis, matching the watertight reference implementation).
    #[must_use]
    pub fn max_abs_axis(self) -> Axis {
        let ax = self.x.abs();
        let ay = self.y.abs();
        let az = self.z.abs();
        if az >= ax && az >= ay {
            Axis::Z
        } else if ay >= ax {
            Axis::Y
        } else {
            Axis::X
        }
    }

    /// Returns `true` if all components are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Mul<Vec3> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<Axis> for Vec3 {
    type Output = f32;
    fn index(&self, axis: Axis) -> &f32 {
        match axis {
            Axis::X => &self.x,
            Axis::Y => &self.y,
            Axis::Z => &self.z,
        }
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;
    fn index(&self, index: usize) -> &f32 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            other => panic!("vector index out of range: {other}"),
        }
    }
}

impl core::fmt::Display for Vec3 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_operators() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a * b, Vec3::new(4.0, 10.0, 18.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn dot_and_cross_products() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(
            Vec3::new(1.0, 2.0, 3.0).dot(Vec3::new(4.0, -5.0, 6.0)),
            12.0
        );
    }

    #[test]
    fn length_and_normalisation() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn normalising_zero_panics() {
        let _ = Vec3::ZERO.normalized();
    }

    #[test]
    fn recip_produces_infinity_for_zero_components() {
        let v = Vec3::new(2.0, 0.0, -4.0).recip();
        assert_eq!(v.x, 0.5);
        assert!(v.y.is_infinite() && v.y > 0.0);
        assert_eq!(v.z, -0.25);
    }

    #[test]
    fn axis_helpers() {
        assert_eq!(Axis::X.next(), Axis::Y);
        assert_eq!(Axis::Z.next(), Axis::X);
        assert_eq!(Axis::from_index(2), Axis::Z);
        assert_eq!(Axis::Y.index(), 1);
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v.axis(Axis::Y), 8.0);
        assert_eq!(v[Axis::Z], 9.0);
        assert_eq!(v[0], 7.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn axis_from_bad_index_panics() {
        let _ = Axis::from_index(3);
    }

    #[test]
    fn max_abs_axis_picks_dominant_component() {
        assert_eq!(Vec3::new(1.0, -5.0, 2.0).max_abs_axis(), Axis::Y);
        assert_eq!(Vec3::new(-9.0, 3.0, 2.0).max_abs_axis(), Axis::X);
        assert_eq!(Vec3::new(1.0, 1.0, 1.0).max_abs_axis(), Axis::Z);
    }

    #[test]
    fn min_max_and_arrays() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.5);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.5));
        assert_eq!(Vec3::from_array(a.to_array()), a);
        assert_eq!(Vec3::splat(2.0), Vec3::new(2.0, 2.0, 2.0));
        assert!(a.is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
    }
}
