//! Triangle primitives.

use crate::{Aabb, Vec3};

/// A triangle primitive defined by its three vertices (nine FP32 values in the datapath's IO
/// specification), wound counter-clockwise when viewed from the front face.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub v0: Vec3,
    /// Second vertex.
    pub v1: Vec3,
    /// Third vertex.
    pub v2: Vec3,
}

impl Triangle {
    /// Creates a triangle from its vertices.
    #[must_use]
    pub const fn new(v0: Vec3, v1: Vec3, v2: Vec3) -> Self {
        Triangle { v0, v1, v2 }
    }

    /// The (un-normalised) geometric normal `(v1 - v0) × (v2 - v0)`.
    ///
    /// With backface culling, a ray hits the triangle only when `dir · normal > 0` is false —
    /// i.e. the paper's convention that a hit implies `dir · (AB × AC) > 0` refers to this vector
    /// with its sign as computed here.
    #[must_use]
    pub fn normal(&self) -> Vec3 {
        (self.v1 - self.v0).cross(self.v2 - self.v0)
    }

    /// The triangle's area.
    #[must_use]
    pub fn area(&self) -> f32 {
        0.5 * self.normal().length()
    }

    /// The centroid of the triangle.
    #[must_use]
    pub fn centroid(&self) -> Vec3 {
        (self.v0 + self.v1 + self.v2) / 3.0
    }

    /// The smallest axis-aligned box containing the triangle.
    #[must_use]
    pub fn bounds(&self) -> Aabb {
        Aabb::from_points([self.v0, self.v1, self.v2])
    }

    /// Returns the triangle with its winding order flipped (swapping which side is the front).
    #[must_use]
    pub fn flipped(&self) -> Triangle {
        Triangle::new(self.v0, self.v2, self.v1)
    }

    /// Returns the triangle translated by `offset`.
    #[must_use]
    pub fn translated(&self, offset: Vec3) -> Triangle {
        Triangle::new(self.v0 + offset, self.v1 + offset, self.v2 + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_xy_triangle() -> Triangle {
        Triangle::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        )
    }

    #[test]
    fn normal_and_area() {
        let t = unit_xy_triangle();
        assert_eq!(t.normal(), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(t.area(), 0.5);
        assert_eq!(t.flipped().normal(), Vec3::new(0.0, 0.0, -1.0));
    }

    #[test]
    fn centroid_and_bounds() {
        let t = unit_xy_triangle();
        let c = t.centroid();
        assert!((c.x - 1.0 / 3.0).abs() < 1e-6);
        assert!((c.y - 1.0 / 3.0).abs() < 1e-6);
        let b = t.bounds();
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn translation_moves_every_vertex() {
        let t = unit_xy_triangle().translated(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.v0, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.v1, Vec3::new(2.0, 2.0, 3.0));
        assert_eq!(t.v2, Vec3::new(1.0, 3.0, 3.0));
    }
}
