//! Sphere primitives for hierarchical-search workloads.

use crate::{Aabb, Vec3};

/// A sphere, used to represent dataset points in the hierarchical-search workloads the extended
/// RT unit accelerates (paper §V-A): dataset points become tiny spheres grouped into a BVH, and a
/// query becomes a short ray.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    /// The sphere centre.
    pub center: Vec3,
    /// The sphere radius.
    pub radius: f32,
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    ///
    /// Panics if the radius is negative.
    #[must_use]
    pub fn new(center: Vec3, radius: f32) -> Self {
        assert!(radius >= 0.0, "sphere radius must be non-negative");
        Sphere { center, radius }
    }

    /// The smallest axis-aligned box containing the sphere.
    #[must_use]
    pub fn bounds(&self) -> Aabb {
        Aabb::new(
            self.center - Vec3::splat(self.radius),
            self.center + Vec3::splat(self.radius),
        )
    }

    /// Returns `true` if the point lies inside or on the sphere.
    #[must_use]
    pub fn contains(&self, p: Vec3) -> bool {
        (p - self.center).length_squared() <= self.radius * self.radius
    }

    /// Squared distance from the sphere centre to a point.
    #[must_use]
    pub fn center_distance_squared(&self, p: Vec3) -> f32 {
        (p - self.center).length_squared()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_enclose_the_sphere() {
        let s = Sphere::new(Vec3::new(1.0, 2.0, 3.0), 0.5);
        let b = s.bounds();
        assert_eq!(b.min, Vec3::new(0.5, 1.5, 2.5));
        assert_eq!(b.max, Vec3::new(1.5, 2.5, 3.5));
    }

    #[test]
    fn containment_checks() {
        let s = Sphere::new(Vec3::ZERO, 1.0);
        assert!(s.contains(Vec3::new(0.5, 0.5, 0.5)));
        assert!(s.contains(Vec3::new(1.0, 0.0, 0.0)));
        assert!(!s.contains(Vec3::new(1.0, 1.0, 1.0)));
        assert_eq!(s.center_distance_squared(Vec3::new(0.0, 2.0, 0.0)), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_panics() {
        let _ = Sphere::new(Vec3::ZERO, -1.0);
    }
}
