//! Structure-of-arrays packets for streaming rays and boxes through the datapath in bulk.
//!
//! The workload engines above the datapath (`rayflex-rtunit`) process millions of rays per run;
//! carrying them as `Vec<Ray>` (array-of-structures) wastes cache footprint on the fields a given
//! loop does not touch and forces one 96-byte element copy per access.  [`RayPacket`] and
//! [`AabbPacket`] store the same data as parallel component arrays (structure-of-arrays): a loop
//! that only needs `t_end`, say, walks one dense `f32` array, and a batch frontend can append and
//! reuse storage without per-ray allocation.
//!
//! Conversion is lossless in both directions: a [`Ray`] reconstructed by [`RayPacket::get`]
//! carries bit-identical fields to the one pushed, including the pre-computed inverse direction
//! and shear constants (they are stored, never recomputed).

use crate::{Aabb, Axis, Ray, ShearConstants, Vec3};

/// A resizable structure-of-arrays collection of [`Ray`]s.
///
/// # Example
///
/// ```
/// use rayflex_geometry::{Ray, RayPacket, Vec3};
///
/// let rays: Vec<Ray> = (0..4)
///     .map(|i| Ray::new(Vec3::new(i as f32, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0)))
///     .collect();
/// let packet = RayPacket::from_rays(&rays);
/// assert_eq!(packet.len(), 4);
/// assert_eq!(packet.get(2), rays[2]);
/// assert!(packet.iter().eq(rays));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RayPacket {
    origin: [Vec<f32>; 3],
    dir: [Vec<f32>; 3],
    inv_dir: [Vec<f32>; 3],
    t_beg: Vec<f32>,
    t_end: Vec<f32>,
    /// Axis renaming indices packed as `kx | ky << 2 | kz << 4` (each axis fits in two bits).
    k_packed: Vec<u8>,
    shear: [Vec<f32>; 3],
}

impl RayPacket {
    /// An empty packet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty packet with storage reserved for `capacity` rays.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut packet = Self::default();
        packet.reserve(capacity);
        packet
    }

    /// Converts an array-of-structures slice.
    #[must_use]
    pub fn from_rays(rays: &[Ray]) -> Self {
        let mut packet = Self::with_capacity(rays.len());
        packet.extend_from_rays(rays);
        packet
    }

    /// Number of rays in the packet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.t_beg.len()
    }

    /// Whether the packet holds no rays.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.t_beg.is_empty()
    }

    /// Reserves storage for `additional` more rays in every component array.
    pub fn reserve(&mut self, additional: usize) {
        for axis in 0..3 {
            self.origin[axis].reserve(additional);
            self.dir[axis].reserve(additional);
            self.inv_dir[axis].reserve(additional);
            self.shear[axis].reserve(additional);
        }
        self.t_beg.reserve(additional);
        self.t_end.reserve(additional);
        self.k_packed.reserve(additional);
    }

    /// Removes all rays, keeping the allocated storage for reuse.
    pub fn clear(&mut self) {
        for axis in 0..3 {
            self.origin[axis].clear();
            self.dir[axis].clear();
            self.inv_dir[axis].clear();
            self.shear[axis].clear();
        }
        self.t_beg.clear();
        self.t_end.clear();
        self.k_packed.clear();
    }

    /// Appends one ray, copying each field into its component array.
    pub fn push(&mut self, ray: &Ray) {
        let origin = ray.origin.to_array();
        let dir = ray.dir.to_array();
        let inv_dir = ray.inv_dir.to_array();
        let shear = [ray.shear.sx, ray.shear.sy, ray.shear.sz];
        for axis in 0..3 {
            self.origin[axis].push(origin[axis]);
            self.dir[axis].push(dir[axis]);
            self.inv_dir[axis].push(inv_dir[axis]);
            self.shear[axis].push(shear[axis]);
        }
        self.t_beg.push(ray.t_beg);
        self.t_end.push(ray.t_end);
        self.k_packed.push(
            (ray.shear.kx.index() | ray.shear.ky.index() << 2 | ray.shear.kz.index() << 4) as u8,
        );
    }

    /// Appends every ray of a slice.
    pub fn extend_from_rays(&mut self, rays: &[Ray]) {
        self.reserve(rays.len());
        for ray in rays {
            self.push(ray);
        }
    }

    /// Reconstructs the ray at `index` bit-identically (no field is recomputed).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> Ray {
        let component =
            |soa: &[Vec<f32>; 3]| Vec3::new(soa[0][index], soa[1][index], soa[2][index]);
        let packed = self.k_packed[index] as usize;
        Ray {
            origin: component(&self.origin),
            dir: component(&self.dir),
            inv_dir: component(&self.inv_dir),
            t_beg: self.t_beg[index],
            t_end: self.t_end[index],
            shear: ShearConstants {
                kx: Axis::from_index(packed & 0b11),
                ky: Axis::from_index(packed >> 2 & 0b11),
                kz: Axis::from_index(packed >> 4 & 0b11),
                sx: self.shear[0][index],
                sy: self.shear[1][index],
                sz: self.shear[2][index],
            },
        }
    }

    /// Iterates over the rays in order (each reconstructed as by [`RayPacket::get`]).
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Ray> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Converts back to an array-of-structures vector.
    #[must_use]
    pub fn to_rays(&self) -> Vec<Ray> {
        self.iter().collect()
    }

    /// The parametric-extent start values as one dense array.
    #[must_use]
    pub fn t_beg_lane(&self) -> &[f32] {
        &self.t_beg
    }

    /// The parametric-extent end values as one dense array.
    #[must_use]
    pub fn t_end_lane(&self) -> &[f32] {
        &self.t_end
    }

    /// One origin component as a dense array (`axis` 0 = x, 1 = y, 2 = z).
    #[must_use]
    pub fn origin_lane(&self, axis: Axis) -> &[f32] {
        &self.origin[axis.index()]
    }

    /// One direction component as a dense array.
    #[must_use]
    pub fn dir_lane(&self, axis: Axis) -> &[f32] {
        &self.dir[axis.index()]
    }
}

impl FromIterator<Ray> for RayPacket {
    fn from_iter<I: IntoIterator<Item = Ray>>(iter: I) -> Self {
        let mut packet = RayPacket::new();
        for ray in iter {
            packet.push(&ray);
        }
        packet
    }
}

/// A resizable structure-of-arrays collection of [`Aabb`]s, grouped on demand into the four-box
/// quads the datapath's ray–box beat consumes.
///
/// # Example
///
/// ```
/// use rayflex_geometry::{Aabb, AabbPacket, Vec3};
///
/// let boxes: Vec<Aabb> = (0..6)
///     .map(|i| Aabb::new(Vec3::splat(i as f32), Vec3::splat(i as f32 + 1.0)))
///     .collect();
/// let packet = AabbPacket::from_aabbs(&boxes);
/// assert_eq!(packet.len(), 6);
/// assert_eq!(packet.quad_count(), 2);
/// let quad = packet.quad(1);
/// assert_eq!(quad[0], boxes[4]);
/// assert!(quad[2].is_empty(), "missing slots pad with empty boxes");
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AabbPacket {
    min: [Vec<f32>; 3],
    max: [Vec<f32>; 3],
}

impl AabbPacket {
    /// An empty packet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Converts an array-of-structures slice.
    #[must_use]
    pub fn from_aabbs(boxes: &[Aabb]) -> Self {
        let mut packet = Self::default();
        for axis in 0..3 {
            packet.min[axis].reserve(boxes.len());
            packet.max[axis].reserve(boxes.len());
        }
        for aabb in boxes {
            packet.push(aabb);
        }
        packet
    }

    /// Number of boxes in the packet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.min[0].len()
    }

    /// Whether the packet holds no boxes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.min[0].is_empty()
    }

    /// Removes all boxes, keeping the allocated storage for reuse.
    pub fn clear(&mut self) {
        for axis in 0..3 {
            self.min[axis].clear();
            self.max[axis].clear();
        }
    }

    /// Appends one box.
    pub fn push(&mut self, aabb: &Aabb) {
        let (min, max) = (aabb.min.to_array(), aabb.max.to_array());
        for axis in 0..3 {
            self.min[axis].push(min[axis]);
            self.max[axis].push(max[axis]);
        }
    }

    /// Reconstructs the box at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> Aabb {
        Aabb::new(
            Vec3::new(self.min[0][index], self.min[1][index], self.min[2][index]),
            Vec3::new(self.max[0][index], self.max[1][index], self.max[2][index]),
        )
    }

    /// Number of four-box quads (the last quad pads with empty boxes).
    #[must_use]
    pub fn quad_count(&self) -> usize {
        self.len().div_ceil(4)
    }

    /// The four-box beat operand for quad `quad_index`; slots past the end hold [`Aabb::empty`],
    /// which the datapath can never hit.
    ///
    /// # Panics
    ///
    /// Panics if `quad_index >= self.quad_count()`.
    #[must_use]
    pub fn quad(&self, quad_index: usize) -> [Aabb; 4] {
        assert!(
            quad_index < self.quad_count(),
            "quad {quad_index} out of range"
        );
        core::array::from_fn(|slot| {
            let index = quad_index * 4 + slot;
            if index < self.len() {
                self.get(index)
            } else {
                Aabb::empty()
            }
        })
    }

    /// Iterates over the boxes in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Aabb> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

impl FromIterator<Aabb> for AabbPacket {
    fn from_iter<I: IntoIterator<Item = Aabb>>(iter: I) -> Self {
        let mut packet = AabbPacket::new();
        for aabb in iter {
            packet.push(&aabb);
        }
        packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rays() -> Vec<Ray> {
        (0..17)
            .map(|i| {
                let f = i as f32;
                Ray::with_extent(
                    Vec3::new(f, -f, 0.5 * f),
                    Vec3::new(0.1 * f + 0.01, -1.0, f - 8.0),
                    0.25,
                    1000.0 + f,
                )
            })
            .collect()
    }

    #[test]
    fn rays_round_trip_bit_identically() {
        let rays = sample_rays();
        let packet = RayPacket::from_rays(&rays);
        assert_eq!(packet.len(), rays.len());
        for (i, ray) in rays.iter().enumerate() {
            let got = packet.get(i);
            assert_eq!(
                got.origin.to_array().map(f32::to_bits),
                ray.origin.to_array().map(f32::to_bits)
            );
            assert_eq!(
                got.inv_dir.to_array().map(f32::to_bits),
                ray.inv_dir.to_array().map(f32::to_bits)
            );
            assert_eq!(got.shear.sx.to_bits(), ray.shear.sx.to_bits());
            assert_eq!(
                (got.shear.kx, got.shear.ky, got.shear.kz),
                (ray.shear.kx, ray.shear.ky, ray.shear.kz)
            );
            assert_eq!(got.t_end.to_bits(), ray.t_end.to_bits());
        }
        assert_eq!(packet.to_rays(), rays);
    }

    #[test]
    fn packets_reuse_storage_across_clears() {
        let rays = sample_rays();
        let mut packet = RayPacket::with_capacity(rays.len());
        packet.extend_from_rays(&rays);
        packet.clear();
        assert!(packet.is_empty());
        packet.extend_from_rays(&rays[..4]);
        assert_eq!(packet.len(), 4);
        assert_eq!(packet.get(3), rays[3]);
    }

    #[test]
    fn lanes_expose_dense_components() {
        let rays = sample_rays();
        let packet: RayPacket = rays.iter().copied().collect();
        assert_eq!(packet.t_beg_lane().len(), rays.len());
        assert_eq!(packet.origin_lane(Axis::Y)[2], rays[2].origin.y);
        assert_eq!(packet.dir_lane(Axis::Z)[5], rays[5].dir.z);
        assert_eq!(packet.t_end_lane()[16], rays[16].t_end);
    }

    #[test]
    fn aabb_quads_pad_with_unhittable_boxes() {
        let boxes: Vec<Aabb> = (0..9)
            .map(|i| Aabb::new(Vec3::splat(i as f32), Vec3::splat(i as f32 + 0.5)))
            .collect();
        let packet: AabbPacket = boxes.iter().copied().collect();
        assert_eq!(packet.quad_count(), 3);
        for quad_index in 0..packet.quad_count() {
            for (slot, aabb) in packet.quad(quad_index).iter().enumerate() {
                let index = quad_index * 4 + slot;
                if index < boxes.len() {
                    assert_eq!(*aabb, boxes[index]);
                } else {
                    assert!(aabb.is_empty());
                }
            }
        }
        assert_eq!(packet.iter().count(), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_quads_panic() {
        let packet = AabbPacket::from_aabbs(&[Aabb::new(Vec3::ZERO, Vec3::ONE)]);
        let _ = packet.quad(1);
    }
}
