//! # rayflex-synth
//!
//! A "virtual synthesis" flow standing in for the paper's Cadence Genus + 15 nm FreePDK flow.
//!
//! The RayFlex paper evaluates its datapath by synthesising the Chisel-generated RTL with a 15 nm
//! open cell library and reporting circuit area (decomposed into sequential / inverter / buffer /
//! logic) and power (from VCD stimulus of random testbenches).  Neither the synthesis tool nor the
//! PDK is available to a Rust reproduction, so this crate provides an *analytical model* with the
//! same interfaces and the same observable trends:
//!
//! * [`CellLibrary`] — per-functional-unit area and energy characterisation, 15 nm-inspired and
//!   calibrated so the relative results of the paper's Figs. 7–9 are reproduced,
//! * [`estimate_area`] — turns a [`HardwareInventory`](rayflex_hw::HardwareInventory) (from `rayflex-hw`) into an
//!   [`AreaReport`] with the paper's four area categories,
//! * [`estimate_power`] — turns an inventory plus an [`ActivityTrace`](rayflex_hw::ActivityTrace) (the VCD substitute) into
//!   a [`PowerReport`] of dynamic and static power at a target clock,
//! * [`report`] — plain-text table formatting used by the benchmark harnesses.
//!
//! Absolute numbers are indicative only; the model's purpose is to preserve *who wins, by roughly
//! what factor, and why* (functional-unit sharing, register liveness, operand gating and squarer
//! specialisation), as documented in `DESIGN.md` and `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```
//! use rayflex_hw::{FuKind, HardwareInventory, StageInventory};
//! use rayflex_synth::{estimate_area, CellLibrary};
//!
//! let mut stage = StageInventory::new();
//! stage.add_fu(FuKind::Adder, 24);
//! stage.set_register_bits(1024);
//! let mut inventory = HardwareInventory::new("demo");
//! inventory.push_stage(stage);
//!
//! let area = estimate_area(&inventory, 1000.0, &CellLibrary::freepdk15());
//! assert!(area.total() > 0.0);
//! assert!(area.logic > area.buffer);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod area;
mod cell_library;
mod power;
pub mod report;

pub use area::{estimate_area, fu_logic_area, AreaReport};
pub use cell_library::{CellLibrary, FuCharacterisation};
pub use power::{estimate_power, PowerReport};
