//! Power estimation from activity traces (the paper's Fig. 8 / Fig. 9 quantity).

use rayflex_hw::{ActivityTrace, HardwareInventory};

use crate::{estimate_area, CellLibrary};

/// A power estimate for one workload on one design point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerReport {
    /// Dynamic (switching) power in mW.
    pub dynamic_mw: f64,
    /// Static (leakage) power in mW.
    pub static_mw: f64,
    /// Average switched energy per cycle in pJ (the frequency-independent part of the model).
    pub energy_per_cycle_pj: f64,
}

impl PowerReport {
    /// Total power in mW.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.static_mw
    }

    /// Relative difference of this report's total against a baseline total, as a fraction.
    #[must_use]
    pub fn overhead_vs(&self, baseline: &PowerReport) -> f64 {
        self.total_mw() / baseline.total_mw() - 1.0
    }
}

/// Estimates the power of a design described by `inventory` while executing the workload captured
/// in `activity`, synthesised and clocked at `clock_mhz`.
///
/// Dynamic power is activity-driven: every functional-unit operation contributes its library
/// energy (idle units are zero-gated by their operand multiplexers and contribute nothing, as in
/// §VII-B of the paper), every pipeline-register bit written contributes the register-write
/// energy, and the accumulator registers of the extended design contribute when their operations
/// flow.  Static power is the leakage density times the estimated circuit area, an order of
/// magnitude below dynamic power for this library — also as the paper observes.
#[must_use]
pub fn estimate_power(
    inventory: &HardwareInventory,
    activity: &ActivityTrace,
    clock_mhz: f64,
    library: &CellLibrary,
) -> PowerReport {
    let cycles = activity.cycles().max(1) as f64;

    let mut energy_pj = 0.0;
    for ((_stage, kind), ops) in activity.fu_entries() {
        energy_pj += library.fu(kind).energy_per_op_pj * ops as f64;
    }
    energy_pj +=
        library.register_bit_write_energy_pj() * activity.total_register_bit_writes() as f64;
    energy_pj +=
        library.accumulator_bit_write_energy_pj() * activity.total_accumulator_bit_writes() as f64;

    let energy_per_cycle_pj = energy_pj / cycles;
    let dynamic_mw = energy_per_cycle_pj * clock_mhz / 1000.0;
    let area = estimate_area(inventory, clock_mhz, library);
    let static_mw = area.total() * library.leakage_uw_per_um2() / 1000.0;

    PowerReport {
        dynamic_mw,
        static_mw,
        energy_per_cycle_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_core::activity::full_throughput_trace;
    use rayflex_core::inventory::build_inventory;
    use rayflex_core::{Opcode, PipelineConfig};

    /// Full-throughput power of one opcode on one configuration at `clock_mhz`.
    fn power(opcode: Opcode, config: PipelineConfig, clock_mhz: f64) -> PowerReport {
        let inventory = build_inventory(&config);
        let trace = full_throughput_trace(opcode, &config, 1000);
        estimate_power(&inventory, &trace, clock_mhz, &CellLibrary::freepdk15())
    }

    #[test]
    fn all_operating_points_fall_in_a_plausible_band() {
        // Paper Fig. 8: every mode/configuration lands between 60 and 85 mW at 1 GHz.  The
        // analytical model is expected to land in the same regime; the band is kept generous.
        for config in PipelineConfig::evaluated_configs() {
            for opcode in Opcode::ALL {
                if !config.supports(opcode) {
                    continue;
                }
                let p = power(opcode, config, 1000.0).total_mw();
                assert!((45.0..110.0).contains(&p), "{config} {opcode}: {p:.1} mW");
            }
        }
    }

    #[test]
    fn static_power_is_an_order_of_magnitude_below_dynamic() {
        let p = power(
            Opcode::RayTriangle,
            PipelineConfig::baseline_unified(),
            1000.0,
        );
        assert!(p.static_mw * 5.0 < p.dynamic_mw);
        assert!(p.static_mw > 0.0);
    }

    #[test]
    fn extending_the_datapath_costs_power_on_baseline_operations() {
        // Paper: +18 % (ray-box) and +20 % (ray-triangle) moving from baseline to extended in the
        // unified design, caused by the extra pipeline registers.
        for opcode in [Opcode::RayBox, Opcode::RayTriangle] {
            let base = power(opcode, PipelineConfig::baseline_unified(), 1000.0);
            let ext = power(opcode, PipelineConfig::extended_unified(), 1000.0);
            let overhead = ext.overhead_vs(&base);
            assert!((0.08..0.35).contains(&overhead), "{opcode}: {overhead:.2}");
        }
    }

    #[test]
    fn fu_sharing_barely_changes_baseline_operation_power() {
        // Paper: within ±2.5 % thanks to the zero-gated operand multiplexers.
        for opcode in [Opcode::RayBox, Opcode::RayTriangle] {
            let unified = power(opcode, PipelineConfig::extended_unified(), 1000.0);
            let disjoint = power(opcode, PipelineConfig::extended_disjoint(), 1000.0);
            let delta = disjoint.overhead_vs(&unified).abs();
            assert!(delta < 0.05, "{opcode}: {delta:.3}");
        }
    }

    #[test]
    fn squarer_specialisation_saves_euclidean_and_cosine_power() {
        // Paper: −9 % (Euclidean) and −3 % (cosine) in the disjoint design, traced to multipliers
        // specialised into squarers; the perturbed design loses the saving.
        let euclid_uni = power(
            Opcode::Euclidean,
            PipelineConfig::extended_unified(),
            1000.0,
        );
        let euclid_dis = power(
            Opcode::Euclidean,
            PipelineConfig::extended_disjoint(),
            1000.0,
        );
        let euclid_saving = -euclid_dis.overhead_vs(&euclid_uni);
        assert!(
            (0.02..0.15).contains(&euclid_saving),
            "euclidean saving {euclid_saving:.3}"
        );

        let cos_uni = power(Opcode::Cosine, PipelineConfig::extended_unified(), 1000.0);
        let cos_dis = power(Opcode::Cosine, PipelineConfig::extended_disjoint(), 1000.0);
        let cos_saving = -cos_dis.overhead_vs(&cos_uni);
        assert!(
            (0.01..0.10).contains(&cos_saving),
            "cosine saving {cos_saving:.3}"
        );
        assert!(
            euclid_saving > cos_saving,
            "Euclidean specialises twice as many multipliers"
        );

        let perturbed = PipelineConfig::extended_disjoint().with_squarer_perturbation(true);
        let euclid_pert = power(Opcode::Euclidean, perturbed, 1000.0);
        assert!(
            euclid_pert.total_mw() > euclid_dis.total_mw(),
            "perturbing stage 3 must remove the squarer saving"
        );
        let pert_vs_unified = euclid_pert.overhead_vs(&euclid_uni).abs();
        assert!(
            pert_vs_unified < 0.05,
            "perturbed design is back near the unified power"
        );
    }

    #[test]
    fn power_scales_nearly_linearly_with_the_target_clock() {
        // Paper Fig. 9: near-linear power across 500–1500 MHz.
        let config = PipelineConfig::extended_unified();
        let p500 = power(Opcode::RayTriangle, config, 500.0).total_mw();
        let p1000 = power(Opcode::RayTriangle, config, 1000.0).total_mw();
        let p1500 = power(Opcode::RayTriangle, config, 1500.0).total_mw();
        assert!(p500 < p1000 && p1000 < p1500);
        let ratio = p1500 / p500;
        assert!(
            (2.5..3.5).contains(&ratio),
            "near-linear scaling, got {ratio:.2}"
        );
        // Baseline-vs-extended stays in the paper's 14–22 % corridor across the range (generous
        // band: 8–35 %).
        for clock in [500.0, 750.0, 1000.0, 1250.0, 1500.0] {
            let base = power(
                Opcode::RayTriangle,
                PipelineConfig::baseline_unified(),
                clock,
            );
            let ext = power(Opcode::RayTriangle, config, clock);
            let overhead = ext.overhead_vs(&base);
            assert!(
                (0.08..0.35).contains(&overhead),
                "at {clock} MHz: {overhead:.2}"
            );
        }
    }

    #[test]
    fn empty_traces_produce_zero_dynamic_power() {
        let config = PipelineConfig::baseline_unified();
        let inventory = build_inventory(&config);
        let report = estimate_power(
            &inventory,
            &rayflex_hw::ActivityTrace::new(),
            1000.0,
            &CellLibrary::freepdk15(),
        );
        assert_eq!(report.dynamic_mw, 0.0);
        assert!(report.static_mw > 0.0);
    }
}
