//! Circuit-area estimation (the paper's Fig. 7 quantity).

use rayflex_hw::{FuKind, HardwareInventory};

use crate::CellLibrary;

/// A circuit-area estimate decomposed into the four categories the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaReport {
    /// Flip-flop / latch area (pipeline registers, skid registers, accumulators), in µm².
    pub sequential: f64,
    /// Inverter area, in µm².
    pub inverter: f64,
    /// Clock- and data-buffer area, in µm².
    pub buffer: f64,
    /// Combinational logic area (functional units, multiplexers, converters), in µm².
    pub logic: f64,
}

impl AreaReport {
    /// Total circuit area in µm².
    #[must_use]
    pub fn total(&self) -> f64 {
        self.sequential + self.inverter + self.buffer + self.logic
    }

    /// Relative difference of this report's total against a baseline total, as a fraction
    /// (`0.36` means 36 % larger).
    #[must_use]
    pub fn overhead_vs(&self, baseline: &AreaReport) -> f64 {
        self.total() / baseline.total() - 1.0
    }
}

/// Estimates the circuit area of a hardware inventory synthesised at `clock_mhz`.
///
/// Combinational area is the sum of the functional-unit, multiplexer and converter cells scaled
/// by the library's (mild) frequency factor; sequential area comes from the pipeline-register and
/// accumulator bits that survived dead-node elimination; inverter and buffer area are modelled as
/// technology-dependent fractions of the placed cells, as in the paper's Genus reports.
#[must_use]
pub fn estimate_area(
    inventory: &HardwareInventory,
    clock_mhz: f64,
    library: &CellLibrary,
) -> AreaReport {
    let frequency_factor = library.frequency_area_factor(clock_mhz);

    let mut logic = 0.0;
    for stage in inventory.stages() {
        for (kind, count) in stage.fus() {
            logic += library.fu(kind).logic_area_um2 * f64::from(count);
        }
    }
    logic *= frequency_factor;

    let sequential = f64::from(inventory.register_bits()) * library.register_bit_area_um2()
        + f64::from(inventory.accumulator_bits()) * library.accumulator_bit_area_um2();

    let placed = logic + sequential;
    AreaReport {
        sequential,
        inverter: placed * library.inverter_fraction(),
        buffer: placed * library.buffer_fraction(),
        logic,
    }
}

/// Convenience: the logic-area contribution of a single functional-unit kind in an inventory
/// (useful for ablation studies and reports).
#[must_use]
pub fn fu_logic_area(inventory: &HardwareInventory, kind: FuKind, library: &CellLibrary) -> f64 {
    f64::from(inventory.fu_count(kind)) * library.fu(kind).logic_area_um2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_core::{inventory::build_inventory, PipelineConfig};

    fn area(config: PipelineConfig, clock_mhz: f64) -> AreaReport {
        estimate_area(
            &build_inventory(&config),
            clock_mhz,
            &CellLibrary::freepdk15(),
        )
    }

    #[test]
    fn baseline_unified_is_the_smallest_design() {
        let configs = PipelineConfig::evaluated_configs();
        let areas: Vec<f64> = configs.iter().map(|c| area(*c, 1000.0).total()).collect();
        for (i, a) in areas.iter().enumerate().skip(1) {
            assert!(
                *a > areas[0],
                "config {} must be larger than baseline-unified",
                configs[i]
            );
        }
    }

    #[test]
    fn headline_overheads_match_the_paper_trends() {
        // Paper Fig. 7: disjoint ≈ +13 %, extended ≈ +36 %, extended+disjoint ≈ +92 %
        // (and ≈ +70 % over baseline-disjoint).  The analytical model must land in the same
        // regime; generous bands keep the assertion robust to re-calibration.
        let base_uni = area(PipelineConfig::baseline_unified(), 1000.0);
        let base_dis = area(PipelineConfig::baseline_disjoint(), 1000.0);
        let ext_uni = area(PipelineConfig::extended_unified(), 1000.0);
        let ext_dis = area(PipelineConfig::extended_disjoint(), 1000.0);
        let disjoint_overhead = base_dis.overhead_vs(&base_uni);
        let extended_overhead = ext_uni.overhead_vs(&base_uni);
        let both_overhead = ext_dis.overhead_vs(&base_uni);
        assert!(
            (0.05..0.25).contains(&disjoint_overhead),
            "disjoint overhead {disjoint_overhead:.2}"
        );
        assert!(
            (0.25..0.55).contains(&extended_overhead),
            "extended overhead {extended_overhead:.2}"
        );
        assert!(
            (0.60..1.20).contains(&both_overhead),
            "combined overhead {both_overhead:.2}"
        );
        assert!(both_overhead > extended_overhead && extended_overhead > disjoint_overhead);
        let vs_base_disjoint = ext_dis.overhead_vs(&base_dis);
        assert!(
            (0.45..1.0).contains(&vs_base_disjoint),
            "{vs_base_disjoint:.2}"
        );
    }

    #[test]
    fn sequential_area_is_insensitive_to_fu_sharing() {
        let base_uni = area(PipelineConfig::baseline_unified(), 1000.0);
        let base_dis = area(PipelineConfig::baseline_disjoint(), 1000.0);
        assert!((base_uni.sequential - base_dis.sequential).abs() < 1e-6);
        // ... but the logic area grows when units become private.
        assert!(base_dis.logic > base_uni.logic * 1.1);
    }

    #[test]
    fn extending_the_datapath_grows_both_sequential_and_logic_area() {
        let base = area(PipelineConfig::baseline_unified(), 1000.0);
        let ext = area(PipelineConfig::extended_unified(), 1000.0);
        assert!(ext.sequential > base.sequential * 1.3);
        assert!(ext.logic > base.logic);
        // Sequential and logic dominate inverter and buffer area, as in the paper.
        for report in [&base, &ext] {
            assert!(report.sequential + report.logic > 0.85 * report.total());
        }
    }

    #[test]
    fn area_is_only_mildly_sensitive_to_the_target_clock() {
        for config in PipelineConfig::evaluated_configs() {
            let slow = area(config, 500.0).total();
            let fast = area(config, 1500.0).total();
            assert!(fast > slow);
            assert!(
                fast / slow < 1.06,
                "area swing {:.3} too large",
                fast / slow
            );
        }
    }

    #[test]
    fn squarer_specialisation_saves_a_little_area_in_the_disjoint_design() {
        let specialised = area(PipelineConfig::extended_disjoint(), 1000.0);
        let perturbed = area(
            PipelineConfig::extended_disjoint().with_squarer_perturbation(true),
            1000.0,
        );
        assert!(perturbed.logic > specialised.logic);
        assert!(perturbed.total() > specialised.total());
    }

    #[test]
    fn fu_logic_area_helper_accounts_per_kind() {
        let inv = build_inventory(&PipelineConfig::baseline_unified());
        let lib = CellLibrary::freepdk15();
        let adders = fu_logic_area(&inv, FuKind::Adder, &lib);
        assert_eq!(adders, 37.0 * lib.fu(FuKind::Adder).logic_area_um2);
    }
}
