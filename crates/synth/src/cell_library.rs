//! The 15 nm-inspired cell library: per-functional-unit area and energy characterisation.

use rayflex_hw::FuKind;

/// Area and energy characterisation of one functional-unit kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuCharacterisation {
    /// Combinational ("logic") cell area in µm².
    pub logic_area_um2: f64,
    /// Dynamic energy per operation in pJ (at the nominal supply voltage).
    pub energy_per_op_pj: f64,
}

/// The virtual standard-cell library used by the area and power estimators.
///
/// The values are inspired by a 15 nm FreePDK-class library and calibrated so that the *relative*
/// area and power trends of the paper's evaluation are reproduced (see `DESIGN.md` for the
/// calibration rationale).  All knobs are public through accessors so alternative technologies
/// can be modelled by constructing a custom library.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    name: &'static str,
    adder: FuCharacterisation,
    multiplier: FuCharacterisation,
    squarer: FuCharacterisation,
    comparator: FuCharacterisation,
    quad_sort: FuCharacterisation,
    converter_in: FuCharacterisation,
    converter_out: FuCharacterisation,
    operand_mux: FuCharacterisation,
    register_bit_area_um2: f64,
    accumulator_bit_area_um2: f64,
    register_bit_write_energy_pj: f64,
    accumulator_bit_write_energy_pj: f64,
    inverter_fraction: f64,
    buffer_fraction: f64,
    leakage_uw_per_um2: f64,
    frequency_area_slope: f64,
}

impl CellLibrary {
    /// The default library, modelled after the open 15 nm FreePDK cell library the paper uses.
    #[must_use]
    pub fn freepdk15() -> Self {
        CellLibrary {
            name: "freepdk15-virtual",
            adder: FuCharacterisation {
                logic_area_um2: 210.0,
                energy_per_op_pj: 0.72,
            },
            multiplier: FuCharacterisation {
                logic_area_um2: 590.0,
                energy_per_op_pj: 1.45,
            },
            // A squarer is a multiplier whose partial-product array collapses because both
            // operands share a wire: smaller and noticeably lower-energy (§VII-B, ref. [62]).
            squarer: FuCharacterisation {
                logic_area_um2: 500.0,
                energy_per_op_pj: 0.80,
            },
            comparator: FuCharacterisation {
                logic_area_um2: 75.0,
                energy_per_op_pj: 0.12,
            },
            quad_sort: FuCharacterisation {
                logic_area_um2: 390.0,
                energy_per_op_pj: 0.70,
            },
            converter_in: FuCharacterisation {
                logic_area_um2: 60.0,
                energy_per_op_pj: 0.05,
            },
            converter_out: FuCharacterisation {
                logic_area_um2: 70.0,
                energy_per_op_pj: 0.06,
            },
            // One operand-mux "leg" (a 33-bit 2:1 multiplexer slice).
            operand_mux: FuCharacterisation {
                logic_area_um2: 30.0,
                energy_per_op_pj: 0.02,
            },
            // Pipeline-register bits are doubled by the skid buffer (main + skid register).
            register_bit_area_um2: 2.4,
            accumulator_bit_area_um2: 1.3,
            register_bit_write_energy_pj: 0.002,
            accumulator_bit_write_energy_pj: 0.002,
            inverter_fraction: 0.03,
            buffer_fraction: 0.055,
            leakage_uw_per_um2: 0.05,
            frequency_area_slope: 0.04,
        }
    }

    /// The library name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The characterisation of one functional-unit kind.
    #[must_use]
    pub fn fu(&self, kind: FuKind) -> FuCharacterisation {
        match kind {
            FuKind::Adder => self.adder,
            FuKind::Multiplier => self.multiplier,
            FuKind::Squarer => self.squarer,
            FuKind::Comparator => self.comparator,
            FuKind::QuadSortNetwork => self.quad_sort,
            FuKind::FormatConverterIn => self.converter_in,
            FuKind::FormatConverterOut => self.converter_out,
            FuKind::OperandMux => self.operand_mux,
        }
    }

    /// Area of one pipeline-register bit (including its skid duplicate), in µm².
    #[must_use]
    pub fn register_bit_area_um2(&self) -> f64 {
        self.register_bit_area_um2
    }

    /// Area of one accumulator-register bit, in µm².
    #[must_use]
    pub fn accumulator_bit_area_um2(&self) -> f64 {
        self.accumulator_bit_area_um2
    }

    /// Energy to clock and write one pipeline-register bit, in pJ.
    #[must_use]
    pub fn register_bit_write_energy_pj(&self) -> f64 {
        self.register_bit_write_energy_pj
    }

    /// Energy to clock and write one accumulator-register bit, in pJ.
    #[must_use]
    pub fn accumulator_bit_write_energy_pj(&self) -> f64 {
        self.accumulator_bit_write_energy_pj
    }

    /// Fraction of the combinational + sequential area re-spent on inverters.
    #[must_use]
    pub fn inverter_fraction(&self) -> f64 {
        self.inverter_fraction
    }

    /// Fraction of the combinational + sequential area re-spent on clock/data buffers.
    #[must_use]
    pub fn buffer_fraction(&self) -> f64 {
        self.buffer_fraction
    }

    /// Leakage power density in µW per µm².
    #[must_use]
    pub fn leakage_uw_per_um2(&self) -> f64 {
        self.leakage_uw_per_um2
    }

    /// Combinational-area scaling factor when synthesising for a target clock, relative to the
    /// 1 GHz reference point.  The paper observes only mild sensitivity in the 500–1500 MHz range
    /// (Fig. 7); the model applies a small linear up-sizing above 1 GHz and a matching relaxation
    /// below it.
    #[must_use]
    pub fn frequency_area_factor(&self, clock_mhz: f64) -> f64 {
        1.0 + self.frequency_area_slope * (clock_mhz - 1000.0) / 1000.0
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::freepdk15()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multipliers_dominate_adders_and_comparators() {
        let lib = CellLibrary::freepdk15();
        assert!(lib.fu(FuKind::Multiplier).logic_area_um2 > lib.fu(FuKind::Adder).logic_area_um2);
        assert!(lib.fu(FuKind::Adder).logic_area_um2 > lib.fu(FuKind::Comparator).logic_area_um2);
        assert!(
            lib.fu(FuKind::Multiplier).energy_per_op_pj > lib.fu(FuKind::Adder).energy_per_op_pj
        );
    }

    #[test]
    fn squarers_are_cheaper_than_multipliers() {
        let lib = CellLibrary::freepdk15();
        assert!(lib.fu(FuKind::Squarer).logic_area_um2 < lib.fu(FuKind::Multiplier).logic_area_um2);
        assert!(
            lib.fu(FuKind::Squarer).energy_per_op_pj < lib.fu(FuKind::Multiplier).energy_per_op_pj
        );
    }

    #[test]
    fn frequency_factor_is_mild_and_monotonic() {
        let lib = CellLibrary::freepdk15();
        let at_500 = lib.frequency_area_factor(500.0);
        let at_1000 = lib.frequency_area_factor(1000.0);
        let at_1500 = lib.frequency_area_factor(1500.0);
        assert!(at_500 < at_1000 && at_1000 < at_1500);
        assert_eq!(at_1000, 1.0);
        assert!(
            at_1500 / at_500 < 1.1,
            "area is not very sensitive to the target clock"
        );
    }

    #[test]
    fn default_is_the_15nm_library() {
        assert_eq!(CellLibrary::default(), CellLibrary::freepdk15());
        assert_eq!(CellLibrary::default().name(), "freepdk15-virtual");
    }
}
