//! Plain-text table formatting for the figure-regeneration harnesses.

/// A simple fixed-width text table builder used by the benchmark harnesses to print the rows and
/// series of the paper's figures.
///
/// # Example
///
/// ```
/// use rayflex_synth::report::Table;
///
/// let mut table = Table::new(vec!["config", "area (um^2)"]);
/// table.add_row(vec!["baseline-unified".to_string(), "61000".to_string()]);
/// let text = table.render();
/// assert!(text.contains("baseline-unified"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.  Rows shorter than the header are padded with empty cells; longer rows
    /// are truncated.
    pub fn add_row(&mut self, row: Vec<String>) {
        let mut row = row;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows added so far.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate().take(columns) {
                line.push_str(&format!(" {cell:width$} |", width = widths[i]));
            }
            line
        };
        let separator = {
            let mut line = String::from("|");
            for width in &widths {
                line.push_str(&format!("{:-<w$}|", "", w = width + 2));
            }
            line
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&separator);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a quantity with a relative delta against a baseline, e.g. `"83.1 (+13.2%)"`.
#[must_use]
pub fn with_delta(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        return format!("{value:.1}");
    }
    let delta = (value / baseline - 1.0) * 100.0;
    format!("{value:.1} ({delta:+.1}%)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.add_row(vec!["1".into(), "2".into()]);
        t.add_row(vec!["wide-cell-content".into(), "3".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.add_row(vec!["x".into()]);
        let text = t.render();
        assert!(text.contains("x"));
    }

    #[test]
    fn delta_formatting() {
        assert_eq!(with_delta(113.0, 100.0), "113.0 (+13.0%)");
        assert_eq!(with_delta(90.0, 100.0), "90.0 (-10.0%)");
        assert_eq!(with_delta(5.0, 0.0), "5.0");
    }
}
