//! # rayflex-hw
//!
//! Shared hardware-description vocabulary for the RayFlex-RS workspace.
//!
//! The RayFlex paper evaluates its datapath by synthesising the RTL and reporting circuit area and
//! power.  To reproduce those experiments without a synthesis tool, the datapath model
//! (`rayflex-core`) *describes* the hardware it instantiates — which functional units exist at
//! each pipeline stage, how many pipeline-register bits each stage carries — and *records* which
//! of those resources toggle while executing a workload.  The virtual synthesis model
//! (`rayflex-synth`) then turns those descriptions into area and power estimates.
//!
//! This crate holds the three data types shared by both sides:
//!
//! * [`FuKind`] — the kinds of functional units the datapath instantiates,
//! * [`HardwareInventory`] / [`StageInventory`] — the per-stage resource description,
//! * [`ActivityTrace`] — the per-resource toggle counts collected while simulating a workload
//!   (the stand-in for the VCD stimulus files the paper feeds to Cadence Genus).
//!
//! # Example
//!
//! ```
//! use rayflex_hw::{ActivityTrace, FuKind, HardwareInventory, StageInventory};
//!
//! let mut stage = StageInventory::new();
//! stage.add_fu(FuKind::Adder, 24);
//! stage.set_register_bits(1024);
//!
//! let mut inv = HardwareInventory::new("example");
//! inv.push_stage(stage);
//! assert_eq!(inv.fu_count(FuKind::Adder), 24);
//!
//! let mut trace = ActivityTrace::new();
//! trace.record_fu(1, FuKind::Adder, 24);
//! trace.advance_cycle();
//! assert_eq!(trace.cycles(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod activity;
mod inventory;

pub use activity::ActivityTrace;
pub use inventory::{FuKind, HardwareInventory, StageInventory};
