//! Activity traces: the VCD-stimulus stand-in used for power estimation.

use std::collections::BTreeMap;

use crate::FuKind;

/// A record of how often each hardware resource toggled while simulating a workload.
///
/// The paper estimates power by feeding VCD stimulus files — collected from testbenches of 100
/// random test cases — to the synthesis tool.  The Rust reproduction instead counts, per pipeline
/// stage, how many functional-unit operations were performed and how many pipeline-register bits
/// were written, over how many cycles.  The `rayflex-synth` power model turns these counts into
/// dynamic energy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActivityTrace {
    cycles: u64,
    fu_ops: BTreeMap<(usize, FuKind), u64>,
    register_bit_writes: BTreeMap<usize, u64>,
    accumulator_bit_writes: BTreeMap<usize, u64>,
}

impl ActivityTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` operations on functional units of `kind` at pipeline `stage` (1-based).
    pub fn record_fu(&mut self, stage: usize, kind: FuKind, count: u64) {
        if count > 0 {
            *self.fu_ops.entry((stage, kind)).or_insert(0) += count;
        }
    }

    /// Records `bits` pipeline-register bits written at `stage` (1-based) this cycle.
    pub fn record_register_write(&mut self, stage: usize, bits: u64) {
        if bits > 0 {
            *self.register_bit_writes.entry(stage).or_insert(0) += bits;
        }
    }

    /// Records `bits` accumulator-register bits written at `stage` (1-based) this cycle.
    pub fn record_accumulator_write(&mut self, stage: usize, bits: u64) {
        if bits > 0 {
            *self.accumulator_bit_writes.entry(stage).or_insert(0) += bits;
        }
    }

    /// Advances the trace by one simulated clock cycle.
    pub fn advance_cycle(&mut self) {
        self.cycles += 1;
    }

    /// Advances the trace by `n` simulated clock cycles.
    pub fn advance_cycles(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Number of simulated clock cycles covered by this trace.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total operations performed on functional units of `kind` at `stage`.
    #[must_use]
    pub fn fu_ops(&self, stage: usize, kind: FuKind) -> u64 {
        self.fu_ops.get(&(stage, kind)).copied().unwrap_or(0)
    }

    /// Total operations performed on functional units of `kind` across all stages.
    #[must_use]
    pub fn total_fu_ops(&self, kind: FuKind) -> u64 {
        self.fu_ops
            .iter()
            .filter(|((_, k), _)| *k == kind)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Iterates over `((stage, kind), operation count)` entries.
    pub fn fu_entries(&self) -> impl Iterator<Item = ((usize, FuKind), u64)> + '_ {
        self.fu_ops.iter().map(|(k, v)| (*k, *v))
    }

    /// Total pipeline-register bits written at `stage`.
    #[must_use]
    pub fn register_bit_writes(&self, stage: usize) -> u64 {
        self.register_bit_writes.get(&stage).copied().unwrap_or(0)
    }

    /// Total pipeline-register bits written across all stages.
    #[must_use]
    pub fn total_register_bit_writes(&self) -> u64 {
        self.register_bit_writes.values().sum()
    }

    /// Total accumulator-register bits written across all stages.
    #[must_use]
    pub fn total_accumulator_bit_writes(&self) -> u64 {
        self.accumulator_bit_writes.values().sum()
    }

    /// Average operations per cycle performed on functional units of `kind` at `stage`.
    /// Returns 0 for an empty trace.
    #[must_use]
    pub fn fu_activity_per_cycle(&self, stage: usize, kind: FuKind) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fu_ops(stage, kind) as f64 / self.cycles as f64
        }
    }

    /// Merges another trace into this one (cycle counts add, per-resource counts add).
    pub fn merge(&mut self, other: &ActivityTrace) {
        self.cycles += other.cycles;
        for (key, value) in &other.fu_ops {
            *self.fu_ops.entry(*key).or_insert(0) += value;
        }
        for (key, value) in &other.register_bit_writes {
            *self.register_bit_writes.entry(*key).or_insert(0) += value;
        }
        for (key, value) in &other.accumulator_bit_writes {
            *self.accumulator_bit_writes.entry(*key).or_insert(0) += value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back_counts() {
        let mut t = ActivityTrace::new();
        t.record_fu(2, FuKind::Adder, 24);
        t.record_fu(2, FuKind::Adder, 24);
        t.record_fu(3, FuKind::Multiplier, 9);
        t.record_register_write(2, 1000);
        t.record_accumulator_write(9, 66);
        t.advance_cycles(2);
        assert_eq!(t.cycles(), 2);
        assert_eq!(t.fu_ops(2, FuKind::Adder), 48);
        assert_eq!(t.fu_ops(3, FuKind::Multiplier), 9);
        assert_eq!(t.fu_ops(3, FuKind::Adder), 0);
        assert_eq!(t.total_fu_ops(FuKind::Adder), 48);
        assert_eq!(t.register_bit_writes(2), 1000);
        assert_eq!(t.total_register_bit_writes(), 1000);
        assert_eq!(t.total_accumulator_bit_writes(), 66);
        assert!((t.fu_activity_per_cycle(2, FuKind::Adder) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn zero_counts_are_not_stored() {
        let mut t = ActivityTrace::new();
        t.record_fu(1, FuKind::Comparator, 0);
        t.record_register_write(1, 0);
        assert_eq!(t.fu_entries().count(), 0);
        assert_eq!(t.total_register_bit_writes(), 0);
    }

    #[test]
    fn activity_per_cycle_is_zero_for_empty_trace() {
        let t = ActivityTrace::new();
        assert_eq!(t.fu_activity_per_cycle(1, FuKind::Adder), 0.0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = ActivityTrace::new();
        a.record_fu(1, FuKind::Adder, 10);
        a.record_register_write(1, 5);
        a.advance_cycle();
        let mut b = ActivityTrace::new();
        b.record_fu(1, FuKind::Adder, 20);
        b.record_fu(2, FuKind::Squarer, 16);
        b.record_register_write(1, 7);
        b.advance_cycles(3);
        a.merge(&b);
        assert_eq!(a.cycles(), 4);
        assert_eq!(a.fu_ops(1, FuKind::Adder), 30);
        assert_eq!(a.fu_ops(2, FuKind::Squarer), 16);
        assert_eq!(a.register_bit_writes(1), 12);
    }
}
