//! Hardware inventories: which resources exist at each pipeline stage.

use std::collections::BTreeMap;
use std::fmt;

/// The kinds of functional units instantiated by the RayFlex datapath.
///
/// The paper's Fig. 4c and Fig. 6c describe the pipeline as a per-stage allocation of adders,
/// multipliers, comparators, quad-sort networks and format converters; the extended design also
/// adds accumulator registers and the unified design needs operand multiplexers to share
/// functional units between operations (and to zero-gate idle units for power).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuKind {
    /// A single-precision floating-point adder/subtractor (HardFloat `AddRecFN`).
    Adder,
    /// A single-precision floating-point multiplier (HardFloat `MulRecFN`).
    Multiplier,
    /// A multiplier specialised into a squarer by the synthesiser (both operands share a wire).
    Squarer,
    /// A floating-point comparator (compare-and-select datapath element).
    Comparator,
    /// A four-element sorting network built from five comparators (Fig. 4a step 5).
    QuadSortNetwork,
    /// A stage-1 format converter (IEEE binary32 → recoded 33-bit).
    FormatConverterIn,
    /// A stage-11 format converter (recoded 33-bit → IEEE binary32).
    FormatConverterOut,
    /// A 33-bit operand multiplexer used to share a functional unit between operations and to
    /// zero-gate its inputs when idle.
    OperandMux,
}

impl FuKind {
    /// All functional-unit kinds, in a stable display order.
    pub const ALL: [FuKind; 8] = [
        FuKind::Adder,
        FuKind::Multiplier,
        FuKind::Squarer,
        FuKind::Comparator,
        FuKind::QuadSortNetwork,
        FuKind::FormatConverterIn,
        FuKind::FormatConverterOut,
        FuKind::OperandMux,
    ];

    /// The number of elementary floating-point operations one unit of this kind performs per
    /// cycle, following the accounting of §IV-B of the paper (a quad-sort network counts as five
    /// comparators; format converters and multiplexers are not counted as operations).
    #[must_use]
    pub fn ops_per_cycle(self) -> u32 {
        match self {
            FuKind::Adder | FuKind::Multiplier | FuKind::Squarer | FuKind::Comparator => 1,
            FuKind::QuadSortNetwork => 5,
            FuKind::FormatConverterIn | FuKind::FormatConverterOut | FuKind::OperandMux => 0,
        }
    }

    /// A short human-readable name used by report tables.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            FuKind::Adder => "add",
            FuKind::Multiplier => "mul",
            FuKind::Squarer => "sqr",
            FuKind::Comparator => "cmp",
            FuKind::QuadSortNetwork => "qsort",
            FuKind::FormatConverterIn => "conv-in",
            FuKind::FormatConverterOut => "conv-out",
            FuKind::OperandMux => "mux",
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// The hardware resources instantiated at one pipeline stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageInventory {
    fus: BTreeMap<FuKind, u32>,
    register_bits: u32,
    accumulator_bits: u32,
}

impl StageInventory {
    /// Creates an empty stage inventory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` functional units of the given kind to the stage.
    pub fn add_fu(&mut self, kind: FuKind, count: u32) {
        if count > 0 {
            *self.fus.entry(kind).or_insert(0) += count;
        }
    }

    /// Returns the number of functional units of the given kind at this stage.
    #[must_use]
    pub fn fu_count(&self, kind: FuKind) -> u32 {
        self.fus.get(&kind).copied().unwrap_or(0)
    }

    /// Iterates over the `(kind, count)` pairs of this stage.
    pub fn fus(&self) -> impl Iterator<Item = (FuKind, u32)> + '_ {
        self.fus.iter().map(|(k, c)| (*k, *c))
    }

    /// Sets the number of pipeline-register bits (skid-buffer payload bits) at this stage.
    pub fn set_register_bits(&mut self, bits: u32) {
        self.register_bits = bits;
    }

    /// Returns the number of pipeline-register bits at this stage.
    #[must_use]
    pub fn register_bits(&self) -> u32 {
        self.register_bits
    }

    /// Sets the number of accumulator-register bits (the extra state registers the extended
    /// design adds at stages 9 and 10 for Euclidean/cosine partial sums).
    pub fn set_accumulator_bits(&mut self, bits: u32) {
        self.accumulator_bits = bits;
    }

    /// Returns the number of accumulator-register bits at this stage.
    #[must_use]
    pub fn accumulator_bits(&self) -> u32 {
        self.accumulator_bits
    }

    /// Total elementary floating-point operations this stage can perform per cycle.
    #[must_use]
    pub fn ops_per_cycle(&self) -> u32 {
        self.fus
            .iter()
            .map(|(kind, count)| kind.ops_per_cycle() * count)
            .sum()
    }
}

/// The hardware resources of a whole datapath configuration, stage by stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HardwareInventory {
    name: String,
    stages: Vec<StageInventory>,
}

impl HardwareInventory {
    /// Creates an empty inventory with a configuration name (e.g. `"baseline-unified"`).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        HardwareInventory {
            name: name.into(),
            stages: Vec::new(),
        }
    }

    /// The configuration name this inventory describes.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a stage inventory (stages are numbered from 1 in reports).
    pub fn push_stage(&mut self, stage: StageInventory) {
        self.stages.push(stage);
    }

    /// The per-stage inventories, in pipeline order.
    #[must_use]
    pub fn stages(&self) -> &[StageInventory] {
        &self.stages
    }

    /// Number of pipeline stages.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total count of functional units of a given kind across all stages.
    #[must_use]
    pub fn fu_count(&self, kind: FuKind) -> u32 {
        self.stages.iter().map(|s| s.fu_count(kind)).sum()
    }

    /// Total pipeline-register bits across all stages.
    #[must_use]
    pub fn register_bits(&self) -> u32 {
        self.stages.iter().map(StageInventory::register_bits).sum()
    }

    /// Total accumulator-register bits across all stages.
    #[must_use]
    pub fn accumulator_bits(&self) -> u32 {
        self.stages
            .iter()
            .map(StageInventory::accumulator_bits)
            .sum()
    }

    /// Peak elementary floating-point operations per cycle, following §IV-B's accounting
    /// (all functional units active, a quad-sort counted as five comparators, format converters
    /// excluded).  For the baseline unified pipeline this is the paper's "125 operations per
    /// cycle" figure.
    #[must_use]
    pub fn peak_ops_per_cycle(&self) -> u32 {
        self.stages.iter().map(StageInventory::ops_per_cycle).sum()
    }
}

impl fmt::Display for HardwareInventory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "hardware inventory `{}`", self.name)?;
        for (i, stage) in self.stages.iter().enumerate() {
            write!(f, "  stage {:2}: ", i + 1)?;
            let mut first = true;
            for (kind, count) in stage.fus() {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{count} {kind}")?;
                first = false;
            }
            if stage.register_bits() > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{} reg bits", stage.register_bits())?;
                first = false;
            }
            if stage.accumulator_bits() > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{} accum bits", stage.accumulator_bits())?;
                first = false;
            }
            if first {
                write!(f, "(pass-through)")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_inventory_accumulates_fus() {
        let mut s = StageInventory::new();
        s.add_fu(FuKind::Adder, 24);
        s.add_fu(FuKind::Adder, 6);
        s.add_fu(FuKind::Comparator, 40);
        assert_eq!(s.fu_count(FuKind::Adder), 30);
        assert_eq!(s.fu_count(FuKind::Comparator), 40);
        assert_eq!(s.fu_count(FuKind::Multiplier), 0);
    }

    #[test]
    fn adding_zero_units_is_a_no_op() {
        let mut s = StageInventory::new();
        s.add_fu(FuKind::Multiplier, 0);
        assert_eq!(s.fus().count(), 0);
    }

    #[test]
    fn ops_per_cycle_counts_quadsort_as_five_comparators() {
        let mut s = StageInventory::new();
        s.add_fu(FuKind::QuadSortNetwork, 2);
        s.add_fu(FuKind::Comparator, 5);
        s.add_fu(FuKind::FormatConverterIn, 40);
        assert_eq!(s.ops_per_cycle(), 15);
    }

    #[test]
    fn inventory_totals_sum_over_stages() {
        let mut inv = HardwareInventory::new("test");
        let mut s1 = StageInventory::new();
        s1.add_fu(FuKind::Adder, 24);
        s1.set_register_bits(100);
        let mut s2 = StageInventory::new();
        s2.add_fu(FuKind::Adder, 13);
        s2.add_fu(FuKind::Multiplier, 33);
        s2.set_register_bits(200);
        s2.set_accumulator_bits(99);
        inv.push_stage(s1);
        inv.push_stage(s2);
        assert_eq!(inv.stage_count(), 2);
        assert_eq!(inv.fu_count(FuKind::Adder), 37);
        assert_eq!(inv.fu_count(FuKind::Multiplier), 33);
        assert_eq!(inv.register_bits(), 300);
        assert_eq!(inv.accumulator_bits(), 99);
        assert_eq!(inv.peak_ops_per_cycle(), 37 + 33);
        assert_eq!(inv.name(), "test");
    }

    #[test]
    fn display_lists_every_stage() {
        let mut inv = HardwareInventory::new("disp");
        let mut s = StageInventory::new();
        s.add_fu(FuKind::Adder, 2);
        inv.push_stage(s);
        inv.push_stage(StageInventory::new());
        let text = inv.to_string();
        assert!(text.contains("stage  1"));
        assert!(text.contains("2 add"));
        assert!(text.contains("pass-through"));
    }
}
