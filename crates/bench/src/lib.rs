//! # rayflex-bench
//!
//! Experiment runners that regenerate every figure of the RayFlex paper's evaluation, shared by
//! the `cargo bench` harnesses and the workspace integration tests.
//!
//! | Paper artefact | Runner | Bench target |
//! |---|---|---|
//! | Fig. 7 (area vs clock, 4 configs) | [`fig7_area_table`] | `fig7_area` |
//! | Fig. 8 (power per op mode at 1 GHz) | [`fig8_power_table`] | `fig8_power` |
//! | Fig. 9 (ray-triangle power vs clock) | [`fig9_power_frequency_table`] | `fig9_power_freq` |
//! | Fig. 4c / §IV-B (stage map, 125 ops/cycle, Turing comparison, latency/II) | [`fig4c_pipeline_report`] | `fig4c_pipeline_map` |
//! | §IV-A validation (20 directed + random equivalence) | [`validation_report`] | `validation_suite` |
//! | Simulator throughput baseline (not a paper figure) | [`perf::run_perf_suite`] | `perf_simulator` |
//! | §VII-B squarer ablation | [`ablation_squarer_table`] | `ablation_squarer` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rayflex_core::activity::full_throughput_trace;
use rayflex_core::inventory::build_inventory;
use rayflex_core::validation;
use rayflex_core::{
    Opcode, PipelineConfig, RayFlexDatapath, RayFlexPipeline, RayFlexRequest, PIPELINE_DEPTH,
};
use rayflex_geometry::golden;
use rayflex_geometry::sampling;
use rayflex_hw::FuKind;
use rayflex_synth::report::{with_delta, Table};
use rayflex_synth::{estimate_area, estimate_power, CellLibrary};
use rayflex_workloads::stimulus;

/// The clock frequencies (MHz) swept by the paper's Fig. 7 and Fig. 9.
pub const CLOCK_SWEEP_MHZ: [f64; 5] = [500.0, 750.0, 1000.0, 1250.0, 1500.0];

/// Number of random beats used per operating mode for power stimulus (the paper uses 100-case
/// VCD testbenches; the analytical model converges with the same count).
pub const POWER_STIMULUS_BEATS: u64 = 100;

/// Regenerates the paper's Fig. 7: circuit area versus target clock frequency for the four
/// configurations, decomposed into the four area categories, with deltas against
/// baseline-unified at the same clock.
#[must_use]
pub fn fig7_area_table() -> String {
    let library = CellLibrary::freepdk15();
    let mut table = Table::new(vec![
        "clock (MHz)",
        "configuration",
        "sequential (um^2)",
        "inverter (um^2)",
        "buffer (um^2)",
        "logic (um^2)",
        "total (um^2)",
        "vs baseline-unified",
    ]);
    for &clock in &CLOCK_SWEEP_MHZ {
        let baseline = estimate_area(
            &build_inventory(&PipelineConfig::baseline_unified()),
            clock,
            &library,
        );
        for config in PipelineConfig::evaluated_configs() {
            let area = estimate_area(&build_inventory(&config), clock, &library);
            table.add_row(vec![
                format!("{clock:.0}"),
                config.name(),
                format!("{:.0}", area.sequential),
                format!("{:.0}", area.inverter),
                format!("{:.0}", area.buffer),
                format!("{:.0}", area.logic),
                format!("{:.0}", area.total()),
                format!("{:+.1}%", area.overhead_vs(&baseline) * 100.0),
            ]);
        }
    }
    format!(
        "Fig. 7 — circuit area vs target clock frequency\n{}\nHeadline overheads at 1000 MHz: {}\n",
        table.render(),
        fig7_headline_summary()
    )
}

/// The headline overhead sentence of Fig. 7 (disjoint / extended / both, at 1 GHz).
#[must_use]
pub fn fig7_headline_summary() -> String {
    let library = CellLibrary::freepdk15();
    let area =
        |config: PipelineConfig| estimate_area(&build_inventory(&config), 1000.0, &library).total();
    let base_uni = area(PipelineConfig::baseline_unified());
    let base_dis = area(PipelineConfig::baseline_disjoint());
    let ext_uni = area(PipelineConfig::extended_unified());
    let ext_dis = area(PipelineConfig::extended_disjoint());
    format!(
        "disjoint {:+.1}% (paper +13%), extended {:+.1}% (paper +36%), both {:+.1}% (paper +92%), both-vs-baseline-disjoint {:+.1}% (paper +70%)",
        (base_dis / base_uni - 1.0) * 100.0,
        (ext_uni / base_uni - 1.0) * 100.0,
        (ext_dis / base_uni - 1.0) * 100.0,
        (ext_dis / base_dis - 1.0) * 100.0,
    )
}

/// Regenerates the paper's Fig. 8: total power per operating mode at full throughput, 1 GHz, for
/// the four configurations.
#[must_use]
pub fn fig8_power_table() -> String {
    let library = CellLibrary::freepdk15();
    let mut table = Table::new(vec![
        "configuration",
        "operation",
        "dynamic (mW)",
        "static (mW)",
        "total (mW)",
        "vs baseline-unified",
    ]);
    for config in PipelineConfig::evaluated_configs() {
        let inventory = build_inventory(&config);
        for opcode in Opcode::ALL {
            if !config.supports(opcode) {
                continue;
            }
            let trace = full_throughput_trace(opcode, &config, POWER_STIMULUS_BEATS);
            let power = estimate_power(&inventory, &trace, 1000.0, &library);
            let delta = if opcode.requires_extended() {
                "n/a".to_string()
            } else {
                let base_config = PipelineConfig::baseline_unified();
                let base_trace = full_throughput_trace(opcode, &base_config, POWER_STIMULUS_BEATS);
                let reference = estimate_power(
                    &build_inventory(&base_config),
                    &base_trace,
                    1000.0,
                    &library,
                );
                format!("{:+.1}%", power.overhead_vs(&reference) * 100.0)
            };
            table.add_row(vec![
                config.name(),
                opcode.name().to_string(),
                format!("{:.1}", power.dynamic_mw),
                format!("{:.2}", power.static_mw),
                format!("{:.1}", power.total_mw()),
                delta,
            ]);
        }
    }
    format!(
        "Fig. 8 — power per operating mode at full throughput (1000 MHz, {} random beats)\n{}",
        POWER_STIMULUS_BEATS,
        table.render()
    )
}

/// Regenerates the paper's Fig. 9: ray-triangle power versus target clock frequency for the four
/// configurations.
#[must_use]
pub fn fig9_power_frequency_table() -> String {
    let library = CellLibrary::freepdk15();
    let mut table = Table::new(vec![
        "clock (MHz)",
        "baseline-unified (mW)",
        "baseline-disjoint (mW)",
        "extended-unified (mW)",
        "extended-disjoint (mW)",
        "extended/baseline (unified)",
    ]);
    for &clock in &CLOCK_SWEEP_MHZ {
        let mut row = vec![format!("{clock:.0}")];
        let mut totals = Vec::new();
        for config in PipelineConfig::evaluated_configs() {
            let trace = full_throughput_trace(Opcode::RayTriangle, &config, POWER_STIMULUS_BEATS);
            let power = estimate_power(&build_inventory(&config), &trace, clock, &library);
            totals.push(power.total_mw());
            row.push(format!("{:.1}", power.total_mw()));
        }
        row.push(format!("{:+.1}%", (totals[2] / totals[0] - 1.0) * 100.0));
        table.add_row(row);
    }
    format!(
        "Fig. 9 — ray-triangle power vs target clock frequency\n{}",
        table.render()
    )
}

/// Regenerates Fig. 4c plus the §IV-B accounting: the stage-by-stage hardware map, the measured
/// pipeline latency and initiation interval, the 125 ops/cycle peak and the Quadro RTX 6000
/// comparison.
#[must_use]
pub fn fig4c_pipeline_report() -> String {
    let config = PipelineConfig::baseline_unified();
    let inventory = build_inventory(&config);
    let mut table = Table::new(vec!["stage", "hardware assets", "register bits"]);
    for (index, stage) in inventory.stages().iter().enumerate() {
        let assets: Vec<String> = stage
            .fus()
            .filter(|(kind, _)| *kind != FuKind::OperandMux)
            .map(|(kind, count)| format!("{count} {kind}"))
            .collect();
        table.add_row(vec![
            format!("{}", index + 1),
            if assets.is_empty() {
                "(pass-through)".to_string()
            } else {
                assets.join(", ")
            },
            stage.register_bits().to_string(),
        ]);
    }

    // Measured latency and initiation interval from the cycle-accurate pipeline.
    let mut pipeline = RayFlexPipeline::new(config);
    let ray = rayflex_geometry::Ray::new(
        rayflex_geometry::Vec3::new(0.0, 0.0, -5.0),
        rayflex_geometry::Vec3::new(0.0, 0.0, 1.0),
    );
    let boxes = [rayflex_geometry::Aabb::new(
        rayflex_geometry::Vec3::splat(-1.0),
        rayflex_geometry::Vec3::splat(1.0),
    ); 4];
    let beats: Vec<RayFlexRequest> = (0..64)
        .map(|i| RayFlexRequest::ray_box(i, &ray, &boxes))
        .collect();
    let responses = pipeline.execute_batch(&beats);
    let stats = pipeline.stats();
    let latency = PIPELINE_DEPTH;
    let initiation_interval = if stats.issued > 1 {
        (stats.cycles - latency as u64) as f64 / stats.issued as f64
    } else {
        1.0
    };

    // §IV-B: Quadro RTX 6000 back-of-the-envelope comparison.
    let peak_ops = inventory.peak_ops_per_cycle();
    let turing_ops_per_rt_unit_per_cycle = 100e12 / 72.0 / 1455e6;
    let equivalent_datapaths = turing_ops_per_rt_unit_per_cycle / f64::from(peak_ops);

    format!(
        "Fig. 4c — pipeline stage map ({})\n{}\n\
         Measured latency: {} cycles (fixed), initiation interval: {:.3} cycles/beat, {} beats completed.\n\
         Peak throughput accounting (§IV-B): {} elementary FP ops/cycle (paper: 125).\n\
         NVIDIA Turing comparison: 100 Tops / 72 RT units / 1455 MHz = {:.0} ops/cycle per RT unit,\n\
         so one RT unit is equivalent to about {:.1} RayFlex datapaths (paper: about 7.6).\n",
        config.name(),
        table.render(),
        latency,
        initiation_interval,
        responses.len(),
        peak_ops,
        turing_ops_per_rt_unit_per_cycle,
        equivalent_datapaths,
    )
}

/// Summary of the §IV-A functional validation: the twenty directed cases plus `random_cases`
/// random beats per operation compared bit-exactly against the golden software models.
#[must_use]
pub fn validation_report(random_cases: usize) -> String {
    let directed = validation::run_directed_suite(PipelineConfig::extended_unified());
    let equivalence = random_equivalence_counts(random_cases, 2024);
    let mut table = Table::new(vec!["suite", "cases", "mismatches"]);
    table.add_row(vec![
        "directed ray-box (9) + ray-triangle (11)".to_string(),
        directed.outcomes.len().to_string(),
        directed.failed().to_string(),
    ]);
    table.add_row(vec![
        "random ray-box vs golden slab".to_string(),
        equivalence.box_cases.to_string(),
        equivalence.box_mismatches.to_string(),
    ]);
    table.add_row(vec![
        "random ray-triangle vs golden watertight".to_string(),
        equivalence.triangle_cases.to_string(),
        equivalence.triangle_mismatches.to_string(),
    ]);
    table.add_row(vec![
        "random euclidean/cosine vs golden reductions".to_string(),
        equivalence.distance_cases.to_string(),
        equivalence.distance_mismatches.to_string(),
    ]);
    format!(
        "§IV-A functional validation (directed + random, golden-model equivalence)\n{}\nall green: {}\n",
        table.render(),
        directed.all_green() && equivalence.total_mismatches() == 0
    )
}

/// Counts of the random golden-equivalence sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EquivalenceCounts {
    /// Random ray-box beats checked (each covering four boxes).
    pub box_cases: usize,
    /// Ray-box mismatches against the golden model.
    pub box_mismatches: usize,
    /// Random ray-triangle beats checked.
    pub triangle_cases: usize,
    /// Ray-triangle mismatches.
    pub triangle_mismatches: usize,
    /// Random distance beats checked (Euclidean + cosine).
    pub distance_cases: usize,
    /// Distance mismatches.
    pub distance_mismatches: usize,
}

impl EquivalenceCounts {
    /// Total mismatches across all operations.
    #[must_use]
    pub fn total_mismatches(&self) -> usize {
        self.box_mismatches + self.triangle_mismatches + self.distance_mismatches
    }
}

/// Runs the random hardware-vs-golden equivalence sweep used by the validation harness.
#[must_use]
pub fn random_equivalence_counts(cases: usize, seed: u64) -> EquivalenceCounts {
    let mut counts = EquivalenceCounts::default();
    let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());

    for s in stimulus::ray_box_stimuli(seed, cases) {
        counts.box_cases += 1;
        let response = datapath.execute(&RayFlexRequest::ray_box(0, &s.ray, &s.boxes));
        let result = response.box_result.expect("box beat");
        for (i, aabb) in s.boxes.iter().enumerate() {
            let gold = golden::slab::ray_box(&s.ray, aabb);
            let distance_matches =
                !gold.hit || result.t_entry[i].to_bits() == gold.t_entry.to_bits();
            if result.hit[i] != gold.hit || !distance_matches {
                counts.box_mismatches += 1;
            }
        }
    }

    for s in stimulus::ray_triangle_stimuli(seed.wrapping_add(1), cases) {
        counts.triangle_cases += 1;
        let response = datapath.execute(&RayFlexRequest::ray_triangle(0, &s.ray, &s.triangle));
        let result = response.triangle_result.expect("triangle beat");
        let gold = golden::watertight::ray_triangle(&s.ray, &s.triangle);
        if result.hit != gold.hit
            || result.t_num.to_bits() != gold.t_num.to_bits()
            || result.det.to_bits() != gold.det.to_bits()
        {
            counts.triangle_mismatches += 1;
        }
    }

    for (i, s) in stimulus::distance_stimuli(seed.wrapping_add(2), cases)
        .iter()
        .enumerate()
    {
        counts.distance_cases += 1;
        // Alternate Euclidean and cosine beats, always resetting so each beat stands alone.
        if i % 2 == 0 {
            let response = datapath.execute(&RayFlexRequest::euclidean(0, s.a, s.b, s.mask, true));
            let got = response
                .distance_result
                .expect("euclidean beat")
                .euclidean_accumulator;
            let gold = golden::distance::euclidean_partial(&s.a, &s.b, s.mask);
            if got.to_bits() != gold.to_bits() {
                counts.distance_mismatches += 1;
            }
        } else {
            let a: [f32; 8] = core::array::from_fn(|k| s.a[k]);
            let b: [f32; 8] = core::array::from_fn(|k| s.b[k]);
            let mask = (s.mask & 0xFF) as u8;
            let response = datapath.execute(&RayFlexRequest::cosine(0, a, b, mask, true));
            let result = response.distance_result.expect("cosine beat");
            let gold = golden::distance::cosine_partial(&a, &b, mask);
            if result.angular_dot_product.to_bits() != gold.dot.to_bits()
                || result.angular_norm.to_bits() != gold.norm_sq.to_bits()
            {
                counts.distance_mismatches += 1;
            }
        }
    }
    counts
}

/// Regenerates the §VII-B squarer-specialisation ablation: Euclidean/cosine power on the disjoint
/// design with and without the stage-3 perturbation.
#[must_use]
pub fn ablation_squarer_table() -> String {
    let library = CellLibrary::freepdk15();
    let mut table = Table::new(vec![
        "operation",
        "extended-unified (mW)",
        "extended-disjoint (mW)",
        "extended-disjoint-perturbed (mW)",
    ]);
    for opcode in [Opcode::Euclidean, Opcode::Cosine] {
        let unified = PipelineConfig::extended_unified();
        let disjoint = PipelineConfig::extended_disjoint();
        let perturbed = disjoint.with_squarer_perturbation(true);
        let power = |config: &PipelineConfig| {
            let trace = full_throughput_trace(opcode, config, POWER_STIMULUS_BEATS);
            estimate_power(&build_inventory(config), &trace, 1000.0, &library).total_mw()
        };
        let base = power(&unified);
        table.add_row(vec![
            opcode.name().to_string(),
            format!("{base:.1}"),
            with_delta(power(&disjoint), base),
            with_delta(power(&perturbed), base),
        ]);
    }
    format!(
        "§VII-B ablation — multiplier-to-squarer specialisation in the disjoint design\n\
         (paper: Euclidean -9%, cosine -3%; perturbing stage 3 removes the saving)\n{}",
        table.render()
    )
}

/// A deterministic random ray-box request batch for the criterion performance benches.
#[must_use]
pub fn random_ray_box_requests(count: usize, seed: u64) -> Vec<RayFlexRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds = sampling::default_bounds();
    (0..count)
        .map(|i| {
            let ray = sampling::ray_in_box(&mut rng, &bounds);
            let boxes = core::array::from_fn(|_| sampling::aabb_in_box(&mut rng, &bounds));
            RayFlexRequest::ray_box(i as u64, &ray, &boxes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_tables_render_with_the_expected_rows() {
        let fig7 = fig7_area_table();
        assert!(fig7.contains("baseline-unified"));
        assert!(fig7.contains("1500"));
        let fig8 = fig8_power_table();
        assert!(fig8.contains("euclidean"));
        assert!(fig8.contains("ray-triangle"));
        let fig9 = fig9_power_frequency_table();
        assert!(fig9.contains("500") && fig9.contains("1250"));
    }

    #[test]
    fn pipeline_report_contains_the_key_numbers() {
        let report = fig4c_pipeline_report();
        assert!(report.contains("125"));
        assert!(report.contains("Measured latency: 11 cycles"));
    }

    #[test]
    fn random_equivalence_is_clean() {
        let counts = random_equivalence_counts(200, 7);
        assert_eq!(counts.total_mismatches(), 0);
        assert_eq!(counts.box_cases, 200);
        assert_eq!(counts.triangle_cases, 200);
        assert_eq!(counts.distance_cases, 200);
    }

    #[test]
    fn validation_report_is_green() {
        let report = validation_report(100);
        assert!(report.contains("all green: true"), "{report}");
    }

    #[test]
    fn ablation_table_shows_the_specialisation_saving() {
        let table = ablation_squarer_table();
        assert!(table.contains("euclidean"));
        assert!(table.contains("-"), "disjoint Euclidean power should drop");
    }

    #[test]
    fn request_batches_are_deterministic() {
        assert_eq!(
            random_ray_box_requests(16, 3),
            random_ray_box_requests(16, 3)
        );
        assert_eq!(random_ray_box_requests(16, 3).len(), 16);
    }
}
