//! Simulator performance baselines: rays/sec and beats/sec for the scalar, batched-wavefront and
//! thread-parallel execution paths across several scenes, emitted as a human-readable table and a
//! machine-readable JSON document (`BENCH_baseline.json`).
//!
//! These are *simulator* numbers, not paper claims — they track how fast the Rust model runs so
//! future scaling work (sharding, async serving, new backends) has a baseline to beat.  The
//! definitions:
//!
//! * **scalar** — [`ExecPolicy::scalar`], driving the recoded-format stage emulation one beat
//!   at a time per ray (the execution model of the original reproduction);
//! * **batched** — [`ExecPolicy::wavefront`], the ray-stream frontend dispatching bulk beats
//!   through the native fast model;
//! * **simd** — the batched frontend with the lane-batched fast path at its maximum width
//!   ([`ExecPolicy::with_simd_lanes`]), evaluating several requests per kernel step;
//! * **coherent** — the simd mode plus the coherence layer ([`ExecPolicy::with_coherence`],
//!   [`CoherenceMode::SortAndCompact`]): octant-sorted admission and active-lane compaction
//!   between passes, filling more lanes per kernel step on divergent streams;
//! * **parallel** — [`ExecPolicy::parallel`], the SIMD-batched frontend sharded across the
//!   work-stealing worker pool (with auto-tuned chunk sizing, a single-core or short-stream run
//!   falls back to the batched path instead of paying spawn overhead).
//!
//! All five are the same entry point — [`TraversalEngine::trace`] — under different policies.
//! The batched/simd/parallel rows pin [`CoherenceMode::Off`] so their numbers stay comparable
//! with earlier baselines; the coherent row is the only one that turns the new layer on.
//!
//! All five paths produce bit-identical hits; the suite cross-checks that on every run before
//! timing anything.  Each measurement also records the datapath's SIMD lane occupancy
//! ([`BeatMix::simd_lane_occupancy`]) so the coherence win is visible as filled lanes, not just
//! wall time.
//!
//! A second suite ([`run_query_engine_suite`], `BENCH_query_engine.json`) covers the query kinds
//! retrofitted onto the generic batched query engine — rendering (one batched primary-ray stream
//! per frame), any-hit/shadow streams, and k-NN distance scoring — each timed against its scalar
//! per-beat drive loop and cross-checked bit-for-bit first.
//!
//! A third suite ([`run_render_pass_suite`], `BENCH_render_passes.json`) covers the multi-pass
//! deferred renderer: primary-only, shadowed, and shadowed+AO frame configurations, each timed
//! batched versus the scalar multi-pass reference after a pixel-bit-identity cross-check.

use std::time::Instant;

use rayflex_core::{
    BeatMix, Opcode, PipelineConfig, QueryKind, RayFlexDatapath, RayFlexRequest, MAX_SIMD_LANES,
};
use rayflex_geometry::golden::distance::EUCLIDEAN_LANES;
use rayflex_geometry::{Aabb, Ray, Sphere, Triangle, Vec3};
use rayflex_rtunit::{
    default_light_dir, shade, Blas, Bvh4, Bvh4Node, Camera, CoherenceMode, CollectStream,
    DistanceStream, ExecPolicy, FrameDesc, FusedScheduler, Image, Instance, KnnEngine, KnnMetric,
    PoolStats, RenderPasses, Renderer, Scene, TraceRequest, TraversalEngine, TraversalHit,
    TraversalStream,
};
use rayflex_workloads::{mixed, rays, scenes, vectors};

/// One benchmark scene: geometry plus the ray stream traced against it.
pub struct PerfScene {
    /// Scene name as it appears in reports.
    pub name: &'static str,
    /// Scene geometry.
    pub triangles: Vec<Triangle>,
    /// The ray stream.
    pub rays: Vec<Ray>,
}

/// The three standard scenes of the baseline suite.
#[must_use]
pub fn standard_perf_scenes(rays_per_scene: usize) -> Vec<PerfScene> {
    let side = (rays_per_scene as f64).sqrt().ceil() as usize;
    vec![
        PerfScene {
            name: "icosphere",
            triangles: scenes::icosphere(3, 5.0, Vec3::new(0.0, 0.0, 20.0)),
            rays: rays::camera_grid(side, side, 12.0),
        },
        PerfScene {
            name: "quad_wall",
            triangles: scenes::quad_wall(24, 1.2, 15.0),
            rays: rays::camera_grid(side, side, 24.0),
        },
        PerfScene {
            name: "triangle_soup",
            triangles: scenes::random_triangle_soup(2024, 600, 30.0),
            rays: rays::random_rays(
                7,
                side * side,
                &Aabb::new(Vec3::splat(-30.0), Vec3::splat(30.0)),
            ),
        },
    ]
}

/// One timed execution mode on one scene.
#[derive(Debug, Clone)]
pub struct PerfMeasurement {
    /// Mode name (`scalar`, `batched`, `simd`, `coherent`, `parallel`).
    pub mode: &'static str,
    /// Best-of-`repeats` wall time for the whole stream, in seconds.
    pub seconds: f64,
    /// Rays traced per second.
    pub rays_per_sec: f64,
    /// Datapath beats executed per second.
    pub beats_per_sec: f64,
    /// Throughput relative to the scalar mode on the same scene.
    pub speedup_vs_scalar: f64,
    /// Average fraction of SIMD lane slots carrying live work in this mode's lane-batched
    /// kernel issues ([`BeatMix::simd_lane_occupancy`]; 0 when the mode never batches lanes).
    pub lane_occupancy: f64,
}

/// All measurements for one scene.
#[derive(Debug, Clone)]
pub struct ScenePerf {
    /// Scene name.
    pub scene: &'static str,
    /// Triangles in the scene.
    pub triangles: u64,
    /// Rays in the stream.
    pub rays: u64,
    /// Datapath beats per full trace of the stream.
    pub beats: u64,
    /// Work-stealing pool counters of one parallel trace of the stream (all zero when the
    /// auto-tuner ran the stream inline, e.g. on a single-core host).
    pub pool: PoolStats,
    /// Per-mode measurements (scalar, batched, simd, coherent, parallel).
    pub measurements: Vec<PerfMeasurement>,
}

impl ScenePerf {
    /// Throughput of the named mode relative to scalar (1.0 if the mode is missing).
    #[must_use]
    pub fn speedup(&self, mode: &str) -> f64 {
        self.measurements
            .iter()
            .find(|m| m.mode == mode)
            .map_or(1.0, |m| m.speedup_vs_scalar)
    }
}

/// Beat-level datapath micro-benchmark results.
#[derive(Debug, Clone, Copy)]
pub struct DatapathPerf {
    /// Beats per second through the per-beat recoded-format emulation.
    pub emulated_beats_per_sec: f64,
    /// Beats per second through the batched native fast model.
    pub batched_beats_per_sec: f64,
    /// Beats per second through the lane-batched fast path at its maximum width.
    pub simd_beats_per_sec: f64,
}

/// Instanced-vs-flattened measurements for one two-level scene preset: acceleration-structure
/// build time, resident memory, and trace throughput.  The throughput rows are cross-checked
/// bit-identical against the flattened scalar reference before timing, and the instanced
/// batched-vs-scalar speedup feeds the same acceptance gate as the flat scenes
/// ([`PerfBaseline::min_best_speedup`]).
#[derive(Debug, Clone)]
pub struct InstancingPerf {
    /// Preset name (`debris_field`, `icosphere_crowd`).
    pub scene: &'static str,
    /// Placed instances in the TLAS.
    pub instances: u64,
    /// Total world-space triangles the scene addresses (the flattened count).
    pub placed_triangles: u64,
    /// Best-of build time of the two-level scene (per-BLAS builds + TLAS), in seconds.
    pub instanced_build_seconds: f64,
    /// Best-of build time of the flattened twin (bake every placement + one flat BVH build).
    pub flattened_build_seconds: f64,
    /// Resident bytes of the instanced representation.
    pub instanced_memory_bytes: u64,
    /// Resident bytes of the flattened twin.
    pub flattened_memory_bytes: u64,
    /// Instanced scalar-reference trace throughput.
    pub scalar_rays_per_sec: f64,
    /// Instanced trace throughput under the lane-batched wavefront mode.
    pub instanced_rays_per_sec: f64,
    /// Flattened-twin trace throughput under the same lane-batched wavefront mode.
    pub flattened_rays_per_sec: f64,
    /// Instanced batched throughput over instanced scalar — the gate contribution.
    pub speedup_vs_scalar: f64,
}

/// The complete baseline document.
#[derive(Debug, Clone)]
pub struct PerfBaseline {
    /// Worker threads used by the parallel mode.
    pub threads: usize,
    /// Timing repeats per measurement (best-of).
    pub repeats: usize,
    /// Beat-level micro-benchmark.
    pub datapath: DatapathPerf,
    /// Per-scene traversal measurements.
    pub scenes: Vec<ScenePerf>,
    /// Two-level instanced-vs-flattened measurements.
    pub instancing: Vec<InstancingPerf>,
}

fn time_best_of<R>(repeats: usize, mut run: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let value = run();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(value);
    }
    (best, result.expect("at least one repeat"))
}

fn assert_hits_match(
    scene: &str,
    mode: &str,
    expected: &[Option<TraversalHit>],
    got: &[Option<TraversalHit>],
) {
    assert_eq!(expected.len(), got.len(), "{scene}/{mode}: ray count");
    for (i, (e, g)) in expected.iter().zip(got).enumerate() {
        match (e, g) {
            (None, None) => {}
            (Some(e), Some(g)) => {
                assert!(
                    e.primitive == g.primitive && e.t.to_bits() == g.t.to_bits(),
                    "{scene}/{mode}: ray {i} diverged ({e:?} vs {g:?})"
                );
            }
            other => panic!("{scene}/{mode}: ray {i} diverged ({other:?})"),
        }
    }
}

/// Runs the full baseline suite.
///
/// `rays_per_scene` is rounded up to a square grid.  `repeats` is the best-of count per
/// measurement, and `threads` the worker count for the parallel mode.
#[must_use]
pub fn run_perf_suite(rays_per_scene: usize, repeats: usize, threads: usize) -> PerfBaseline {
    let config = PipelineConfig::baseline_unified();

    // Beat-level micro-benchmark.
    let requests = crate::random_ray_box_requests(1024, 11);
    let (emulated_seconds, _) = time_best_of(repeats, || {
        let mut datapath = RayFlexDatapath::new(config);
        datapath.execute_batch_emulated(&requests)
    });
    let (batched_seconds, _) = time_best_of(repeats, || {
        let mut datapath = RayFlexDatapath::new(config);
        datapath.execute_batch(&requests)
    });
    let (simd_micro_seconds, _) = time_best_of(repeats, || {
        let mut datapath = RayFlexDatapath::new(config);
        datapath.set_simd_lanes(MAX_SIMD_LANES);
        datapath.execute_batch(&requests)
    });
    let datapath = DatapathPerf {
        emulated_beats_per_sec: requests.len() as f64 / emulated_seconds,
        batched_beats_per_sec: requests.len() as f64 / batched_seconds,
        simd_beats_per_sec: requests.len() as f64 / simd_micro_seconds,
    };

    let mut scene_results = Vec::new();
    for scene in standard_perf_scenes(rays_per_scene) {
        let world = Scene::flat(scene.triangles.clone());
        let request = TraceRequest::closest_hit(&world, &scene.rays);
        let trace_with = |policy: &ExecPolicy| {
            let mut engine = TraversalEngine::with_config(config);
            engine.trace(&request, policy).into_closest()
        };
        // One untimed run on a kept engine per mode to read the lane occupancy of its kernel
        // issues (the ratio is deterministic, so the probe matches what the timed runs did).
        let occupancy_of = |policy: &ExecPolicy| {
            let mut engine = TraversalEngine::with_config(config);
            let _ = engine.trace(&request, policy);
            engine.beat_mix().simd_lane_occupancy()
        };

        // Reference run: hits and beat counts, used for correctness and the beats/sec metric.
        let mut reference = TraversalEngine::with_config(config);
        let expected = reference
            .trace(&request, &ExecPolicy::scalar())
            .into_closest();
        let beats = reference.stats().total_ops();

        let (scalar_seconds, scalar_hits) =
            time_best_of(repeats, || trace_with(&ExecPolicy::scalar()));
        assert_hits_match(scene.name, "scalar", &expected, &scalar_hits);

        // batched/simd/parallel pin the coherence layer off so these columns keep measuring
        // what they always did; `coherent` below is the only row that turns it on.
        let batched_policy = ExecPolicy::wavefront().with_coherence(CoherenceMode::Off);
        let (batched_seconds, batched_hits) = time_best_of(repeats, || trace_with(&batched_policy));
        assert_hits_match(scene.name, "batched", &expected, &batched_hits);

        let simd_policy = ExecPolicy::wavefront()
            .with_simd_lanes(MAX_SIMD_LANES)
            .with_coherence(CoherenceMode::Off);
        let (simd_seconds, simd_hits) = time_best_of(repeats, || trace_with(&simd_policy));
        assert_hits_match(scene.name, "simd", &expected, &simd_hits);

        let coherent_policy = ExecPolicy::wavefront()
            .with_simd_lanes(MAX_SIMD_LANES)
            .with_coherence(CoherenceMode::SortAndCompact);
        let (coherent_seconds, coherent_hits) =
            time_best_of(repeats, || trace_with(&coherent_policy));
        assert_hits_match(scene.name, "coherent", &expected, &coherent_hits);

        // The parallel mode inherits the lane-batched kernels: each pool worker's private
        // datapath runs at the same width the simd mode uses.
        let parallel_policy = ExecPolicy::parallel(threads)
            .with_simd_lanes(MAX_SIMD_LANES)
            .with_coherence(CoherenceMode::Off);
        let (parallel_seconds, parallel_hits) =
            time_best_of(repeats, || trace_with(&parallel_policy));
        assert_hits_match(scene.name, "parallel", &expected, &parallel_hits);

        // One extra parallel run on a kept engine to record how the work-stealing pool moved.
        let mut pool_probe = TraversalEngine::with_config(config);
        let probe_hits = pool_probe.trace(&request, &parallel_policy).into_closest();
        assert_hits_match(scene.name, "parallel-pool-probe", &expected, &probe_hits);
        let pool = pool_probe.pool_stats();

        let ray_count = scene.rays.len() as f64;
        let measurement = |mode: &'static str, seconds: f64, lane_occupancy: f64| PerfMeasurement {
            mode,
            seconds,
            rays_per_sec: ray_count / seconds,
            beats_per_sec: beats as f64 / seconds,
            speedup_vs_scalar: scalar_seconds / seconds,
            lane_occupancy,
        };
        scene_results.push(ScenePerf {
            scene: scene.name,
            triangles: scene.triangles.len() as u64,
            rays: scene.rays.len() as u64,
            beats,
            pool,
            measurements: vec![
                measurement("scalar", scalar_seconds, 0.0),
                measurement("batched", batched_seconds, occupancy_of(&batched_policy)),
                measurement("simd", simd_seconds, occupancy_of(&simd_policy)),
                measurement("coherent", coherent_seconds, occupancy_of(&coherent_policy)),
                // The sharded run's beats execute on worker-private datapaths, so the caller's
                // own mix records nothing; report the per-worker width via the simd probe.
                measurement("parallel", parallel_seconds, occupancy_of(&simd_policy)),
            ],
        });
    }

    let instancing = run_instancing_suite(rays_per_scene, repeats, config);

    PerfBaseline {
        threads,
        repeats,
        datapath,
        scenes: scene_results,
        instancing,
    }
}

/// The instancing presets of the baseline suite, lifted from the workloads crate's
/// geometry-level descriptions into two-level scenes.
fn instancing_perf_scenes() -> Vec<(&'static str, scenes::InstancedSceneDesc)> {
    vec![
        ("debris_field", scenes::debris_field(29, 4, 96, 30.0)),
        ("icosphere_crowd", scenes::icosphere_crowd(1, 6, 9.0)),
    ]
}

/// Times instanced-vs-flattened builds, memory, and trace throughput for each instancing
/// preset.  Every timed trace is first cross-checked bit-identical against the flattened
/// scalar reference — the tentpole invariant of the two-level scene refactor, re-verified on
/// every benchmark run.
fn run_instancing_suite(
    rays_per_scene: usize,
    repeats: usize,
    config: PipelineConfig,
) -> Vec<InstancingPerf> {
    let mut results = Vec::new();
    for (name, desc) in instancing_perf_scenes() {
        let blas: Vec<Blas> = desc.meshes.iter().cloned().map(Blas::new).collect();
        let placements: Vec<Instance> = desc
            .placements
            .iter()
            .map(|(mesh, transform)| Instance::new(*mesh, *transform))
            .collect();

        let (instanced_build_seconds, instanced) = time_best_of(repeats, || {
            Scene::instanced(blas.clone(), placements.clone())
        });
        // The flattened build pays for what instancing avoids: baking every placement to world
        // space and building one flat BVH over the multiplied triangle set.
        let (flattened_build_seconds, flattened) =
            time_best_of(repeats, || Scene::flat(desc.flatten()));

        let stream = rays::random_rays(
            41,
            rays_per_scene.min(2048),
            &Aabb::new(Vec3::splat(-45.0), Vec3::splat(45.0)),
        );
        let request = TraceRequest::closest_hit(&instanced, &stream);
        let flat_request = TraceRequest::closest_hit(&flattened, &stream);

        let expected = TraversalEngine::with_config(config)
            .trace(&flat_request, &ExecPolicy::scalar())
            .into_closest();

        let (scalar_seconds, scalar_hits) = time_best_of(repeats, || {
            TraversalEngine::with_config(config)
                .trace(&request, &ExecPolicy::scalar())
                .into_closest()
        });
        assert_hits_match(name, "instanced-scalar", &expected, &scalar_hits);

        // Pinned `Off` like the baseline suite's legacy rows: these numbers compare against
        // pre-coherence baselines, and the per-run sort cost does not amortize over a
        // 2048-ray instancing trace.
        let batched_policy = ExecPolicy::wavefront()
            .with_simd_lanes(MAX_SIMD_LANES)
            .with_coherence(CoherenceMode::Off);
        let (instanced_seconds, instanced_hits) = time_best_of(repeats, || {
            TraversalEngine::with_config(config)
                .trace(&request, &batched_policy)
                .into_closest()
        });
        assert_hits_match(name, "instanced-batched", &expected, &instanced_hits);

        let (flattened_seconds, flattened_hits) = time_best_of(repeats, || {
            TraversalEngine::with_config(config)
                .trace(&flat_request, &batched_policy)
                .into_closest()
        });
        assert_hits_match(name, "flattened-batched", &expected, &flattened_hits);

        let ray_count = stream.len() as f64;
        results.push(InstancingPerf {
            scene: name,
            instances: instanced.instances().len() as u64,
            placed_triangles: instanced.triangle_count() as u64,
            instanced_build_seconds,
            flattened_build_seconds,
            instanced_memory_bytes: instanced.memory_bytes() as u64,
            flattened_memory_bytes: flattened.memory_bytes() as u64,
            scalar_rays_per_sec: ray_count / scalar_seconds,
            instanced_rays_per_sec: ray_count / instanced_seconds,
            flattened_rays_per_sec: ray_count / flattened_seconds,
            speedup_vs_scalar: scalar_seconds / instanced_seconds,
        });
    }
    results
}

impl PerfBaseline {
    /// The smallest best-mode speedup over scalar across all scenes — the headline number the
    /// acceptance gate checks (best of batched/simd/coherent/parallel per scene, worst case
    /// over scenes).
    #[must_use]
    pub fn min_best_speedup(&self) -> f64 {
        self.scenes
            .iter()
            .map(|s| {
                s.speedup("batched")
                    .max(s.speedup("simd"))
                    .max(s.speedup("coherent"))
                    .max(s.speedup("parallel"))
            })
            .chain(self.instancing.iter().map(|i| i.speedup_vs_scalar))
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the machine-readable JSON baseline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!(
            "  \"datapath\": {{\"emulated_beats_per_sec\": {:.0}, \"batched_beats_per_sec\": {:.0}, \"simd_beats_per_sec\": {:.0}}},\n",
            self.datapath.emulated_beats_per_sec,
            self.datapath.batched_beats_per_sec,
            self.datapath.simd_beats_per_sec
        ));
        out.push_str(&format!(
            "  \"min_best_speedup\": {:.2},\n",
            self.min_best_speedup()
        ));
        out.push_str("  \"scenes\": [\n");
        for (i, scene) in self.scenes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scene\": \"{}\", \"triangles\": {}, \"rays\": {}, \"beats\": {}, \"pool\": {{\"workers\": {}, \"chunks\": {}, \"steals\": {}}}, \"modes\": [",
                scene.scene,
                scene.triangles,
                scene.rays,
                scene.beats,
                scene.pool.workers,
                scene.pool.chunks,
                scene.pool.steals
            ));
            for (j, m) in scene.measurements.iter().enumerate() {
                out.push_str(&format!(
                    "{{\"mode\": \"{}\", \"seconds\": {:.6}, \"rays_per_sec\": {:.0}, \"beats_per_sec\": {:.0}, \"speedup_vs_scalar\": {:.2}, \"simd_lane_occupancy\": {:.3}}}",
                    m.mode, m.seconds, m.rays_per_sec, m.beats_per_sec, m.speedup_vs_scalar,
                    m.lane_occupancy
                ));
                if j + 1 < scene.measurements.len() {
                    out.push_str(", ");
                }
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.scenes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"instancing\": [\n");
        for (i, inst) in self.instancing.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scene\": \"{}\", \"instances\": {}, \"placed_triangles\": {}, \
                 \"build\": {{\"instanced_seconds\": {:.6}, \"flattened_seconds\": {:.6}}}, \
                 \"memory\": {{\"instanced_bytes\": {}, \"flattened_bytes\": {}}}, \
                 \"trace\": {{\"scalar_rays_per_sec\": {:.0}, \"instanced_rays_per_sec\": {:.0}, \
                 \"flattened_rays_per_sec\": {:.0}, \"speedup_vs_scalar\": {:.2}}}}}",
                inst.scene,
                inst.instances,
                inst.placed_triangles,
                inst.instanced_build_seconds,
                inst.flattened_build_seconds,
                inst.instanced_memory_bytes,
                inst.flattened_memory_bytes,
                inst.scalar_rays_per_sec,
                inst.instanced_rays_per_sec,
                inst.flattened_rays_per_sec,
                inst.speedup_vs_scalar
            ));
            out.push_str(if i + 1 < self.instancing.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn render_table(&self) -> String {
        use rayflex_synth::report::Table;
        let mut table = Table::new(vec![
            "scene",
            "rays",
            "beats",
            "mode",
            "time (ms)",
            "rays/s",
            "beats/s",
            "vs scalar",
            "lane occ",
        ]);
        for scene in &self.scenes {
            for m in &scene.measurements {
                table.add_row(vec![
                    scene.scene.to_string(),
                    scene.rays.to_string(),
                    scene.beats.to_string(),
                    m.mode.to_string(),
                    format!("{:.2}", m.seconds * 1e3),
                    format!("{:.0}", m.rays_per_sec),
                    format!("{:.0}", m.beats_per_sec),
                    format!("{:.2}x", m.speedup_vs_scalar),
                    format!("{:.3}", m.lane_occupancy),
                ]);
            }
        }
        let mut instancing_table = Table::new(vec![
            "preset",
            "instances",
            "placed tris",
            "build inst/flat (ms)",
            "mem inst/flat (KiB)",
            "rays/s scalar",
            "rays/s inst",
            "rays/s flat",
            "vs scalar",
        ]);
        for inst in &self.instancing {
            instancing_table.add_row(vec![
                inst.scene.to_string(),
                inst.instances.to_string(),
                inst.placed_triangles.to_string(),
                format!(
                    "{:.2} / {:.2}",
                    inst.instanced_build_seconds * 1e3,
                    inst.flattened_build_seconds * 1e3
                ),
                format!(
                    "{} / {}",
                    inst.instanced_memory_bytes / 1024,
                    inst.flattened_memory_bytes / 1024
                ),
                format!("{:.0}", inst.scalar_rays_per_sec),
                format!("{:.0}", inst.instanced_rays_per_sec),
                format!("{:.0}", inst.flattened_rays_per_sec),
                format!("{:.2}x", inst.speedup_vs_scalar),
            ]);
        }
        format!(
            "Simulator performance baseline ({} threads, best of {} runs)\n\
             Datapath micro-benchmark: {:.0} emulated beats/s vs {:.0} batched beats/s ({:.1}x) \
             vs {:.0} simd beats/s ({:.1}x)\n{}\n\
             Two-level instancing (TLAS/BLAS) vs flattened:\n{}\n\
             Minimum best-mode speedup over scalar across scenes: {:.2}x\n",
            self.threads,
            self.repeats,
            self.datapath.emulated_beats_per_sec,
            self.datapath.batched_beats_per_sec,
            self.datapath.batched_beats_per_sec / self.datapath.emulated_beats_per_sec,
            self.datapath.simd_beats_per_sec,
            self.datapath.simd_beats_per_sec / self.datapath.emulated_beats_per_sec,
            table.render(),
            instancing_table.render(),
            self.min_best_speedup(),
        )
    }
}

/// One mode of the query-engine suite: a query kind timed scalar (per-beat emulated drive loop)
/// versus batched (the generic wavefront query engine).
#[derive(Debug, Clone)]
pub struct QueryModePerf {
    /// Mode name (`render`, `shadow`, `knn`).
    pub mode: &'static str,
    /// Items processed per run (pixels, shadow rays, candidate vectors).
    pub items: u64,
    /// Datapath beats per run.
    pub beats: u64,
    /// Best-of wall time of the scalar reference, in seconds.
    pub scalar_seconds: f64,
    /// Best-of wall time of the batched query engine, in seconds.
    pub batched_seconds: f64,
    /// Best-of wall time of the batched engine with the lane-batched fast path at its maximum
    /// width, in seconds.
    pub simd_seconds: f64,
    /// `scalar_seconds / batched_seconds`.
    pub speedup: f64,
    /// `scalar_seconds / simd_seconds`.
    pub simd_speedup: f64,
    /// Lane occupancy of the simd run's lane-batched kernel issues
    /// ([`BeatMix::simd_lane_occupancy`]; 0 when the kind never batches lanes, e.g. the k-NN
    /// accumulator chain that stays on the scalar fast path).
    pub simd_lane_occupancy: f64,
}

/// The query-engine baseline document (`BENCH_query_engine.json`): how much the generic batched
/// query engine buys over scalar drive loops for every retrofitted query kind.
#[derive(Debug, Clone)]
pub struct QueryEngineBaseline {
    /// Timing repeats per measurement (best-of).
    pub repeats: usize,
    /// Per-mode measurements.
    pub modes: Vec<QueryModePerf>,
}

impl QueryEngineBaseline {
    /// The smallest batched-over-scalar speedup across modes (the acceptance gate checks this
    /// against the 3× floor).
    #[must_use]
    pub fn min_speedup(&self) -> f64 {
        self.modes
            .iter()
            .map(|m| m.speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the machine-readable JSON baseline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"min_speedup\": {:.2},\n", self.min_speedup()));
        out.push_str("  \"modes\": [\n");
        for (i, m) in self.modes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"items\": {}, \"beats\": {}, \"scalar_seconds\": {:.6}, \"batched_seconds\": {:.6}, \"simd_seconds\": {:.6}, \"speedup\": {:.2}, \"simd_speedup\": {:.2}, \"simd_lane_occupancy\": {:.3}}}",
                m.mode, m.items, m.beats, m.scalar_seconds, m.batched_seconds, m.simd_seconds,
                m.speedup, m.simd_speedup, m.simd_lane_occupancy
            ));
            out.push_str(if i + 1 < self.modes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn render_table(&self) -> String {
        use rayflex_synth::report::Table;
        let mut table = Table::new(vec![
            "mode",
            "items",
            "beats",
            "scalar (ms)",
            "batched (ms)",
            "simd (ms)",
            "speedup",
            "simd speedup",
            "lane occ",
        ]);
        for m in &self.modes {
            table.add_row(vec![
                m.mode.to_string(),
                m.items.to_string(),
                m.beats.to_string(),
                format!("{:.2}", m.scalar_seconds * 1e3),
                format!("{:.2}", m.batched_seconds * 1e3),
                format!("{:.2}", m.simd_seconds * 1e3),
                format!("{:.2}x", m.speedup),
                format!("{:.2}x", m.simd_speedup),
                format!("{:.3}", m.simd_lane_occupancy),
            ]);
        }
        format!(
            "Query-engine baseline (best of {} runs): scalar drive loops vs the batched wavefront query engine\n{}\n\
             Minimum batched-over-scalar speedup across query kinds: {:.2}x\n",
            self.repeats,
            table.render(),
            self.min_speedup(),
        )
    }
}

/// One pass configuration of the deferred-renderer suite, timed batched versus the scalar
/// multi-pass reference.
#[derive(Debug, Clone)]
pub struct RenderPassPerf {
    /// Pass configuration name (`primary`, `shadowed`, `shadowed_ao`).
    pub pass: &'static str,
    /// Pixels per frame.
    pub pixels: u64,
    /// Total rays traced per frame across all passes (primary + shadow + AO).
    pub rays: u64,
    /// Datapath beats per frame.
    pub beats: u64,
    /// Best-of wall time of the scalar multi-pass reference frame, in seconds.
    pub scalar_seconds: f64,
    /// Best-of wall time of the batched multi-pass frame, in seconds.
    pub batched_seconds: f64,
    /// Best-of wall time of the batched frame with the lane-batched fast path at its maximum
    /// width, in seconds.
    pub simd_seconds: f64,
    /// `scalar_seconds / batched_seconds`.
    pub speedup: f64,
    /// `scalar_seconds / simd_seconds`.
    pub simd_speedup: f64,
    /// Lane occupancy of the simd frame's lane-batched kernel issues
    /// ([`BeatMix::simd_lane_occupancy`]).
    pub simd_lane_occupancy: f64,
}

/// The deferred-renderer baseline document (`BENCH_render_passes.json`): how much the batched
/// wavefront passes buy over the scalar per-pixel multi-pass reference for every render-pass
/// configuration.
#[derive(Debug, Clone)]
pub struct RenderPassBaseline {
    /// Timing repeats per measurement (best-of).
    pub repeats: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Per-pass-configuration measurements.
    pub passes: Vec<RenderPassPerf>,
}

impl RenderPassBaseline {
    /// The smallest batched-over-scalar speedup across pass configurations (the acceptance gate
    /// checks this against the 3× floor).
    #[must_use]
    pub fn min_speedup(&self) -> f64 {
        self.passes
            .iter()
            .map(|p| p.speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the machine-readable JSON baseline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!(
            "  \"frame\": {{\"width\": {}, \"height\": {}}},\n",
            self.width, self.height
        ));
        out.push_str(&format!("  \"min_speedup\": {:.2},\n", self.min_speedup()));
        out.push_str("  \"passes\": [\n");
        for (i, p) in self.passes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"pass\": \"{}\", \"pixels\": {}, \"rays\": {}, \"beats\": {}, \"scalar_seconds\": {:.6}, \"batched_seconds\": {:.6}, \"simd_seconds\": {:.6}, \"speedup\": {:.2}, \"simd_speedup\": {:.2}, \"simd_lane_occupancy\": {:.3}}}",
                p.pass, p.pixels, p.rays, p.beats, p.scalar_seconds, p.batched_seconds,
                p.simd_seconds, p.speedup, p.simd_speedup, p.simd_lane_occupancy
            ));
            out.push_str(if i + 1 < self.passes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn render_table(&self) -> String {
        use rayflex_synth::report::Table;
        let mut table = Table::new(vec![
            "pass",
            "pixels",
            "rays",
            "beats",
            "scalar (ms)",
            "batched (ms)",
            "simd (ms)",
            "speedup",
            "simd speedup",
            "lane occ",
        ]);
        for p in &self.passes {
            table.add_row(vec![
                p.pass.to_string(),
                p.pixels.to_string(),
                p.rays.to_string(),
                p.beats.to_string(),
                format!("{:.2}", p.scalar_seconds * 1e3),
                format!("{:.2}", p.batched_seconds * 1e3),
                format!("{:.2}", p.simd_seconds * 1e3),
                format!("{:.2}x", p.speedup),
                format!("{:.2}x", p.simd_speedup),
                format!("{:.3}", p.simd_lane_occupancy),
            ]);
        }
        format!(
            "Deferred-render baseline ({}x{} frame, best of {} runs): scalar multi-pass reference vs batched wavefront passes\n{}\n\
             Minimum batched-over-scalar speedup across pass configurations: {:.2}x\n",
            self.width,
            self.height,
            self.repeats,
            table.render(),
            self.min_speedup(),
        )
    }
}

fn assert_frames_match(pass: &str, expected: &Image, got: &Image) {
    assert_eq!(
        expected.first_mismatch(got),
        None,
        "{pass}: batched frame diverged from the reference"
    );
}

/// Runs the deferred-renderer suite: times the scalar multi-pass reference against the batched
/// wavefront passes for the primary-only, shadowed and shadowed+AO configurations on the lit
/// scene, cross-checking that each pair produces bit-identical frames (and identical traversal
/// statistics) before timing anything.
///
/// `pixels_per_frame` is rounded up to a square frame.  `repeats` is the best-of count per
/// measurement.
#[must_use]
pub fn run_render_pass_suite(pixels_per_frame: usize, repeats: usize) -> RenderPassBaseline {
    let side = (pixels_per_frame.max(4) as f64).sqrt().ceil() as usize;
    let (width, height) = (side, side);
    let config = PipelineConfig::baseline_unified();
    let scene = scenes::lit_scene(2, 24.0);
    let world = Scene::flat(scene.triangles.clone());
    let camera = Camera::looking_at(scene.eye, scene.target);

    let shadowed = RenderPasses::shadowed(scene.light);
    let with_ao = shadowed.with_ambient_occlusion(4, 6.0, 2024);
    let pass_configs: [(&'static str, Option<RenderPasses>); 3] = [
        ("primary", None),
        ("shadowed", Some(shadowed)),
        ("shadowed_ao", Some(with_ao)),
    ];

    let mut passes = Vec::new();
    for (name, pass) in pass_configs {
        let frame = match pass {
            None => FrameDesc::primary(camera, width, height),
            Some(p) => FrameDesc::deferred(camera, width, height, p),
        };
        let scalar_frame =
            |renderer: &mut Renderer| renderer.render(&world, &frame, &ExecPolicy::scalar());
        let batched_frame =
            |renderer: &mut Renderer| renderer.render(&world, &frame, &ExecPolicy::wavefront());
        let simd_frame = |renderer: &mut Renderer| {
            renderer.render(
                &world,
                &frame,
                &ExecPolicy::wavefront().with_simd_lanes(MAX_SIMD_LANES),
            )
        };

        // Reference run: the expected frame, rays and beat counts, then the bit-identity
        // cross-check of the batched and simd frames (pixels *and* statistics).
        let mut reference = Renderer::with_config(config);
        let expected = scalar_frame(&mut reference);
        let reference_stats = reference.stats();
        let mut batched = Renderer::with_config(config);
        let image = batched_frame(&mut batched);
        assert_frames_match(name, &expected, &image);
        assert_eq!(
            batched.stats(),
            reference_stats,
            "{name}: batched TraversalStats diverged from the reference"
        );
        let mut simd = Renderer::with_config(config);
        let simd_image = simd_frame(&mut simd);
        assert_frames_match(name, &expected, &simd_image);
        assert_eq!(
            simd.stats(),
            reference_stats,
            "{name}: simd TraversalStats diverged from the reference"
        );
        let simd_lane_occupancy = simd.beat_mix().simd_lane_occupancy();

        let (scalar_seconds, _) = time_best_of(repeats, || {
            let mut renderer = Renderer::with_config(config);
            scalar_frame(&mut renderer)
        });
        let (batched_seconds, _) = time_best_of(repeats, || {
            let mut renderer = Renderer::with_config(config);
            batched_frame(&mut renderer)
        });
        let (simd_seconds, _) = time_best_of(repeats, || {
            let mut renderer = Renderer::with_config(config);
            simd_frame(&mut renderer)
        });
        passes.push(RenderPassPerf {
            pass: name,
            pixels: (width * height) as u64,
            rays: reference_stats.rays,
            beats: reference_stats.total_ops(),
            scalar_seconds,
            batched_seconds,
            simd_seconds,
            speedup: scalar_seconds / batched_seconds,
            simd_speedup: scalar_seconds / simd_seconds,
            simd_lane_occupancy,
        });
    }

    RenderPassBaseline {
        repeats,
        width,
        height,
        passes,
    }
}

/// Per-beat emulated Euclidean scoring of a candidate set — the pre-refactor scalar k-NN drive
/// loop, kept here as the timing/correctness reference (the library itself only has the batched
/// path).
fn emulated_knn_distances(
    datapath: &mut RayFlexDatapath,
    query: &[f32],
    dataset: &[Vec<f32>],
) -> Vec<f32> {
    dataset
        .iter()
        .map(|candidate| {
            assert_eq!(query.len(), candidate.len());
            let mut result = 0.0;
            let mut offset = 0;
            while offset < query.len() || offset == 0 {
                let lanes = (query.len() - offset).min(EUCLIDEAN_LANES);
                let mut beat_a = [0.0f32; EUCLIDEAN_LANES];
                let mut beat_b = [0.0f32; EUCLIDEAN_LANES];
                beat_a[..lanes].copy_from_slice(&query[offset..offset + lanes]);
                beat_b[..lanes].copy_from_slice(&candidate[offset..offset + lanes]);
                let mask = if lanes == EUCLIDEAN_LANES {
                    u16::MAX
                } else {
                    (1u16 << lanes) - 1
                };
                let last = offset + lanes >= query.len();
                let response =
                    datapath.execute(&RayFlexRequest::euclidean(0, beat_a, beat_b, mask, last));
                let distance = response.distance_result.expect("euclidean beat");
                if last {
                    result = distance.euclidean_accumulator;
                    break;
                }
                offset += lanes;
            }
            result
        })
        .collect()
}

/// Runs the query-engine suite: times the scalar and batched execution of the render, shadow and
/// k-NN query kinds and cross-checks that both produce bit-identical results before timing
/// anything.
///
/// `items_per_mode` sizes each mode (pixels per frame, shadow rays, candidate vectors); it is
/// rounded up to a square grid where a grid is needed.
#[must_use]
pub fn run_query_engine_suite(items_per_mode: usize, repeats: usize) -> QueryEngineBaseline {
    let side = (items_per_mode.max(4) as f64).sqrt().ceil() as usize;
    let mut modes = Vec::new();

    // --- render: one batched primary-ray stream per frame vs per-pixel scalar traversal. ---
    {
        let config = PipelineConfig::baseline_unified();
        let triangles = scenes::icosphere(3, 5.0, Vec3::new(0.0, 0.0, 20.0));
        let world = Scene::flat(triangles.clone());
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 20.0));
        let (width, height) = (side, side);
        let light_dir = default_light_dir();

        // Ray generation stays inside the timed closure so both modes pay it: the batched
        // measurement (Renderer::render) generates the frame rays inside its timed region too.
        let scalar_frame = |engine: &mut TraversalEngine| -> Vec<f32> {
            let frame_rays = camera.primary_rays(width, height);
            engine
                .trace(
                    &TraceRequest::closest_hit(&world, &frame_rays),
                    &ExecPolicy::scalar(),
                )
                .into_closest()
                .iter()
                .map(|hit| shade(&triangles, light_dir, hit.as_ref()))
                .collect()
        };

        // Reference run for beats and the bit-identity cross-check.
        let mut reference = TraversalEngine::with_config(config);
        let expected = scalar_frame(&mut reference);
        let beats = reference.stats().total_ops();

        let (scalar_seconds, _) = time_best_of(repeats, || {
            let mut engine = TraversalEngine::with_config(config);
            scalar_frame(&mut engine)
        });
        let (batched_seconds, image) = time_best_of(repeats, || {
            let mut renderer = Renderer::with_config(config);
            renderer.render(
                &world,
                &FrameDesc::primary(camera, width, height),
                &ExecPolicy::wavefront(),
            )
        });
        let (simd_seconds, simd_image) = time_best_of(repeats, || {
            let mut renderer = Renderer::with_config(config);
            renderer.render(
                &world,
                &FrameDesc::primary(camera, width, height),
                &ExecPolicy::wavefront().with_simd_lanes(MAX_SIMD_LANES),
            )
        });
        for y in 0..height {
            for x in 0..width {
                assert_eq!(
                    image.pixel(x, y).to_bits(),
                    expected[y * width + x].to_bits(),
                    "render: pixel ({x}, {y}) diverged"
                );
                assert_eq!(
                    simd_image.pixel(x, y).to_bits(),
                    expected[y * width + x].to_bits(),
                    "render/simd: pixel ({x}, {y}) diverged"
                );
            }
        }
        // One untimed simd frame on a kept renderer to read the lane occupancy the timed
        // runs achieved (the ratio is deterministic).
        let mut occupancy_probe = Renderer::with_config(config);
        occupancy_probe.render(
            &world,
            &FrameDesc::primary(camera, width, height),
            &ExecPolicy::wavefront().with_simd_lanes(MAX_SIMD_LANES),
        );
        modes.push(QueryModePerf {
            mode: "render",
            items: (width * height) as u64,
            beats,
            scalar_seconds,
            batched_seconds,
            simd_seconds,
            speedup: scalar_seconds / batched_seconds,
            simd_speedup: scalar_seconds / simd_seconds,
            simd_lane_occupancy: occupancy_probe.beat_mix().simd_lane_occupancy(),
        });
    }

    // --- shadow: any-hit wavefront vs scalar any-hit over a soft-shadow scene. ---
    {
        let config = PipelineConfig::baseline_unified();
        let triangles = scenes::soft_shadow(3, 24.0);
        let world = Scene::flat(triangles.clone());
        let light = Vec3::new(0.0, 20.0, 0.0);
        let shadow_rays = rays::floor_shadow_rays(side, side, 24.0, 0.0, light);

        let request = TraceRequest::any_hit(&world, &shadow_rays);
        let mut reference = TraversalEngine::with_config(config);
        let expected = reference.trace(&request, &ExecPolicy::scalar()).into_any();
        let beats = reference.stats().total_ops();

        let (scalar_seconds, scalar_hits) = time_best_of(repeats, || {
            let mut engine = TraversalEngine::with_config(config);
            engine.trace(&request, &ExecPolicy::scalar()).into_any()
        });
        assert_hits_match("soft_shadow", "scalar", &expected, &scalar_hits);
        let (batched_seconds, batched_hits) = time_best_of(repeats, || {
            let mut engine = TraversalEngine::with_config(config);
            engine.trace(&request, &ExecPolicy::wavefront()).into_any()
        });
        assert_hits_match("soft_shadow", "batched", &expected, &batched_hits);
        let (simd_seconds, simd_hits) = time_best_of(repeats, || {
            let mut engine = TraversalEngine::with_config(config);
            engine
                .trace(
                    &request,
                    &ExecPolicy::wavefront().with_simd_lanes(MAX_SIMD_LANES),
                )
                .into_any()
        });
        assert_hits_match("soft_shadow", "simd", &expected, &simd_hits);
        assert!(
            expected.iter().any(Option::is_some) && expected.iter().any(Option::is_none),
            "the soft-shadow scene must mix occluded and open rays"
        );
        let mut occupancy_probe = TraversalEngine::with_config(config);
        let _ = occupancy_probe.trace(
            &request,
            &ExecPolicy::wavefront().with_simd_lanes(MAX_SIMD_LANES),
        );
        modes.push(QueryModePerf {
            mode: "shadow",
            items: shadow_rays.len() as u64,
            beats,
            scalar_seconds,
            batched_seconds,
            simd_seconds,
            speedup: scalar_seconds / batched_seconds,
            simd_speedup: scalar_seconds / simd_seconds,
            simd_lane_occupancy: occupancy_probe.beat_mix().simd_lane_occupancy(),
        });
    }

    // --- knn: batched distance scoring vs the per-beat emulated candidate loop. ---
    {
        let config = PipelineConfig::extended_unified();
        let dataset = vectors::clustered_dataset(2024, items_per_mode.max(4), 24, 8, 4.0);
        let query = dataset.vectors[0].clone();

        let mut reference_dp = RayFlexDatapath::new(config);
        let expected = emulated_knn_distances(&mut reference_dp, &query, &dataset.vectors);
        // What the reference run actually issued — stays correct if the dataset shape changes.
        let beats = reference_dp.executed_beats();

        let (scalar_seconds, scalar_distances) = time_best_of(repeats, || {
            let mut datapath = RayFlexDatapath::new(config);
            emulated_knn_distances(&mut datapath, &query, &dataset.vectors)
        });
        let (batched_seconds, batched_distances) = time_best_of(repeats, || {
            let mut engine = KnnEngine::with_config(config);
            engine.distances(
                &query,
                &dataset.vectors,
                KnnMetric::Euclidean,
                &ExecPolicy::wavefront(),
            )
        });
        // Distance beats carry a serial accumulator chain, so the lane kernels leave them on
        // the scalar fast path — the simd column records that the knob is output-neutral here.
        let (simd_seconds, simd_distances) = time_best_of(repeats, || {
            let mut engine = KnnEngine::with_config(config);
            engine.distances(
                &query,
                &dataset.vectors,
                KnnMetric::Euclidean,
                &ExecPolicy::wavefront().with_simd_lanes(MAX_SIMD_LANES),
            )
        });
        for (i, (e, g)) in expected
            .iter()
            .zip(&scalar_distances)
            .chain(expected.iter().zip(&batched_distances))
            .chain(expected.iter().zip(&simd_distances))
            .enumerate()
        {
            assert_eq!(
                e.to_bits(),
                g.to_bits(),
                "knn: candidate {} diverged",
                i % expected.len()
            );
        }
        let mut occupancy_probe = KnnEngine::with_config(config);
        let _ = occupancy_probe.distances(
            &query,
            &dataset.vectors,
            KnnMetric::Euclidean,
            &ExecPolicy::wavefront().with_simd_lanes(MAX_SIMD_LANES),
        );
        modes.push(QueryModePerf {
            mode: "knn",
            items: dataset.vectors.len() as u64,
            beats,
            scalar_seconds,
            batched_seconds,
            simd_seconds,
            speedup: scalar_seconds / batched_seconds,
            simd_speedup: scalar_seconds / simd_seconds,
            simd_lane_occupancy: occupancy_probe.beat_mix().simd_lane_occupancy(),
        });
    }

    QueryEngineBaseline { repeats, modes }
}

/// One execution mode of the fused suite, timed over the whole mixed workload.
#[derive(Debug, Clone)]
pub struct FusedModePerf {
    /// Mode name (`scalar`, `sequential`, `fused`, `simd`, `coherent`).
    pub mode: &'static str,
    /// Best-of wall time for all four streams, in seconds.
    pub seconds: f64,
    /// Throughput relative to the scalar mode.
    pub speedup_vs_scalar: f64,
    /// Lane occupancy of this mode's lane-batched kernel issues
    /// ([`BeatMix::simd_lane_occupancy`]; 0 for the scalar and width-1 modes).
    pub lane_occupancy: f64,
}

/// One row of the fused per-kind × per-opcode mix table.
#[derive(Debug, Clone)]
pub struct FusedMixRow {
    /// Query kind owning the beats.
    pub kind: QueryKind,
    /// Beats per opcode, in [`Opcode::ALL`] order.
    pub counts: [u64; Opcode::ALL.len()],
}

/// The stream names of the mixed workload, in admission order (also the order of
/// [`FusedBudgetPerf::stream_passes`]).
pub const MIXED_STREAM_NAMES: [&str; 4] = ["closest", "shadow", "distance", "collect"];

/// One point of the beat-budget fairness sweep: the fused mixed workload re-run under a
/// per-stream admission budget, with the pass structure it produced.  Outputs are bit-identical
/// at every budget (asserted before recording); only the pass shape — and therefore the
/// QoS/fairness cost — moves.
#[derive(Debug, Clone)]
pub struct FusedBudgetPerf {
    /// The per-stream beat budget (`0` = unlimited, `1` = strict round-robin).
    pub beat_budget_per_stream: usize,
    /// Bulk passes the budgeted fused run dispatched.
    pub passes: u64,
    /// Passes each stream contributed at least one beat to, in [`MIXED_STREAM_NAMES`] order.
    pub stream_passes: [u64; 4],
    /// Best-of wall time of the budgeted fused run, in seconds.
    pub seconds: f64,
}

/// The fused-scheduler baseline document (`BENCH_fused.json`): the mixed multi-workload
/// (closest-hit render stream + any-hit shadow stream + k-NN scoring + radius-query candidate
/// collection) executed scalar, sequential-batched and fused over one extended datapath, plus
/// the per-kind × per-opcode beat mix of the fused run and the beat-budget fairness sweep.
#[derive(Debug, Clone)]
pub struct FusedBaseline {
    /// Timing repeats per measurement (best-of).
    pub repeats: usize,
    /// Rays in the closest-hit stream.
    pub primary_rays: u64,
    /// Rays in the shadow stream.
    pub shadow_rays: u64,
    /// Candidate vectors scored.
    pub candidates: u64,
    /// Radius queries filtered.
    pub radius_queries: u64,
    /// Bulk passes of the fused run.
    pub passes: u64,
    /// Passes of the fused run that interleaved at least two query kinds.
    pub fused_passes: u64,
    /// Per-mode measurements.
    pub modes: Vec<FusedModePerf>,
    /// The fused run's per-kind × per-opcode beat attribution.
    pub mix: Vec<FusedMixRow>,
    /// The beat-budget fairness sweep (budgets 0, 1 and 4 over the same workload).
    pub budget_sweep: Vec<FusedBudgetPerf>,
}

impl FusedBaseline {
    /// The fused-over-scalar speedup on the mixed workload (the acceptance gate checks this
    /// against the 3× floor).
    #[must_use]
    pub fn fused_speedup(&self) -> f64 {
        self.modes
            .iter()
            .find(|m| m.mode == "fused")
            .map_or(0.0, |m| m.speedup_vs_scalar)
    }

    /// Renders the machine-readable JSON baseline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!(
            "  \"workload\": {{\"primary_rays\": {}, \"shadow_rays\": {}, \"candidates\": {}, \"radius_queries\": {}}},\n",
            self.primary_rays, self.shadow_rays, self.candidates, self.radius_queries
        ));
        out.push_str(&format!(
            "  \"passes\": {}, \"fused_passes\": {},\n",
            self.passes, self.fused_passes
        ));
        out.push_str(&format!(
            "  \"min_speedup\": {:.2},\n",
            self.fused_speedup()
        ));
        out.push_str("  \"modes\": [\n");
        for (i, m) in self.modes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"seconds\": {:.6}, \"speedup_vs_scalar\": {:.2}, \"simd_lane_occupancy\": {:.3}}}",
                m.mode, m.seconds, m.speedup_vs_scalar, m.lane_occupancy
            ));
            out.push_str(if i + 1 < self.modes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"mix\": [\n");
        for (i, row) in self.mix.iter().enumerate() {
            out.push_str(&format!("    {{\"kind\": \"{}\"", row.kind));
            for (opcode, count) in Opcode::ALL.iter().zip(row.counts) {
                out.push_str(&format!(", \"{opcode}\": {count}"));
            }
            out.push('}');
            out.push_str(if i + 1 < self.mix.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"budget_sweep\": [\n");
        for (i, point) in self.budget_sweep.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"beat_budget_per_stream\": {}, \"passes\": {}, \"seconds\": {:.6}, \"stream_passes\": {{",
                point.beat_budget_per_stream, point.passes, point.seconds
            ));
            for (j, (name, passes)) in MIXED_STREAM_NAMES
                .iter()
                .zip(point.stream_passes)
                .enumerate()
            {
                out.push_str(&format!("\"{name}\": {passes}"));
                if j + 1 < MIXED_STREAM_NAMES.len() {
                    out.push_str(", ");
                }
            }
            out.push_str("}}");
            out.push_str(if i + 1 < self.budget_sweep.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the human-readable report, including the fused mix table.
    #[must_use]
    pub fn render_table(&self) -> String {
        use rayflex_synth::report::Table;
        let mut table = Table::new(vec!["mode", "time (ms)", "vs scalar", "lane occ"]);
        for m in &self.modes {
            table.add_row(vec![
                m.mode.to_string(),
                format!("{:.2}", m.seconds * 1e3),
                format!("{:.2}x", m.speedup_vs_scalar),
                format!("{:.3}", m.lane_occupancy),
            ]);
        }
        // Column headers come from Opcode::ALL so the cells (also in ALL order) can never drift
        // under a renamed or reordered opcode.
        let mut mix_headers = vec!["kind".to_string()];
        mix_headers.extend(Opcode::ALL.iter().map(ToString::to_string));
        mix_headers.push("total".to_string());
        let mut mix = Table::new(mix_headers);
        for row in &self.mix {
            let mut cells = vec![row.kind.to_string()];
            cells.extend(row.counts.iter().map(u64::to_string));
            cells.push(row.counts.iter().sum::<u64>().to_string());
            mix.add_row(cells);
        }
        let mut budget_headers = vec!["beat budget".to_string(), "passes".to_string()];
        budget_headers.extend(
            MIXED_STREAM_NAMES
                .iter()
                .map(|name| format!("{name} passes")),
        );
        budget_headers.push("time (ms)".to_string());
        let mut budget = Table::new(budget_headers);
        for point in &self.budget_sweep {
            let mut cells = vec![
                if point.beat_budget_per_stream == 0 {
                    "unlimited".to_string()
                } else {
                    point.beat_budget_per_stream.to_string()
                },
                point.passes.to_string(),
            ];
            cells.extend(point.stream_passes.iter().map(u64::to_string));
            cells.push(format!("{:.2}", point.seconds * 1e3));
            budget.add_row(cells);
        }
        format!(
            "Fused-scheduler baseline (best of {} runs): mixed workload ({} primary + {} shadow rays, \
             {} candidates, {} radius queries) scalar vs sequential-batched vs fused\n{}\n\
             Fused mix: {} bulk passes, {} mixing at least two query kinds\n{}\n\
             Beat-budget fairness sweep (outputs bit-identical at every budget):\n{}\n\
             Fused-over-scalar speedup on the mixed workload: {:.2}x\n",
            self.repeats,
            self.primary_rays,
            self.shadow_rays,
            self.candidates,
            self.radius_queries,
            table.render(),
            self.passes,
            self.fused_passes,
            mix.render(),
            budget.render(),
            self.fused_speedup(),
        )
    }
}

/// The per-stream outputs of one mixed-workload execution, for the bit-identity cross-checks.
struct MixedOutputs {
    closest: Vec<Option<TraversalHit>>,
    shadow: Vec<Option<TraversalHit>>,
    distances: Vec<f32>,
    candidates: Vec<Vec<usize>>,
}

/// Runs the four streams of the mixed workload over one extended datapath through the fused
/// scheduler — all four merged into shared passes when `fuse` is true (under the given
/// per-stream beat budget), one stream at a time (sequential batched scheduling) when false.
/// `coherence` sets the admission discipline of the two traversal streams (the distance and
/// collect streams have no ray octants to sort).  Returns the outputs, the datapath's beat mix,
/// the pass count and the per-stream pass counts of the (fused) run.
fn run_mixed_batched(
    workload: &mixed::MixedWorkload,
    world: &Scene,
    sphere_bvh: &Bvh4,
    fuse: bool,
    beat_budget_per_stream: usize,
    simd_lanes: usize,
    coherence: CoherenceMode,
) -> (MixedOutputs, BeatMix, u64, [u64; 4]) {
    let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
    datapath.set_simd_lanes(simd_lanes);
    let mut scheduler = FusedScheduler::new().with_beat_budget(beat_budget_per_stream);
    let mut closest =
        TraversalStream::closest_hit(world, &workload.primary_rays).with_coherence(coherence);
    let mut shadow =
        TraversalStream::any_hit(world, &workload.shadow_rays).with_coherence(coherence);
    let mut distance = DistanceStream::new(
        &workload.query_vector,
        &workload.candidates,
        KnnMetric::Euclidean,
    );
    let mut collect = CollectStream::new(sphere_bvh, &workload.radius_queries);
    let mut stream_passes = [0u64; 4];
    if fuse {
        scheduler.run(
            &mut datapath,
            &mut [&mut closest, &mut shadow, &mut distance, &mut collect],
        );
        stream_passes.copy_from_slice(scheduler.last_run_stream_passes());
    } else {
        scheduler.run(&mut datapath, &mut [&mut closest]);
        scheduler.run(&mut datapath, &mut [&mut shadow]);
        scheduler.run(&mut datapath, &mut [&mut distance]);
        scheduler.run(&mut datapath, &mut [&mut collect]);
    }
    let passes = scheduler.last_run_passes();
    let outputs = MixedOutputs {
        closest: closest.finish().0,
        shadow: shadow.finish().0,
        distances: distance.finish().0,
        candidates: collect.finish().0,
    };
    (outputs, datapath.beat_mix(), passes, stream_passes)
}

/// The scalar reference of the mixed workload: per-ray traversal loops, the per-beat emulated
/// k-NN candidate loop, and a per-beat scalar BVH filter walk.
fn run_mixed_scalar(
    workload: &mixed::MixedWorkload,
    world: &Scene,
    sphere_bvh: &Bvh4,
) -> MixedOutputs {
    let mut engine = TraversalEngine::with_config(PipelineConfig::extended_unified());
    let closest = engine
        .trace(
            &TraceRequest::closest_hit(world, &workload.primary_rays),
            &ExecPolicy::scalar(),
        )
        .into_closest();
    let shadow = engine
        .trace(
            &TraceRequest::any_hit(world, &workload.shadow_rays),
            &ExecPolicy::scalar(),
        )
        .into_any();
    let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
    let distances =
        emulated_knn_distances(&mut datapath, &workload.query_vector, &workload.candidates);
    let candidates = workload
        .radius_queries
        .iter()
        .map(|&(query, radius)| scalar_collect_walk(&mut datapath, sphere_bvh, query, radius))
        .collect();
    MixedOutputs {
        closest,
        shadow,
        distances,
        candidates,
    }
}

/// The pre-refactor scalar hierarchy filter, kept here as the timing/correctness reference: one
/// emulated `execute` call per ray–box beat while walking the sphere BVH.
fn scalar_collect_walk(
    datapath: &mut RayFlexDatapath,
    bvh: &Bvh4,
    query: Vec3,
    radius: f32,
) -> Vec<usize> {
    let ray = Ray::with_extent(
        query - Vec3::new(radius, 0.0, 0.0),
        Vec3::new(1.0, 0.0, 0.0),
        0.0,
        2.0 * radius,
    );
    let mut found = Vec::new();
    let mut stack = vec![bvh.root()];
    while let Some(node) = stack.pop() {
        match bvh.node(node) {
            Bvh4Node::Leaf { .. } => found.extend(bvh.leaf_primitives(node)),
            Bvh4Node::Internal {
                children,
                child_bounds,
            } => {
                let boxes = core::array::from_fn(|i| {
                    if child_bounds[i].is_empty() {
                        Aabb::new(Vec3::splat(f32::MAX), Vec3::splat(f32::MAX))
                    } else {
                        child_bounds[i].inflated(radius)
                    }
                });
                let result = datapath
                    .execute(&RayFlexRequest::ray_box(0, &ray, &boxes))
                    .box_result
                    .expect("box beat");
                for (slot, child) in children.iter().enumerate() {
                    if result.hit[slot] {
                        if let Some(child) = child {
                            stack.push(*child);
                        }
                    }
                }
            }
        }
    }
    found
}

fn assert_mixed_outputs_match(mode: &str, expected: &MixedOutputs, got: &MixedOutputs) {
    assert_hits_match(
        "mixed",
        &format!("{mode}/closest"),
        &expected.closest,
        &got.closest,
    );
    assert_hits_match(
        "mixed",
        &format!("{mode}/shadow"),
        &expected.shadow,
        &got.shadow,
    );
    assert_eq!(
        expected.distances.len(),
        got.distances.len(),
        "mixed/{mode}: candidate count"
    );
    for (i, (e, g)) in expected.distances.iter().zip(&got.distances).enumerate() {
        assert_eq!(
            e.to_bits(),
            g.to_bits(),
            "mixed/{mode}: candidate {i} diverged"
        );
    }
    assert_eq!(
        expected.candidates, got.candidates,
        "mixed/{mode}: collected candidates diverged"
    );
}

/// Runs the fused suite: executes the mixed workload scalar, sequential-batched, **fused** (all
/// four query kinds sharing bulk passes over one extended datapath), **simd** (the fused
/// discipline with the lane-batched fast path at its maximum width) and **coherent** (the simd
/// discipline with octant-sorted, lane-compacted admission on the traversal streams),
/// cross-checks that all modes produce bit-identical per-stream outputs first, then times each
/// mode and captures the fused run's per-kind × per-opcode beat mix.
///
/// `items_per_mode` sizes the workload (rays per traversal stream, candidate vectors).
///
/// # Panics
///
/// Panics if any mode's outputs diverge from the scalar reference, or if the fused run fails to
/// interleave at least two query kinds in one pass.
#[must_use]
pub fn run_fused_suite(items_per_mode: usize, repeats: usize) -> FusedBaseline {
    let workload = mixed::mixed_workload(2024, items_per_mode.max(4));
    let world = Scene::flat(workload.triangles.clone());
    let spheres: Vec<Sphere> = workload
        .points
        .iter()
        .map(|&p| Sphere::new(p, workload.point_radius))
        .collect();
    let sphere_bvh = Bvh4::build(&spheres);

    // Cross-check: all modes agree per stream, bit for bit, before timing anything.  The
    // sequential/fused/simd modes pin the coherence layer off to keep their columns comparable
    // with earlier baselines; `coherent` is the simd discipline with sorted-and-compacted
    // admission on the two traversal streams.
    let expected = run_mixed_scalar(&workload, &world, &sphere_bvh);
    let (sequential_outputs, _, _, _) = run_mixed_batched(
        &workload,
        &world,
        &sphere_bvh,
        false,
        0,
        1,
        CoherenceMode::Off,
    );
    assert_mixed_outputs_match("sequential", &expected, &sequential_outputs);
    let (fused_outputs, fused_mix, fused_pass_count, fused_stream_passes) = run_mixed_batched(
        &workload,
        &world,
        &sphere_bvh,
        true,
        0,
        1,
        CoherenceMode::Off,
    );
    assert_mixed_outputs_match("fused", &expected, &fused_outputs);
    let (simd_outputs, simd_mix, _, _) = run_mixed_batched(
        &workload,
        &world,
        &sphere_bvh,
        true,
        0,
        MAX_SIMD_LANES,
        CoherenceMode::Off,
    );
    assert_mixed_outputs_match("simd", &expected, &simd_outputs);
    let (coherent_outputs, coherent_mix, _, _) = run_mixed_batched(
        &workload,
        &world,
        &sphere_bvh,
        true,
        0,
        MAX_SIMD_LANES,
        CoherenceMode::SortAndCompact,
    );
    assert_mixed_outputs_match("coherent", &expected, &coherent_outputs);
    assert!(
        fused_mix.fused_passes() > 0,
        "the fused run must interleave at least two query kinds in one pass"
    );

    let (scalar_seconds, _) =
        time_best_of(repeats, || run_mixed_scalar(&workload, &world, &sphere_bvh));
    let (sequential_seconds, _) = time_best_of(repeats, || {
        run_mixed_batched(
            &workload,
            &world,
            &sphere_bvh,
            false,
            0,
            1,
            CoherenceMode::Off,
        )
    });
    let (fused_seconds, _) = time_best_of(repeats, || {
        run_mixed_batched(
            &workload,
            &world,
            &sphere_bvh,
            true,
            0,
            1,
            CoherenceMode::Off,
        )
    });
    let (simd_seconds, _) = time_best_of(repeats, || {
        run_mixed_batched(
            &workload,
            &world,
            &sphere_bvh,
            true,
            0,
            MAX_SIMD_LANES,
            CoherenceMode::Off,
        )
    });
    let (coherent_seconds, _) = time_best_of(repeats, || {
        run_mixed_batched(
            &workload,
            &world,
            &sphere_bvh,
            true,
            0,
            MAX_SIMD_LANES,
            CoherenceMode::SortAndCompact,
        )
    });

    // Beat-budget fairness sweep: the same fused workload under per-stream admission budgets.
    // Every budgeted run is cross-checked bit-identical first, so the recorded pass counts
    // measure pure fairness cost.  Budget 0 *is* the plain fused run measured above — its
    // cross-checked pass counts and best-of timing are reused rather than re-run.
    let budget_sweep = [0usize, 1, 4]
        .into_iter()
        .map(|budget| {
            if budget == 0 {
                return FusedBudgetPerf {
                    beat_budget_per_stream: 0,
                    passes: fused_pass_count,
                    stream_passes: fused_stream_passes,
                    seconds: fused_seconds,
                };
            }
            let (outputs, _, passes, stream_passes) = run_mixed_batched(
                &workload,
                &world,
                &sphere_bvh,
                true,
                budget,
                1,
                CoherenceMode::Off,
            );
            assert_mixed_outputs_match(&format!("fused-budget-{budget}"), &expected, &outputs);
            let (seconds, _) = time_best_of(repeats, || {
                run_mixed_batched(
                    &workload,
                    &world,
                    &sphere_bvh,
                    true,
                    budget,
                    1,
                    CoherenceMode::Off,
                )
            });
            FusedBudgetPerf {
                beat_budget_per_stream: budget,
                passes,
                stream_passes,
                seconds,
            }
        })
        .collect();

    let measurement = |mode: &'static str, seconds: f64, lane_occupancy: f64| FusedModePerf {
        mode,
        seconds,
        speedup_vs_scalar: scalar_seconds / seconds,
        lane_occupancy,
    };
    FusedBaseline {
        repeats,
        primary_rays: workload.primary_rays.len() as u64,
        shadow_rays: workload.shadow_rays.len() as u64,
        candidates: workload.candidates.len() as u64,
        radius_queries: workload.radius_queries.len() as u64,
        passes: fused_mix.passes(),
        fused_passes: fused_mix.fused_passes(),
        modes: vec![
            measurement("scalar", scalar_seconds, 0.0),
            measurement("sequential", sequential_seconds, 0.0),
            measurement("fused", fused_seconds, 0.0),
            measurement("simd", simd_seconds, simd_mix.simd_lane_occupancy()),
            measurement(
                "coherent",
                coherent_seconds,
                coherent_mix.simd_lane_occupancy(),
            ),
        ],
        mix: QueryKind::ALL
            .iter()
            .map(|&kind| FusedMixRow {
                kind,
                counts: core::array::from_fn(|i| fused_mix.count_for(kind, Opcode::ALL[i])),
            })
            .collect(),
        budget_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_fused_suite_runs_cross_checked_and_reports_the_mix() {
        let baseline = run_fused_suite(96, 1);
        assert_eq!(baseline.modes.len(), 5);
        assert!(baseline.modes.iter().any(|m| m.mode == "simd"));
        for mode in &baseline.modes {
            assert!(mode.seconds > 0.0 && mode.speedup_vs_scalar > 0.0);
        }
        // Sorted-and-compacted admission can only fill lanes better than unsorted admission.
        let occupancy = |name: &str| {
            baseline
                .modes
                .iter()
                .find(|m| m.mode == name)
                .map_or(0.0, |m| m.lane_occupancy)
        };
        assert!(occupancy("coherent") >= occupancy("simd"));
        assert!(occupancy("simd") > 0.0);
        assert!(baseline.fused_speedup() > 0.0);
        assert!(baseline.fused_passes > 0 && baseline.passes >= baseline.fused_passes);
        // Every query kind of the mixed workload shows up in the fused mix.
        let total_for = |kind: QueryKind| {
            baseline
                .mix
                .iter()
                .find(|row| row.kind == kind)
                .map_or(0, |row| row.counts.iter().sum::<u64>())
        };
        assert!(total_for(QueryKind::ClosestHit) > 0);
        assert!(total_for(QueryKind::AnyHit) > 0);
        assert!(total_for(QueryKind::Distance) > 0);
        assert!(total_for(QueryKind::Collect) > 0);
        let json = baseline.to_json();
        assert!(json.contains("\"mix\"") && json.contains("fused_passes"));
        assert!(json.contains("sequential") && json.contains("fused"));
        assert!(json.contains("\"coherent\"") && json.contains("simd_lane_occupancy"));
        let table = baseline.render_table();
        assert!(table.contains("collect") && table.contains("vs scalar"));

        // The beat-budget fairness sweep: strict round-robin admission must cost passes (the
        // fairness price) while the recorded runs stayed bit-identical (asserted inside the
        // suite before timing).
        assert_eq!(baseline.budget_sweep.len(), 3);
        let unlimited = &baseline.budget_sweep[0];
        let strict = &baseline.budget_sweep[1];
        assert_eq!(unlimited.beat_budget_per_stream, 0);
        assert_eq!(strict.beat_budget_per_stream, 1);
        assert!(
            strict.passes > unlimited.passes,
            "strict round-robin needs more passes ({} vs {})",
            strict.passes,
            unlimited.passes
        );
        for (name, passes) in MIXED_STREAM_NAMES.iter().zip(strict.stream_passes) {
            assert!(passes > 0, "stream {name} contributed no pass");
        }
        assert!(json.contains("budget_sweep") && json.contains("stream_passes"));
        assert!(table.contains("beat budget") && table.contains("unlimited"));
    }

    #[test]
    fn the_query_engine_suite_runs_and_reports_consistent_numbers() {
        let baseline = run_query_engine_suite(64, 1);
        assert_eq!(baseline.modes.len(), 3);
        for mode in &baseline.modes {
            assert!(mode.items > 0 && mode.beats > 0);
            assert!(mode.scalar_seconds > 0.0 && mode.batched_seconds > 0.0);
            assert!(mode.simd_seconds > 0.0);
            assert!(mode.speedup > 0.0 && mode.simd_speedup > 0.0);
        }
        assert!(baseline.min_speedup() > 0.0);
        let json = baseline.to_json();
        assert!(json.contains("\"modes\"") && json.contains("simd_speedup"));
        assert!(json.contains("simd_lane_occupancy"));
        assert!(json.contains("render") && json.contains("shadow") && json.contains("knn"));
        let table = baseline.render_table();
        assert!(table.contains("speedup") && table.contains("shadow"));
    }

    #[test]
    fn the_render_pass_suite_runs_and_reports_consistent_numbers() {
        let baseline = run_render_pass_suite(64, 1);
        assert_eq!(baseline.passes.len(), 3);
        assert_eq!(baseline.width * baseline.height, 64);
        let mut rays = Vec::new();
        for pass in &baseline.passes {
            assert!(pass.pixels > 0 && pass.rays > 0 && pass.beats > 0);
            assert!(pass.scalar_seconds > 0.0 && pass.batched_seconds > 0.0);
            assert!(pass.simd_seconds > 0.0);
            assert!(pass.speedup > 0.0 && pass.simd_speedup > 0.0);
            rays.push(pass.rays);
        }
        // Each configuration adds a pass, so each traces strictly more rays per frame.
        assert!(rays[0] < rays[1] && rays[1] < rays[2]);
        let json = baseline.to_json();
        assert!(json.contains("\"passes\""));
        assert!(json.contains("simd_lane_occupancy"));
        assert!(json.contains("primary") && json.contains("shadowed_ao"));
        let table = baseline.render_table();
        assert!(table.contains("speedup") && table.contains("shadowed"));
    }

    #[test]
    fn the_suite_runs_and_reports_consistent_numbers() {
        let baseline = run_perf_suite(64, 1, 2);
        assert_eq!(baseline.scenes.len(), 3);
        assert!(baseline.datapath.simd_beats_per_sec > 0.0);
        for scene in &baseline.scenes {
            assert_eq!(scene.measurements.len(), 5);
            assert!(scene.beats > 0);
            for m in &scene.measurements {
                assert!(m.seconds > 0.0 && m.rays_per_sec > 0.0 && m.beats_per_sec > 0.0);
            }
            assert!((scene.speedup("scalar") - 1.0).abs() < 1e-9);
            // Sorted-and-compacted admission can only fill lanes better than unsorted.
            let occupancy = |name: &str| {
                scene
                    .measurements
                    .iter()
                    .find(|m| m.mode == name)
                    .map_or(0.0, |m| m.lane_occupancy)
            };
            assert!(occupancy("coherent") >= occupancy("simd"));
            assert!(occupancy("simd") > 0.0);
        }
        assert!(baseline.min_best_speedup() > 0.0);
        let json = baseline.to_json();
        assert!(json.contains("\"scenes\""));
        assert!(json.contains("icosphere"));
        assert!(json.contains("batched") && json.contains("\"simd\""));
        assert!(json.contains("\"coherent\"") && json.contains("simd_lane_occupancy"));
        assert!(json.contains("\"pool\"") && json.contains("\"steals\""));
        let table = baseline.render_table();
        assert!(table.contains("quad_wall") && table.contains("vs scalar"));
        assert!(table.contains("lane occ"));
    }
}
