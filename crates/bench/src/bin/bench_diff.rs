//! Compares the `speedup_vs_scalar` columns of two benchmark JSON documents (a committed
//! baseline and a freshly generated one) and fails when any entry regressed by more than the
//! allowed fraction (default 20%).
//!
//! The BENCH documents are hand-rolled JSON with a fixed key order, so this reads them with a
//! single forward scan instead of a JSON parser (the workspace deliberately has no serde
//! dependency): every `"scene"`/`"mode"` string updates the current label, and every
//! `"speedup_vs_scalar"` number is recorded under it.  That covers `BENCH_baseline.json`
//! (per-scene mode arrays plus the instancing entries) and `BENCH_fused.json` (a flat mode
//! list) alike.
//!
//! Usage: `bench_diff <committed.json> <fresh.json> [--max-regression 0.20]`
//!
//! Speedups are scalar-relative ratios measured on the same host in the same run, so they are
//! stable across machines in a way raw wall times are not — which is what makes a committed
//! copy diffable on CI at all.  Exit status: 0 when every entry holds, 1 on any regression
//! beyond the threshold (or an entry that vanished), 2 on usage errors.

use std::process::ExitCode;

/// One `speedup_vs_scalar` entry: the `"scene"`/`"mode"` labels in effect where it appeared.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    scene: String,
    mode: String,
    speedup: f64,
}

impl Entry {
    fn key(&self) -> String {
        if self.scene.is_empty() {
            self.mode.clone()
        } else if self.mode.is_empty() {
            self.scene.clone()
        } else {
            format!("{}/{}", self.scene, self.mode)
        }
    }
}

/// The quoted string immediately following `content[from..]` (after optional whitespace).
fn quoted_value(content: &str, from: usize) -> Option<&str> {
    let rest = content[from..].trim_start();
    let rest = rest.strip_prefix('"')?;
    rest.split('"').next()
}

/// The number immediately following `content[from..]` (after optional whitespace).
fn numeric_value(content: &str, from: usize) -> Option<f64> {
    let rest = content[from..].trim_start();
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Scans one document for every `speedup_vs_scalar` entry, labelled by the closest preceding
/// `"scene"` and `"mode"` strings.  A `"scene"` resets the mode: the instancing entries carry a
/// scene but no mode, and must not inherit the last traversal mode of the previous scene.
fn extract_entries(content: &str) -> Vec<Entry> {
    #[derive(Clone, Copy, PartialEq)]
    enum Token {
        Scene,
        Mode,
        Speedup,
    }
    let mut events: Vec<(usize, Token, usize)> = Vec::new();
    for (pattern, token) in [
        ("\"scene\":", Token::Scene),
        ("\"mode\":", Token::Mode),
        ("\"speedup_vs_scalar\":", Token::Speedup),
    ] {
        events.extend(
            content
                .match_indices(pattern)
                .map(|(pos, _)| (pos, token, pos + pattern.len())),
        );
    }
    events.sort_by_key(|&(pos, _, _)| pos);

    let mut entries = Vec::new();
    let mut scene = String::new();
    let mut mode = String::new();
    for (_, token, value_from) in events {
        match token {
            Token::Scene => {
                scene = quoted_value(content, value_from).unwrap_or("").to_string();
                mode.clear();
            }
            Token::Mode => {
                mode = quoted_value(content, value_from).unwrap_or("").to_string();
            }
            Token::Speedup => {
                if let Some(speedup) = numeric_value(content, value_from) {
                    entries.push(Entry {
                        scene: scene.clone(),
                        mode: mode.clone(),
                        speedup,
                    });
                }
            }
        }
    }
    entries
}

fn run(committed_path: &str, fresh_path: &str, max_regression: f64) -> Result<(), String> {
    let committed_text = std::fs::read_to_string(committed_path)
        .map_err(|error| format!("cannot read {committed_path}: {error}"))?;
    let fresh_text = std::fs::read_to_string(fresh_path)
        .map_err(|error| format!("cannot read {fresh_path}: {error}"))?;
    let committed = extract_entries(&committed_text);
    let fresh = extract_entries(&fresh_text);
    if committed.is_empty() {
        return Err(format!(
            "{committed_path} contains no speedup_vs_scalar entries"
        ));
    }

    let mut failures = Vec::new();
    for entry in &committed {
        let key = entry.key();
        let Some(now) = fresh.iter().find(|f| f.key() == key) else {
            failures.push(format!(
                "{key}: present in {committed_path} but missing from {fresh_path}"
            ));
            continue;
        };
        let regression = if entry.speedup > 0.0 {
            1.0 - now.speedup / entry.speedup
        } else {
            0.0
        };
        let verdict = if regression > max_regression {
            failures.push(format!(
                "{key}: {:.2}x -> {:.2}x ({:+.1}%)",
                entry.speedup,
                now.speedup,
                -regression * 100.0
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{verdict:>4}  {key:<40} {:.2}x -> {:.2}x ({:+.1}%)",
            entry.speedup,
            now.speedup,
            -regression * 100.0
        );
    }

    if failures.is_empty() {
        println!(
            "bench_diff: {} entries within the {:.0}% regression bound ({committed_path} vs {fresh_path})",
            committed.len(),
            max_regression * 100.0
        );
        Ok(())
    } else {
        Err(format!(
            "bench_diff: {} of {} speedup_vs_scalar entries regressed beyond {:.0}%:\n  {}",
            failures.len(),
            committed.len(),
            max_regression * 100.0,
            failures.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression = 0.20;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--max-regression" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(value) if value > 0.0 => max_regression = value,
                _ => {
                    eprintln!("--max-regression needs a positive number");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(arg.clone());
        }
    }
    let [committed, fresh] = paths.as_slice() else {
        eprintln!("usage: bench_diff <committed.json> <fresh.json> [--max-regression 0.20]");
        return ExitCode::from(2);
    };
    match run(committed, fresh, max_regression) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
  "scenes": [
    {"scene": "icosphere", "pool": {"workers": 2}, "modes": [{"mode": "scalar", "speedup_vs_scalar": 1.00}, {"mode": "simd", "speedup_vs_scalar": 10.00}]},
    {"scene": "soup", "modes": [{"mode": "simd", "speedup_vs_scalar": 15.34}]}
  ],
  "instancing": [
    {"scene": "debris_field", "trace": {"speedup_vs_scalar": 6.50}}
  ]
}"#;

    #[test]
    fn entries_are_labelled_by_scene_and_mode() {
        let entries = extract_entries(BASELINE);
        let keys: Vec<String> = entries.iter().map(Entry::key).collect();
        assert_eq!(
            keys,
            vec![
                "icosphere/scalar",
                "icosphere/simd",
                "soup/simd",
                "debris_field"
            ]
        );
        assert!((entries[2].speedup - 15.34).abs() < 1e-9);
        // The instancing entry must not inherit the previous scene's last mode.
        assert_eq!(entries[3].mode, "");
    }

    #[test]
    fn flat_mode_lists_use_the_mode_as_the_key() {
        let fused = r#"{"modes": [{"mode": "fused", "speedup_vs_scalar": 3.95}]}"#;
        let entries = extract_entries(fused);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key(), "fused");
    }

    #[test]
    fn regressions_beyond_the_bound_are_detected() {
        let fresh = BASELINE.replace("15.34", "11.00");
        let committed = extract_entries(BASELINE);
        let regressed = extract_entries(&fresh);
        let old = &committed[2];
        let new = regressed
            .iter()
            .find(|e| e.key() == old.key())
            .expect("same key");
        assert!(1.0 - new.speedup / old.speedup > 0.20);
    }
}
