//! Regenerates the paper's Fig. 8 (power per operating mode at full throughput, 1 GHz).
fn main() {
    println!("{}", rayflex_bench::fig8_power_table());
}
