//! Runs the §IV-A functional validation: 20 directed cases plus a large random
//! hardware-vs-golden equivalence sweep.
fn main() {
    // The paper verifies with "hundreds of thousands of random test cases"; 20 000 per operation
    // keeps the default `cargo bench` run quick while staying statistically meaningful.  Set
    // RAYFLEX_VALIDATION_CASES to raise it.
    let cases = std::env::var("RAYFLEX_VALIDATION_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    println!("{}", rayflex_bench::validation_report(cases));
}
