//! Regenerates the §VII-B squarer-specialisation ablation.
fn main() {
    println!("{}", rayflex_bench::ablation_squarer_table());
}
