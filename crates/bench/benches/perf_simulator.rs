//! Criterion performance benchmarks of the simulator itself: softfloat arithmetic throughput,
//! functional and cycle-accurate datapath beat rates, and BVH traversal.  These are not paper
//! claims — they tell library users how fast the Rust model runs on their machine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use rayflex_core::{PipelineConfig, RayFlexDatapath, RayFlexPipeline};
use rayflex_geometry::{Ray, Vec3};
use rayflex_rtunit::{Bvh4, TraversalEngine};
use rayflex_softfloat::RecF32;
use rayflex_workloads::scenes;

fn bench_softfloat(c: &mut Criterion) {
    let mut group = c.benchmark_group("softfloat");
    let values: Vec<(RecF32, RecF32)> = (0..1024)
        .map(|i| {
            let a = RecF32::from_f32((i as f32 * 0.37).sin() * 1e3);
            let b = RecF32::from_f32((i as f32 * 0.11).cos() * 1e-2);
            (a, b)
        })
        .collect();
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("add", |bencher| {
        bencher.iter(|| {
            values
                .iter()
                .fold(RecF32::ZERO, |acc, (a, b)| acc.add(a.add(*b)))
        })
    });
    group.bench_function("mul", |bencher| {
        bencher.iter(|| {
            values
                .iter()
                .fold(RecF32::ONE, |acc, (a, b)| acc.add(a.mul(*b)))
        })
    });
    group.finish();
}

fn bench_datapath(c: &mut Criterion) {
    let mut group = c.benchmark_group("datapath");
    let requests = rayflex_bench::random_ray_box_requests(256, 11);
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function("functional_ray_box_beats", |bencher| {
        bencher.iter_batched(
            || RayFlexDatapath::new(PipelineConfig::baseline_unified()),
            |mut datapath| datapath.execute_batch(&requests),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("cycle_accurate_ray_box_beats", |bencher| {
        bencher.iter_batched(
            || RayFlexPipeline::new(PipelineConfig::baseline_unified()),
            |mut pipeline| pipeline.execute_batch(&requests),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal");
    let triangles = scenes::icosphere(3, 5.0, Vec3::new(0.0, 0.0, 20.0));
    let bvh = Bvh4::build(&triangles);
    let rays: Vec<Ray> = (0..64)
        .map(|i| {
            let x = (i % 8) as f32 - 3.5;
            let y = (i / 8) as f32 - 3.5;
            Ray::new(Vec3::new(x, y, 0.0), Vec3::new(0.0, 0.0, 1.0))
        })
        .collect();
    group.throughput(Throughput::Elements(rays.len() as u64));
    group.bench_function("icosphere_closest_hit", |bencher| {
        bencher.iter_batched(
            TraversalEngine::baseline,
            |mut engine| engine.closest_hits(&bvh, &triangles, &rays),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Modest sample counts keep `cargo bench --workspace` quick while staying statistically
    // useful; raise them for publication-quality numbers.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_softfloat, bench_datapath, bench_traversal
}
criterion_main!(benches);
