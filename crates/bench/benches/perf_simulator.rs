//! Simulator performance benchmarks: criterion-style micro-benchmarks of the softfloat core and
//! the datapath models, plus the scene-level baseline suite comparing the scalar, batched and
//! parallel traversal paths, the query-engine suite comparing every retrofitted query kind
//! (render, shadow, knn) against its scalar drive loop, and the render-pass suite comparing the
//! deferred renderer's pass configurations (primary, shadowed, shadowed+AO) against the scalar
//! multi-pass reference.  The baselines are written as machine-readable JSON to
//! `RAYFLEX_BENCH_JSON` (default `BENCH_baseline.json`), `RAYFLEX_BENCH_QUERY_JSON` (default
//! `BENCH_query_engine.json`) and `RAYFLEX_BENCH_RENDER_JSON` (default
//! `BENCH_render_passes.json`) at the workspace root.
//!
//! These are not paper claims — they tell library users and future scaling PRs how fast the Rust
//! model runs on their machine.  Tunables: `RAYFLEX_BENCH_RAYS` (rays per scene, default 4096),
//! `RAYFLEX_BENCH_REPEATS` (best-of count, default 3), `RAYFLEX_BENCH_THREADS` (parallel worker
//! count, default = available parallelism but at least 2, so the parallel mode exercises the
//! work-stealing pool — and records real pool counters — even on a single-core host).  Setting
//! `RAYFLEX_BENCH_MIN_SPEEDUP` (CI: 3.0) turns
//! the run into an acceptance gate that fails when the worst batched-vs-scalar speedup across
//! both suites drops below the floor.

use criterion::{criterion_group, BatchSize, Criterion, Throughput};

use rayflex_core::{PipelineConfig, RayFlexDatapath, RayFlexPipeline};
use rayflex_geometry::{Ray, Vec3};
use rayflex_rtunit::{default_parallelism, ExecPolicy, Scene, TraceRequest, TraversalEngine};
use rayflex_softfloat::RecF32;
use rayflex_workloads::scenes;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bench_softfloat(c: &mut Criterion) {
    let mut group = c.benchmark_group("softfloat");
    let values: Vec<(RecF32, RecF32)> = (0..1024)
        .map(|i| {
            let a = RecF32::from_f32((i as f32 * 0.37).sin() * 1e3);
            let b = RecF32::from_f32((i as f32 * 0.11).cos() * 1e-2);
            (a, b)
        })
        .collect();
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("add", |bencher| {
        bencher.iter(|| {
            values
                .iter()
                .fold(RecF32::ZERO, |acc, (a, b)| acc.add(a.add(*b)))
        })
    });
    group.bench_function("mul", |bencher| {
        bencher.iter(|| {
            values
                .iter()
                .fold(RecF32::ONE, |acc, (a, b)| acc.add(a.mul(*b)))
        })
    });
    group.finish();
}

fn bench_datapath(c: &mut Criterion) {
    let mut group = c.benchmark_group("datapath");
    let requests = rayflex_bench::random_ray_box_requests(256, 11);
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function("emulated_ray_box_beats", |bencher| {
        bencher.iter_batched(
            || RayFlexDatapath::new(PipelineConfig::baseline_unified()),
            |mut datapath| datapath.execute_batch_emulated(&requests),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("batched_ray_box_beats", |bencher| {
        bencher.iter_batched(
            || RayFlexDatapath::new(PipelineConfig::baseline_unified()),
            |mut datapath| datapath.execute_batch(&requests),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("cycle_accurate_ray_box_beats", |bencher| {
        bencher.iter_batched(
            || RayFlexPipeline::new(PipelineConfig::baseline_unified()),
            |mut pipeline| pipeline.execute_batch(&requests),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal");
    let world = Scene::flat(scenes::icosphere(3, 5.0, Vec3::new(0.0, 0.0, 20.0)));
    let rays: Vec<Ray> = (0..64)
        .map(|i| {
            let x = (i % 8) as f32 - 3.5;
            let y = (i / 8) as f32 - 3.5;
            Ray::new(Vec3::new(x, y, 0.0), Vec3::new(0.0, 0.0, 1.0))
        })
        .collect();
    group.throughput(Throughput::Elements(rays.len() as u64));
    group.bench_function("icosphere_closest_hit_scalar", |bencher| {
        bencher.iter_batched(
            TraversalEngine::baseline,
            |mut engine| {
                engine.trace(
                    &TraceRequest::closest_hit(&world, &rays),
                    &ExecPolicy::scalar(),
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("icosphere_closest_hit_wavefront", |bencher| {
        bencher.iter_batched(
            TraversalEngine::baseline,
            |mut engine| {
                engine.trace(
                    &TraceRequest::closest_hit(&world, &rays),
                    &ExecPolicy::wavefront(),
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn run_baseline_suite() {
    let rays = env_usize("RAYFLEX_BENCH_RAYS", 4096);
    let repeats = env_usize("RAYFLEX_BENCH_REPEATS", 3);
    // At least two workers: a requested width of 1 would fall back to the inline batched path
    // and leave the recorded pool counters all zero.
    let threads = env_usize("RAYFLEX_BENCH_THREADS", default_parallelism().max(2));
    let baseline = rayflex_bench::perf::run_perf_suite(rays, repeats, threads);
    println!("{}", baseline.render_table());
    let path =
        // Benches run with the package directory as cwd, so the default resolves the
        // workspace root explicitly; `RAYFLEX_BENCH_JSON` overrides it.
        std::env::var("RAYFLEX_BENCH_JSON").unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json").to_string()
        });
    match std::fs::write(&path, baseline.to_json()) {
        Ok(()) => println!("baseline written to {path}"),
        Err(error) => eprintln!("could not write {path}: {error}"),
    }

    let query = rayflex_bench::perf::run_query_engine_suite(rays, repeats);
    println!("{}", query.render_table());
    let query_path = std::env::var("RAYFLEX_BENCH_QUERY_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query_engine.json").to_string()
    });
    match std::fs::write(&query_path, query.to_json()) {
        Ok(()) => println!("query-engine baseline written to {query_path}"),
        Err(error) => eprintln!("could not write {query_path}: {error}"),
    }

    let render = rayflex_bench::perf::run_render_pass_suite(rays, repeats);
    println!("{}", render.render_table());
    let render_path = std::env::var("RAYFLEX_BENCH_RENDER_JSON").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_render_passes.json"
        )
        .to_string()
    });
    match std::fs::write(&render_path, render.to_json()) {
        Ok(()) => println!("render-pass baseline written to {render_path}"),
        Err(error) => eprintln!("could not write {render_path}: {error}"),
    }

    let fused = rayflex_bench::perf::run_fused_suite(rays, repeats);
    println!("{}", fused.render_table());
    let fused_path = std::env::var("RAYFLEX_BENCH_FUSED_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fused.json").to_string()
    });
    match std::fs::write(&fused_path, fused.to_json()) {
        Ok(()) => println!("fused baseline written to {fused_path}"),
        Err(error) => eprintln!("could not write {fused_path}: {error}"),
    }

    // The CI acceptance gate: with `RAYFLEX_BENCH_MIN_SPEEDUP` set (CI uses the 3x floor), a
    // batched-vs-scalar (or fused-vs-scalar) regression below the floor in any suite fails the
    // run.
    if let Ok(floor) = std::env::var("RAYFLEX_BENCH_MIN_SPEEDUP") {
        let floor: f64 = floor
            .parse()
            .expect("RAYFLEX_BENCH_MIN_SPEEDUP is a number");
        let worst = baseline
            .min_best_speedup()
            .min(query.min_speedup())
            .min(render.min_speedup())
            .min(fused.fused_speedup());
        if worst < floor {
            eprintln!(
                "FAIL: batched-vs-scalar speedup {worst:.2}x fell below the {floor:.1}x floor \
                 (baseline {:.2}x, query engine {:.2}x, render passes {:.2}x, fused {:.2}x)",
                baseline.min_best_speedup(),
                query.min_speedup(),
                render.min_speedup(),
                fused.fused_speedup()
            );
            std::process::exit(1);
        }
        println!("speedup gate passed: worst batched-vs-scalar {worst:.2}x >= {floor:.1}x floor");
    }
}

criterion_group! {
    name = benches;
    // Modest sample counts keep `cargo bench --workspace` quick while staying statistically
    // useful; raise them for publication-quality numbers.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_softfloat, bench_datapath, bench_traversal
}

// Not `criterion_main!`: the baseline suite runs after the criterion groups.
fn main() {
    benches();
    run_baseline_suite();
}
