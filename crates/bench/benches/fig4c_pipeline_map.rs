//! Regenerates the paper's Fig. 4c stage map plus the §IV-B throughput accounting.
fn main() {
    println!("{}", rayflex_bench::fig4c_pipeline_report());
}
