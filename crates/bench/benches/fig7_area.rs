//! Regenerates the paper's Fig. 7 (circuit area vs target clock frequency).
fn main() {
    println!("{}", rayflex_bench::fig7_area_table());
}
