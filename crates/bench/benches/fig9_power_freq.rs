//! Regenerates the paper's Fig. 9 (ray-triangle power vs target clock frequency).
fn main() {
    println!("{}", rayflex_bench::fig9_power_frequency_table());
}
