//! Procedural triangle scenes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayflex_geometry::{sampling, Aabb, Affine, Sphere, Triangle, Vec3};

/// A soup of `count` random triangles inside a ±`extent` cube — the unstructured stimulus used by
/// the random testbenches.
#[must_use]
pub fn random_triangle_soup(seed: u64, count: usize, extent: f32) -> Vec<Triangle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds = Aabb::new(Vec3::splat(-extent), Vec3::splat(extent));
    (0..count)
        .map(|_| sampling::triangle_in_box(&mut rng, &bounds))
        .collect()
}

/// A triangulated sphere produced by subdividing an icosahedron `subdivisions` times — the
/// repository's stand-in for the paper's bunny mesh (a closed, smooth, many-triangle surface).
///
/// Subdivision 0 gives 20 triangles; each level quadruples the count (level 3 ≈ 1280 triangles).
#[must_use]
pub fn icosphere(subdivisions: u32, radius: f32, center: Vec3) -> Vec<Triangle> {
    // Icosahedron vertices from the three orthogonal golden rectangles.
    let phi = (1.0 + 5.0f32.sqrt()) / 2.0;
    let base = [
        Vec3::new(-1.0, phi, 0.0),
        Vec3::new(1.0, phi, 0.0),
        Vec3::new(-1.0, -phi, 0.0),
        Vec3::new(1.0, -phi, 0.0),
        Vec3::new(0.0, -1.0, phi),
        Vec3::new(0.0, 1.0, phi),
        Vec3::new(0.0, -1.0, -phi),
        Vec3::new(0.0, 1.0, -phi),
        Vec3::new(phi, 0.0, -1.0),
        Vec3::new(phi, 0.0, 1.0),
        Vec3::new(-phi, 0.0, -1.0),
        Vec3::new(-phi, 0.0, 1.0),
    ];
    let faces: [[usize; 3]; 20] = [
        [0, 11, 5],
        [0, 5, 1],
        [0, 1, 7],
        [0, 7, 10],
        [0, 10, 11],
        [1, 5, 9],
        [5, 11, 4],
        [11, 10, 2],
        [10, 7, 6],
        [7, 1, 8],
        [3, 9, 4],
        [3, 4, 2],
        [3, 2, 6],
        [3, 6, 8],
        [3, 8, 9],
        [4, 9, 5],
        [2, 4, 11],
        [6, 2, 10],
        [8, 6, 7],
        [9, 8, 1],
    ];
    let project = |v: Vec3| center + v.normalized() * radius;
    let mut triangles: Vec<Triangle> = faces
        .iter()
        .map(|f| {
            Triangle::new(
                project(base[f[0]]),
                project(base[f[1]]),
                project(base[f[2]]),
            )
        })
        .collect();
    for _ in 0..subdivisions {
        let mut next = Vec::with_capacity(triangles.len() * 4);
        for tri in &triangles {
            let m01 = project((tri.v0 + tri.v1) * 0.5 - center);
            let m12 = project((tri.v1 + tri.v2) * 0.5 - center);
            let m20 = project((tri.v2 + tri.v0) * 0.5 - center);
            next.push(Triangle::new(tri.v0, m01, m20));
            next.push(Triangle::new(tri.v1, m12, m01));
            next.push(Triangle::new(tri.v2, m20, m12));
            next.push(Triangle::new(m01, m12, m20));
        }
        triangles = next;
    }
    triangles
}

/// A regular `n`×`n` grid of upright quads (two triangles each) in the z = `depth` plane — a
/// simple "wall" scene with predictable coverage.
#[must_use]
pub fn quad_wall(n: usize, spacing: f32, depth: f32) -> Vec<Triangle> {
    let mut triangles = Vec::with_capacity(n * n * 2);
    let offset = (n as f32 - 1.0) * spacing * 0.5;
    for row in 0..n {
        for col in 0..n {
            let x = col as f32 * spacing - offset;
            let y = row as f32 * spacing - offset;
            let half = spacing * 0.45;
            let (a, b, c, d) = (
                Vec3::new(x - half, y - half, depth),
                Vec3::new(x + half, y - half, depth),
                Vec3::new(x + half, y + half, depth),
                Vec3::new(x - half, y + half, depth),
            );
            triangles.push(Triangle::new(a, b, c));
            triangles.push(Triangle::new(a, c, d));
        }
    }
    triangles
}

/// A cloud of `count` random tiny spheres inside a ±`extent` cube — the sphere-per-data-point
/// representation the hierarchical-search accelerators use (§V-A).
#[must_use]
pub fn sphere_cloud(seed: u64, count: usize, extent: f32, max_radius: f32) -> Vec<Sphere> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds = Aabb::new(Vec3::splat(-extent), Vec3::splat(extent));
    (0..count)
        .map(|_| sampling::sphere_in_box(&mut rng, &bounds, max_radius))
        .collect()
}

/// A soft-shadow test scene: a horizontal floor at `y = 0` spanning ±`extent` in x/z with an
/// icosphere occluder of radius `extent / 6` floating above its centre.  Pairs with
/// [`crate::rays::floor_shadow_rays`]: shadow rays cast from the floor toward a light above the
/// occluder are blocked under the sphere and unobstructed elsewhere, giving an any-hit workload
/// with a realistic mix of occluded and open rays.
#[must_use]
pub fn soft_shadow(subdivisions: u32, extent: f32) -> Vec<Triangle> {
    let e = extent;
    let mut triangles = vec![
        Triangle::new(
            Vec3::new(-e, 0.0, -e),
            Vec3::new(e, 0.0, -e),
            Vec3::new(e, 0.0, e),
        ),
        Triangle::new(
            Vec3::new(-e, 0.0, -e),
            Vec3::new(e, 0.0, e),
            Vec3::new(-e, 0.0, e),
        ),
    ];
    triangles.extend(icosphere(
        subdivisions,
        extent / 6.0,
        Vec3::new(0.0, extent / 2.0, 0.0),
    ));
    triangles
}

/// A scene preset for the multi-pass deferred renderer: geometry plus the point light and the
/// suggested camera placement that frame a shadowed, partially-occluded view.
#[derive(Debug, Clone, PartialEq)]
pub struct LitScene {
    /// Scene geometry: a floor, a floating occluder sphere and a small grounded sphere.
    pub triangles: Vec<Triangle>,
    /// Point-light position (above and beside the occluder, so shadows fall across the floor).
    pub light: Vec3,
    /// Suggested camera position.
    pub eye: Vec3,
    /// Suggested camera look-at target.
    pub target: Vec3,
}

/// The standard lit scene of the deferred-render passes: the [`soft_shadow`] floor-and-occluder
/// geometry plus a small sphere resting near the floor (a strong ambient-occlusion contact), a
/// point light offset from the vertical so the occluder's shadow lands visibly on the floor, and
/// a camera framing all of it.  Pairs with the renderer's shadow and ambient-occlusion passes:
/// primary hits on the floor mix lit, shadowed and AO-darkened pixels.
#[must_use]
pub fn lit_scene(subdivisions: u32, extent: f32) -> LitScene {
    let mut triangles = soft_shadow(subdivisions, extent);
    // A small sphere touching down near the floor: its underside occludes nearby hemisphere
    // probes, giving the ambient-occlusion pass visible contact darkening.
    let small_radius = extent / 10.0;
    triangles.extend(icosphere(
        subdivisions,
        small_radius,
        Vec3::new(extent / 4.0, small_radius * 1.05, -extent / 8.0),
    ));
    LitScene {
        triangles,
        light: Vec3::new(extent / 3.0, extent, -extent / 4.0),
        eye: Vec3::new(0.0, extent * 0.55, -extent * 1.1),
        target: Vec3::new(0.0, extent * 0.2, 0.0),
    }
}

/// A geometry-level description of an instanced scene: a set of shared meshes plus placements
/// pairing a mesh index with a world transform.
///
/// The workloads crate sits below the acceleration layer, so presets describe instancing in
/// plain geometry terms; consumers lift the description into `rtunit`'s two-level `Scene` (one
/// BLAS per mesh, one instance per placement) or bake it flat with [`InstancedSceneDesc::flatten`].
#[derive(Debug, Clone)]
pub struct InstancedSceneDesc {
    /// The shared meshes — each becomes one bottom-level structure.
    pub meshes: Vec<Vec<Triangle>>,
    /// Placements: `(mesh index, object-to-world transform)`, one per instance.
    pub placements: Vec<(usize, Affine)>,
}

impl InstancedSceneDesc {
    /// Bakes every placement into one flat triangle list, in placement order — the flattened
    /// reference an instanced trace must match bit-for-bit.
    #[must_use]
    pub fn flatten(&self) -> Vec<Triangle> {
        self.placements
            .iter()
            .flat_map(|(mesh, transform)| {
                self.meshes[*mesh]
                    .iter()
                    .map(|tri| tri.transformed(transform))
            })
            .collect()
    }

    /// Total triangles the scene places in the world (the flattened count).
    #[must_use]
    pub fn placed_triangle_count(&self) -> usize {
        self.placements
            .iter()
            .map(|(mesh, _)| self.meshes[*mesh].len())
            .sum()
    }
}

/// A debris field: `kinds` distinct random shard meshes scattered as `count` instances with
/// random rotations, uniform scales in `[0.6, 1.4]`, and translations inside a ±`extent` cube.
/// The instancing stress preset — many placements of few meshes, where a two-level scene's
/// memory advantage over baking is largest.
#[must_use]
pub fn debris_field(seed: u64, kinds: usize, count: usize, extent: f32) -> InstancedSceneDesc {
    let mut rng = StdRng::seed_from_u64(seed);
    let shard_bounds = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
    let meshes: Vec<Vec<Triangle>> = (0..kinds.max(1))
        .map(|_| {
            (0..12)
                .map(|_| sampling::triangle_in_box(&mut rng, &shard_bounds))
                .collect()
        })
        .collect();
    let placements = (0..count)
        .map(|_| {
            let mesh = rng.gen_range(0..meshes.len());
            let spin = Affine::rotate_y(rng.gen_range(0.0..core::f32::consts::TAU)).then(
                &Affine::rotate_x(rng.gen_range(0.0..core::f32::consts::TAU)),
            );
            let sized = Affine::uniform_scale(rng.gen_range(0.6..1.4)).then(&spin);
            let offset = Vec3::new(
                rng.gen_range(-extent..extent),
                rng.gen_range(-extent..extent),
                rng.gen_range(-extent..extent),
            );
            (mesh, Affine::translation(offset).then(&sized))
        })
        .collect();
    InstancedSceneDesc { meshes, placements }
}

/// A crowd of identical icospheres on an `n × n` ground grid spaced `spacing` apart — one mesh,
/// `n²` pure-translation placements.  The structured counterpart to [`debris_field`]: TLAS
/// traversal over a regular layout, and the refit benchmark's moving-scene stand-in.
#[must_use]
pub fn icosphere_crowd(subdivisions: u32, n: usize, spacing: f32) -> InstancedSceneDesc {
    let mesh = icosphere(subdivisions, spacing * 0.35, Vec3::ZERO);
    let half = (n.saturating_sub(1)) as f32 * spacing / 2.0;
    let placements = (0..n * n)
        .map(|i| {
            let (row, col) = (i / n, i % n);
            let offset = Vec3::new(
                col as f32 * spacing - half,
                0.0,
                row as f32 * spacing - half,
            );
            (0, Affine::translation(offset))
        })
        .collect();
    InstancedSceneDesc {
        meshes: vec![mesh],
        placements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debris_field_is_deterministic_and_covers_every_mesh_kind() {
        let a = debris_field(11, 3, 64, 30.0);
        let b = debris_field(11, 3, 64, 30.0);
        assert_eq!(a.meshes.len(), 3);
        assert_eq!(a.placements.len(), 64);
        assert_eq!(a.flatten(), b.flatten());
        assert_eq!(a.flatten().len(), a.placed_triangle_count());
        for (mesh, transform) in &a.placements {
            assert!(*mesh < a.meshes.len());
            assert!(transform.is_finite());
            assert!(transform.determinant().abs() > f32::EPSILON);
        }
    }

    #[test]
    fn icosphere_crowd_places_a_square_grid_of_one_mesh() {
        let crowd = icosphere_crowd(1, 4, 6.0);
        assert_eq!(crowd.meshes.len(), 1);
        assert_eq!(crowd.placements.len(), 16);
        assert_eq!(crowd.placed_triangle_count(), 16 * 80);
        // Pure translations: flattening shifts vertices without deforming the mesh.
        let flat = crowd.flatten();
        let (mesh_idx, transform) = &crowd.placements[5];
        let baked = crowd.meshes[*mesh_idx][0].transformed(transform);
        assert_eq!(flat[5 * 80], baked);
    }

    #[test]
    fn triangle_soup_is_deterministic_and_sized() {
        let a = random_triangle_soup(7, 100, 50.0);
        let b = random_triangle_soup(7, 100, 50.0);
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
        assert_ne!(a, random_triangle_soup(8, 100, 50.0));
    }

    #[test]
    fn icosphere_subdivision_quadruples_triangle_count() {
        assert_eq!(icosphere(0, 1.0, Vec3::ZERO).len(), 20);
        assert_eq!(icosphere(1, 1.0, Vec3::ZERO).len(), 80);
        assert_eq!(icosphere(2, 1.0, Vec3::ZERO).len(), 320);
    }

    #[test]
    fn icosphere_vertices_lie_on_the_sphere() {
        let center = Vec3::new(1.0, 2.0, 3.0);
        for tri in icosphere(2, 2.5, center) {
            for v in [tri.v0, tri.v1, tri.v2] {
                assert!(((v - center).length() - 2.5).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn quad_wall_has_the_expected_count_and_plane() {
        let wall = quad_wall(8, 2.0, 12.0);
        assert_eq!(wall.len(), 8 * 8 * 2);
        assert!(wall
            .iter()
            .all(|t| t.v0.z == 12.0 && t.v1.z == 12.0 && t.v2.z == 12.0));
    }

    #[test]
    fn soft_shadow_scene_has_a_floor_and_an_occluder() {
        let scene = soft_shadow(1, 12.0);
        assert_eq!(scene.len(), 2 + 80, "two floor triangles plus the occluder");
        // The floor is at y = 0 and the occluder floats strictly above it.
        for tri in &scene[..2] {
            assert!(tri.v0.y == 0.0 && tri.v1.y == 0.0 && tri.v2.y == 0.0);
        }
        for tri in &scene[2..] {
            for v in [tri.v0, tri.v1, tri.v2] {
                assert!(v.y >= 12.0 / 2.0 - 12.0 / 6.0 - 1e-3);
            }
        }
    }

    #[test]
    fn lit_scene_extends_soft_shadow_with_a_grounded_sphere_and_a_side_light() {
        let scene = lit_scene(1, 24.0);
        let base = soft_shadow(1, 24.0);
        assert_eq!(scene.triangles[..base.len()], base[..]);
        assert!(
            scene.triangles.len() > base.len(),
            "the AO contact sphere is present"
        );
        // The light sits above the geometry and off the vertical axis.
        assert!(scene.light.y >= 24.0);
        assert!(scene.light.x != 0.0 && scene.light.z != 0.0);
        // The camera looks at the scene from outside it.
        assert!(scene.eye.z < -24.0);
        assert_ne!(scene.eye, scene.target);
    }

    #[test]
    fn sphere_cloud_respects_its_bounds() {
        let cloud = sphere_cloud(3, 200, 30.0, 0.5);
        assert_eq!(cloud.len(), 200);
        for s in &cloud {
            assert!(s.radius > 0.0 && s.radius <= 0.5);
            assert!(s.center.x.abs() <= 30.0);
        }
    }
}
