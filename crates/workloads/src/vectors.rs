//! Vector datasets for the hierarchical-search / k-nearest-neighbour case study (§V-A).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A clustered vector dataset together with its ground-truth cluster assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredDataset {
    /// The dataset vectors.
    pub vectors: Vec<Vec<f32>>,
    /// The cluster centres the vectors were drawn around.
    pub centers: Vec<Vec<f32>>,
    /// For each vector, the index of the cluster it was drawn from.
    pub assignments: Vec<usize>,
}

impl ClusteredDataset {
    /// Dimensionality of the vectors.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.vectors.first().map_or(0, Vec::len)
    }

    /// Number of vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` if the dataset holds no vectors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

/// Generates a dataset of `count` vectors of the given `dimension`, drawn from `clusters`
/// Gaussian-ish blobs (uniform jitter of width `spread` around uniformly placed centres).
///
/// # Panics
///
/// Panics if `clusters` is zero while `count` is non-zero.
#[must_use]
pub fn clustered_dataset(
    seed: u64,
    count: usize,
    dimension: usize,
    clusters: usize,
    spread: f32,
) -> ClusteredDataset {
    assert!(clusters > 0 || count == 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| {
            (0..dimension)
                .map(|_| rng.gen_range(-100.0f32..100.0))
                .collect()
        })
        .collect();
    let mut vectors = Vec::with_capacity(count);
    let mut assignments = Vec::with_capacity(count);
    for _ in 0..count {
        let cluster = rng.gen_range(0..clusters);
        let vector = centers[cluster]
            .iter()
            .map(|c| c + rng.gen_range(-spread..=spread))
            .collect();
        vectors.push(vector);
        assignments.push(cluster);
    }
    ClusteredDataset {
        vectors,
        centers,
        assignments,
    }
}

/// Draws `count` query vectors near randomly chosen dataset points (so every query has a
/// meaningful nearest neighbour).
#[must_use]
pub fn queries_near_dataset(
    seed: u64,
    dataset: &ClusteredDataset,
    count: usize,
    jitter: f32,
) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            if dataset.is_empty() {
                return Vec::new();
            }
            let anchor = &dataset.vectors[rng.gen_range(0..dataset.len())];
            anchor
                .iter()
                .map(|x| x + rng.gen_range(-jitter..=jitter))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_the_requested_shape() {
        let d = clustered_dataset(1, 200, 24, 5, 3.0);
        assert_eq!(d.len(), 200);
        assert_eq!(d.dimension(), 24);
        assert_eq!(d.centers.len(), 5);
        assert_eq!(d.assignments.len(), 200);
        assert!(!d.is_empty());
        assert!(d.assignments.iter().all(|&a| a < 5));
    }

    #[test]
    fn vectors_stay_near_their_cluster_centres() {
        let d = clustered_dataset(2, 100, 8, 3, 2.0);
        for (v, &a) in d.vectors.iter().zip(&d.assignments) {
            for (x, c) in v.iter().zip(&d.centers[a]) {
                assert!((x - c).abs() <= 2.0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            clustered_dataset(9, 50, 4, 2, 1.0),
            clustered_dataset(9, 50, 4, 2, 1.0)
        );
        let d = clustered_dataset(9, 50, 4, 2, 1.0);
        assert_eq!(
            queries_near_dataset(3, &d, 10, 0.5),
            queries_near_dataset(3, &d, 10, 0.5)
        );
    }

    #[test]
    fn queries_have_the_dataset_dimension() {
        let d = clustered_dataset(4, 30, 12, 3, 1.0);
        let q = queries_near_dataset(5, &d, 7, 0.1);
        assert_eq!(q.len(), 7);
        assert!(q.iter().all(|v| v.len() == 12));
    }

    #[test]
    fn empty_dataset_is_handled() {
        let d = clustered_dataset(1, 0, 8, 1, 1.0);
        assert!(d.is_empty());
        assert_eq!(d.dimension(), 0);
        let q = queries_near_dataset(1, &d, 3, 0.1);
        assert!(q.iter().all(Vec::is_empty));
    }
}
