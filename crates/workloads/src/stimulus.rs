//! Random datapath stimulus: the Rust equivalent of the paper's random chiseltest benches
//! ("hundreds of thousands of random test cases" in §VI) and of the 100-case VCD power stimulus.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayflex_geometry::{sampling, Aabb, Ray, Triangle};

/// One random ray–box stimulus: a ray plus four candidate boxes.
#[derive(Debug, Clone, PartialEq)]
pub struct RayBoxStimulus {
    /// The ray under test.
    pub ray: Ray,
    /// The four candidate boxes.
    pub boxes: [Aabb; 4],
}

/// One random ray–triangle stimulus.
#[derive(Debug, Clone, PartialEq)]
pub struct RayTriangleStimulus {
    /// The ray under test.
    pub ray: Ray,
    /// The triangle under test.
    pub triangle: Triangle,
}

/// One random distance-operation stimulus (shared by the Euclidean and cosine operations).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceStimulus {
    /// Query vector lanes.
    pub a: [f32; 16],
    /// Candidate vector lanes.
    pub b: [f32; 16],
    /// Lane-validity mask.
    pub mask: u16,
    /// Whether this beat ends a vector pair.
    pub reset: bool,
}

/// Generates `count` random ray–box stimuli.  Roughly half the boxes are deliberately placed
/// around the ray origin so both hits and misses are well represented.
#[must_use]
pub fn ray_box_stimuli(seed: u64, count: usize) -> Vec<RayBoxStimulus> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds = sampling::default_bounds();
    (0..count)
        .map(|_| {
            let ray = sampling::ray_in_box(&mut rng, &bounds);
            let boxes = core::array::from_fn(|_| {
                if rng.gen_bool(0.5) {
                    // A box centred near a point along the ray: a likely hit.
                    let t = rng.gen_range(1.0f32..50.0);
                    let half = rng.gen_range(0.5f32..10.0);
                    let center = ray.at(t);
                    Aabb::new(
                        center - rayflex_geometry::Vec3::splat(half),
                        center + rayflex_geometry::Vec3::splat(half),
                    )
                } else {
                    sampling::aabb_in_box(&mut rng, &bounds)
                }
            });
            RayBoxStimulus { ray, boxes }
        })
        .collect()
}

/// Generates `count` random ray–triangle stimuli (again biased so that a healthy fraction hit).
#[must_use]
pub fn ray_triangle_stimuli(seed: u64, count: usize) -> Vec<RayTriangleStimulus> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds = sampling::default_bounds();
    (0..count)
        .map(|_| {
            let ray = sampling::ray_in_box(&mut rng, &bounds);
            let triangle = if rng.gen_bool(0.5) {
                // A triangle straddling a point along the ray.
                let center = ray.at(rng.gen_range(1.0f32..50.0));
                let local = Aabb::new(
                    center - rayflex_geometry::Vec3::splat(8.0),
                    center + rayflex_geometry::Vec3::splat(8.0),
                );
                sampling::triangle_in_box(&mut rng, &local)
            } else {
                sampling::triangle_in_box(&mut rng, &bounds)
            };
            RayTriangleStimulus { ray, triangle }
        })
        .collect()
}

/// Generates `count` random distance-operation stimuli with occasional masked lanes and a
/// reset on roughly every fourth beat.
#[must_use]
pub fn distance_stimuli(seed: u64, count: usize) -> Vec<DistanceStimulus> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let a = core::array::from_fn(|_| rng.gen_range(-100.0f32..100.0));
            let b = core::array::from_fn(|_| rng.gen_range(-100.0f32..100.0));
            let mask = if rng.gen_bool(0.8) {
                u16::MAX
            } else {
                rng.gen::<u16>()
            };
            DistanceStimulus {
                a,
                b,
                mask,
                reset: i % 4 == 3,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::golden;

    #[test]
    fn stimuli_are_deterministic_per_seed() {
        assert_eq!(ray_box_stimuli(1, 10), ray_box_stimuli(1, 10));
        assert_eq!(ray_triangle_stimuli(2, 10), ray_triangle_stimuli(2, 10));
        assert_eq!(distance_stimuli(3, 10), distance_stimuli(3, 10));
        assert_ne!(ray_box_stimuli(1, 10), ray_box_stimuli(2, 10));
    }

    #[test]
    fn ray_box_stimuli_contain_both_hits_and_misses() {
        let stimuli = ray_box_stimuli(42, 200);
        let mut hits = 0usize;
        let mut total = 0usize;
        for s in &stimuli {
            for b in &s.boxes {
                total += 1;
                if golden::slab::ray_box(&s.ray, b).hit {
                    hits += 1;
                }
            }
        }
        let ratio = hits as f64 / total as f64;
        assert!(ratio > 0.15 && ratio < 0.9, "hit ratio {ratio:.2}");
    }

    #[test]
    fn ray_triangle_stimuli_contain_hits() {
        let stimuli = ray_triangle_stimuli(42, 400);
        let hits = stimuli
            .iter()
            .filter(|s| golden::watertight::ray_triangle(&s.ray, &s.triangle).hit)
            .count();
        assert!(hits > 10, "only {hits} hits in 400 cases");
        assert!(hits < 390);
    }

    #[test]
    fn distance_stimuli_reset_every_fourth_beat() {
        let stimuli = distance_stimuli(7, 16);
        let resets: Vec<bool> = stimuli.iter().map(|s| s.reset).collect();
        assert_eq!(resets.iter().filter(|&&r| r).count(), 4);
        assert!(resets[3] && resets[7] && resets[11] && resets[15]);
    }
}
