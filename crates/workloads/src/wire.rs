//! The `rayflex-server` wire protocol: a small length-prefixed binary framing for trace /
//! any-hit / kNN / radius requests against named preloaded scenes, shared by the server's
//! ingress, the `loadgen` client and the protocol proptests.
//!
//! # Frame layout
//!
//! Every frame on the wire is a 4-byte little-endian payload length followed by the payload.
//! Payloads open with a fixed header — magic `0x5246` (`"RF"` little-endian), protocol version,
//! one opcode byte — then opcode-specific fields, all little-endian, all `f32` values as their
//! IEEE-754 bit patterns (the protocol is **bit-exact**: a value decodes to the identical bits
//! that were encoded, which is what lets the server's responses be compared byte-for-byte
//! against direct library calls):
//!
//! ```text
//! request  := magic:u16 version:u8 opcode:u8 request_id:u64 tenant:u32 deadline_us:u64
//!             scene_len:u16 scene:utf8[..]  body
//!   trace/any-hit body := ray_count:u32 { origin:f32x3 dir:f32x3 t_beg:f32 t_end:f32 }*
//!   knn body           := k:u32 dim:u32 query:f32[dim]
//!   radius body        := center:f32x3 radius:f32
//!   shutdown body      := (empty; scene is ignored)
//! response := magic:u16 version:u8 opcode:u8 request_id:u64  body
//!   hits body          := count:u32 { tag:u8 (0 = miss | 1 = hit primitive:u64 t:f32) }*
//!   partial-hits body  := total:u32 count:u32 { hit as above }*   (count ≤ total)
//!   neighbors body     := count:u32 { index:u64 distance:f32 }*
//!   error body         := code:u8 reason_len:u16 reason:utf8[..]
//!   shutdown-ack body  := (empty)
//! ```
//!
//! Decoding is total: every read is bounds-checked, counts are sanity-checked against the bytes
//! actually present, strings must be UTF-8, trailing bytes are rejected, and a declared length
//! above [`MAX_FRAME_BYTES`] is refused before any allocation — arbitrary bytes (including the
//! bit-flipped frames of the chaos harness) decode to a structured [`WireError`], never a panic
//! and never an attempt to trust a lying header.

use std::io::{Read, Write};
use std::net::TcpStream;

use rayflex_geometry::Ray;

/// Frame magic: `"RF"` as a little-endian `u16`.
pub const MAGIC: u16 = 0x5246;
/// Protocol version this module speaks.
pub const VERSION: u8 = 1;
/// Upper bound on a frame payload; larger declared lengths are refused before allocating.
pub const MAX_FRAME_BYTES: usize = 1 << 24;

/// Error codes carried by [`ResponseBody::Error`].
pub mod code {
    /// The request itself was malformed (non-finite ray, zero direction, bad dimension, …).
    pub const INVALID_REQUEST: u8 = 1;
    /// The named scene failed validation at admission (should not happen for preloaded scenes).
    pub const INVALID_SCENE: u8 = 2;
    /// The cooperative beat deadline fired and no partial answer was salvageable.
    pub const DEADLINE_EXCEEDED: u8 = 3;
    /// The beat budget ran out before a single item retired.
    pub const BUDGET_EXHAUSTED: u8 = 4;
    /// A worker shard died and its retry died too.
    pub const SHARD_PANICKED: u8 = 5;
    /// The request named a scene / dataset / cloud the server has not preloaded.
    pub const UNKNOWN_SCENE: u8 = 6;
    /// The request kind is not servable against the named target (e.g. kNN against a triangle
    /// scene).
    pub const UNSUPPORTED: u8 = 7;
    /// The server is draining and admits no new work.
    pub const SHUTTING_DOWN: u8 = 8;
    /// The batch executor failed in an unforeseen way; the connection survives.
    pub const INTERNAL: u8 = 9;
}

/// A decoding / transport failure.  Every malformed input lands here — the protocol layer never
/// panics on wire bytes.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// The payload failed structural validation.
    Malformed {
        /// What was wrong, for the structured error response.
        reason: String,
    },
    /// The length prefix declared more than [`MAX_FRAME_BYTES`].
    Oversized {
        /// The declared payload length.
        declared: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(err) => write!(f, "transport failed: {err}"),
            WireError::Malformed { reason } => write!(f, "malformed frame: {reason}"),
            WireError::Oversized { declared } => {
                write!(
                    f,
                    "frame declares {declared} bytes (limit {MAX_FRAME_BYTES})"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(err: std::io::Error) -> Self {
        WireError::Io(err)
    }
}

fn malformed(reason: impl Into<String>) -> WireError {
    WireError::Malformed {
        reason: reason.into(),
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Tenant id for per-tenant QoS accounting.
    pub tenant: u32,
    /// Soft deadline in microseconds from arrival (`0` = none); drives earliest-deadline-first
    /// admission and the batch flush timer.
    pub deadline_us: u64,
    /// Name of the preloaded scene / dataset / point cloud the request runs against.
    pub scene: String,
    /// The query itself.
    pub body: RequestBody,
}

/// The query kinds the server understands.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Closest-hit traversal of a ray batch.
    Trace {
        /// The rays to trace.
        rays: Vec<Ray>,
    },
    /// Any-hit (occlusion) traversal of a ray batch.
    AnyHit {
        /// The rays to test.
        rays: Vec<Ray>,
    },
    /// k-nearest-neighbour search of one query vector against a named dataset.
    Knn {
        /// How many neighbours to return.
        k: u32,
        /// The query vector (dimension must match the dataset's).
        query: Vec<f32>,
    },
    /// Radius query of one centre against a named point cloud.
    Radius {
        /// Query centre.
        center: [f32; 3],
        /// Query radius.
        radius: f32,
    },
    /// Ask the server to drain and exit cleanly (the SIGTERM equivalent of the protocol).
    Shutdown,
}

/// One hit on the wire (mirrors `rayflex_rtunit::TraversalHit` with a fixed-width index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireHit {
    /// Index of the hit primitive.
    pub primitive: u64,
    /// Parametric hit distance.
    pub t: f32,
}

/// One neighbour on the wire (mirrors `rayflex_rtunit::Neighbor` with a fixed-width index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireNeighbor {
    /// Index of the neighbour in the dataset.
    pub index: u64,
    /// Distance to the query.
    pub distance: f32,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// The request's correlation id, echoed verbatim.
    pub request_id: u64,
    /// The answer.
    pub body: ResponseBody,
}

/// The response kinds the server produces.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Complete per-ray hits (trace and any-hit requests), in request ray order.
    Hits {
        /// One optional hit per requested ray.
        hits: Vec<Option<WireHit>>,
    },
    /// A deadline fired mid-run: the completed prefix of the per-ray hits.
    PartialHits {
        /// How many rays the request carried in total.
        total: u32,
        /// The completed prefix (shorter than `total`).
        hits: Vec<Option<WireHit>>,
    },
    /// Neighbour lists (kNN and radius requests), nearest first.
    Neighbors {
        /// The neighbours found.
        neighbors: Vec<WireNeighbor>,
    },
    /// A structured failure; the connection stays up.
    Error {
        /// One of the [`code`] constants.
        code: u8,
        /// Human-readable detail.
        reason: String,
    },
    /// Acknowledges a [`RequestBody::Shutdown`]; the server drains and exits after sending it.
    ShutdownAck,
}

// --- Byte-level reader / writer ----------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn short_str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let len = bytes.len().min(u16::MAX as usize);
        self.u16(len as u16);
        self.buf.extend_from_slice(&bytes[..len]);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }
    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(malformed(format!(
                "{what}: needs {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }
    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }
    fn f32(&mut self, what: &str) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32(what)?))
    }
    fn short_str(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed(format!("{what}: not valid UTF-8")))
    }
    /// A count of fixed-size records must fit in the bytes that are actually present — a lying
    /// count is rejected before any allocation sized by it.
    fn checked_count(&mut self, record_bytes: usize, what: &str) -> Result<usize, WireError> {
        let count = self.u32(what)? as usize;
        if count.saturating_mul(record_bytes) > self.remaining() {
            return Err(malformed(format!(
                "{what}: {count} records of {record_bytes} bytes exceed the {} bytes present",
                self.remaining()
            )));
        }
        Ok(count)
    }
    fn finish(self, what: &str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(malformed(format!(
                "{what}: {} trailing bytes after the payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn write_header(w: &mut Writer, opcode: u8) {
    w.u16(MAGIC);
    w.u8(VERSION);
    w.u8(opcode);
}

fn read_header(r: &mut Reader<'_>) -> Result<u8, WireError> {
    let magic = r.u16("magic")?;
    if magic != MAGIC {
        return Err(malformed(format!("bad magic {magic:#06x}")));
    }
    let version = r.u8("version")?;
    if version != VERSION {
        return Err(malformed(format!("unsupported protocol version {version}")));
    }
    r.u8("opcode")
}

const RAY_BYTES: usize = 8 * 4;

fn write_ray(w: &mut Writer, ray: &Ray) {
    w.f32(ray.origin.x);
    w.f32(ray.origin.y);
    w.f32(ray.origin.z);
    w.f32(ray.dir.x);
    w.f32(ray.dir.y);
    w.f32(ray.dir.z);
    w.f32(ray.t_beg);
    w.f32(ray.t_end);
}

/// Reconstructs a ray from its eight wire floats.  `Ray::with_extent` recomputes the derived
/// `inv_dir` / shear fields deterministically from the direction bits, so an encode → decode
/// round trip is bit-exact.  A zero direction would make the constructor panic, so that case is
/// rebuilt around a unit dummy direction and patched afterwards — the ray decodes (keeping
/// decode total) and the engines' request validation rejects it with a structured error.
fn read_ray(r: &mut Reader<'_>, what: &str) -> Result<Ray, WireError> {
    use rayflex_geometry::Vec3;
    let origin = Vec3::new(r.f32(what)?, r.f32(what)?, r.f32(what)?);
    let dir = Vec3::new(r.f32(what)?, r.f32(what)?, r.f32(what)?);
    let t_beg = r.f32(what)?;
    let t_end = r.f32(what)?;
    if dir.x == 0.0 && dir.y == 0.0 && dir.z == 0.0 {
        let mut ray = Ray::with_extent(origin, Vec3::new(0.0, 0.0, 1.0), 0.0, f32::INFINITY);
        ray.dir = dir;
        ray.inv_dir = dir.recip();
        ray.t_beg = t_beg;
        ray.t_end = t_end;
        return Ok(ray);
    }
    Ok(Ray::with_extent(origin, dir, t_beg, t_end))
}

// Request opcodes.
const OP_TRACE: u8 = 1;
const OP_ANY_HIT: u8 = 2;
const OP_KNN: u8 = 3;
const OP_RADIUS: u8 = 4;
const OP_SHUTDOWN: u8 = 5;

// Response opcodes.
const OP_HITS: u8 = 1;
const OP_PARTIAL_HITS: u8 = 2;
const OP_NEIGHBORS: u8 = 3;
const OP_ERROR: u8 = 4;
const OP_SHUTDOWN_ACK: u8 = 5;

/// Encodes a request into a frame payload (no length prefix; see [`write_frame`]).
#[must_use]
pub fn encode_request(request: &RequestFrame) -> Vec<u8> {
    let mut w = Writer::new();
    let opcode = match &request.body {
        RequestBody::Trace { .. } => OP_TRACE,
        RequestBody::AnyHit { .. } => OP_ANY_HIT,
        RequestBody::Knn { .. } => OP_KNN,
        RequestBody::Radius { .. } => OP_RADIUS,
        RequestBody::Shutdown => OP_SHUTDOWN,
    };
    write_header(&mut w, opcode);
    w.u64(request.request_id);
    w.u32(request.tenant);
    w.u64(request.deadline_us);
    w.short_str(&request.scene);
    match &request.body {
        RequestBody::Trace { rays } | RequestBody::AnyHit { rays } => {
            w.u32(rays.len() as u32);
            for ray in rays {
                write_ray(&mut w, ray);
            }
        }
        RequestBody::Knn { k, query } => {
            w.u32(*k);
            w.u32(query.len() as u32);
            for &v in query {
                w.f32(v);
            }
        }
        RequestBody::Radius { center, radius } => {
            for &c in center {
                w.f32(c);
            }
            w.f32(*radius);
        }
        RequestBody::Shutdown => {}
    }
    w.buf
}

/// Decodes a request frame payload.
///
/// # Errors
///
/// [`WireError::Malformed`] on any structural violation — short payloads, bad magic / version /
/// opcode, lying counts, non-UTF-8 strings or trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<RequestFrame, WireError> {
    let mut r = Reader::new(payload);
    let opcode = read_header(&mut r)?;
    let request_id = r.u64("request id")?;
    let tenant = r.u32("tenant")?;
    let deadline_us = r.u64("deadline")?;
    let scene = r.short_str("scene name")?;
    let body = match opcode {
        OP_TRACE | OP_ANY_HIT => {
            let count = r.checked_count(RAY_BYTES, "ray stream")?;
            let mut rays = Vec::with_capacity(count);
            for _ in 0..count {
                rays.push(read_ray(&mut r, "ray")?);
            }
            if opcode == OP_TRACE {
                RequestBody::Trace { rays }
            } else {
                RequestBody::AnyHit { rays }
            }
        }
        OP_KNN => {
            let k = r.u32("k")?;
            let dim = r.checked_count(4, "query vector")?;
            let mut query = Vec::with_capacity(dim);
            for _ in 0..dim {
                query.push(r.f32("query component")?);
            }
            RequestBody::Knn { k, query }
        }
        OP_RADIUS => {
            let center = [r.f32("centre x")?, r.f32("centre y")?, r.f32("centre z")?];
            let radius = r.f32("radius")?;
            RequestBody::Radius { center, radius }
        }
        OP_SHUTDOWN => RequestBody::Shutdown,
        other => return Err(malformed(format!("unknown request opcode {other}"))),
    };
    r.finish("request")?;
    Ok(RequestFrame {
        request_id,
        tenant,
        deadline_us,
        scene,
        body,
    })
}

/// Encodes a response into a frame payload (no length prefix; see [`write_frame`]).
#[must_use]
pub fn encode_response(response: &ResponseFrame) -> Vec<u8> {
    let mut w = Writer::new();
    let opcode = match &response.body {
        ResponseBody::Hits { .. } => OP_HITS,
        ResponseBody::PartialHits { .. } => OP_PARTIAL_HITS,
        ResponseBody::Neighbors { .. } => OP_NEIGHBORS,
        ResponseBody::Error { .. } => OP_ERROR,
        ResponseBody::ShutdownAck => OP_SHUTDOWN_ACK,
    };
    write_header(&mut w, opcode);
    w.u64(response.request_id);
    let write_hits = |w: &mut Writer, hits: &[Option<WireHit>]| {
        w.u32(hits.len() as u32);
        for hit in hits {
            match hit {
                None => w.u8(0),
                Some(hit) => {
                    w.u8(1);
                    w.u64(hit.primitive);
                    w.f32(hit.t);
                }
            }
        }
    };
    match &response.body {
        ResponseBody::Hits { hits } => write_hits(&mut w, hits),
        ResponseBody::PartialHits { total, hits } => {
            w.u32(*total);
            write_hits(&mut w, hits);
        }
        ResponseBody::Neighbors { neighbors } => {
            w.u32(neighbors.len() as u32);
            for n in neighbors {
                w.u64(n.index);
                w.f32(n.distance);
            }
        }
        ResponseBody::Error { code, reason } => {
            w.u8(*code);
            w.short_str(reason);
        }
        ResponseBody::ShutdownAck => {}
    }
    w.buf
}

/// Decodes a response frame payload.
///
/// # Errors
///
/// [`WireError::Malformed`] on any structural violation, exactly as [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<ResponseFrame, WireError> {
    let mut r = Reader::new(payload);
    let opcode = read_header(&mut r)?;
    let request_id = r.u64("request id")?;
    fn read_hits(r: &mut Reader<'_>) -> Result<Vec<Option<WireHit>>, WireError> {
        // A miss is the 1-byte minimum record.
        let count = r.checked_count(1, "hit list")?;
        let mut hits = Vec::with_capacity(count);
        for _ in 0..count {
            hits.push(match r.u8("hit tag")? {
                0 => None,
                1 => Some(WireHit {
                    primitive: r.u64("hit primitive")?,
                    t: r.f32("hit distance")?,
                }),
                other => return Err(malformed(format!("unknown hit tag {other}"))),
            });
        }
        Ok(hits)
    }
    let body = match opcode {
        OP_HITS => ResponseBody::Hits {
            hits: read_hits(&mut r)?,
        },
        OP_PARTIAL_HITS => {
            let total = r.u32("total")?;
            let hits = read_hits(&mut r)?;
            if hits.len() > total as usize {
                return Err(malformed(format!(
                    "partial response carries {} hits but claims only {total} rays",
                    hits.len()
                )));
            }
            ResponseBody::PartialHits { total, hits }
        }
        OP_NEIGHBORS => {
            let count = r.checked_count(12, "neighbour list")?;
            let mut neighbors = Vec::with_capacity(count);
            for _ in 0..count {
                neighbors.push(WireNeighbor {
                    index: r.u64("neighbour index")?,
                    distance: r.f32("neighbour distance")?,
                });
            }
            ResponseBody::Neighbors { neighbors }
        }
        OP_ERROR => ResponseBody::Error {
            code: r.u8("error code")?,
            reason: r.short_str("error reason")?,
        },
        OP_SHUTDOWN_ACK => ResponseBody::ShutdownAck,
        other => return Err(malformed(format!("unknown response opcode {other}"))),
    };
    r.finish("response")?;
    Ok(ResponseFrame { request_id, body })
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`WireError::Io`] if the socket write fails, [`WireError::Oversized`] for payloads above
/// [`MAX_FRAME_BYTES`].
pub fn write_frame(to: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::Oversized {
            declared: payload.len(),
        });
    }
    to.write_all(&(payload.len() as u32).to_le_bytes())?;
    to.write_all(payload)?;
    Ok(())
}

/// Reads one length-prefixed frame, refusing oversized declarations before allocating.
///
/// # Errors
///
/// [`WireError::Io`] on transport failure (including EOF mid-frame — a peer dying mid-write
/// surfaces here, not as garbage), [`WireError::Oversized`] for lying length prefixes.
pub fn read_frame(from: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut prefix = [0u8; 4];
    from.read_exact(&mut prefix)?;
    let declared = u32::from_le_bytes(prefix) as usize;
    if declared > MAX_FRAME_BYTES {
        return Err(WireError::Oversized { declared });
    }
    let mut payload = vec![0u8; declared];
    from.read_exact(&mut payload)?;
    Ok(payload)
}

/// A blocking protocol client over one TCP connection — what `loadgen`'s worker threads and the
/// server's own tests speak through.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
}

impl WireClient {
    /// Connects to a server address.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the connection fails.
    pub fn connect(addr: &str) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        // Frames are small and latency-bound: Nagle + delayed ACK would add ~40ms per round
        // trip, swamping every serving-policy effect a benchmark wants to observe.
        stream.set_nodelay(true)?;
        Ok(WireClient { stream })
    }

    /// Wraps an already-connected stream.
    #[must_use]
    pub fn from_stream(stream: TcpStream) -> Self {
        WireClient { stream }
    }

    /// Sends a request frame without waiting for the response.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on transport failure.
    pub fn send(&mut self, request: &RequestFrame) -> Result<(), WireError> {
        write_frame(&mut self.stream, &encode_request(request))
    }

    /// Receives and decodes one response frame.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]: transport failure or a malformed response.
    pub fn receive(&mut self) -> Result<ResponseFrame, WireError> {
        decode_response(&read_frame(&mut self.stream)?)
    }

    /// One round trip: send, then block for the response.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from [`WireClient::send`] or [`WireClient::receive`].
    pub fn request(&mut self, request: &RequestFrame) -> Result<ResponseFrame, WireError> {
        self.send(request)?;
        self.receive()
    }

    /// The raw stream, for tests that need to write broken bytes.
    #[must_use]
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

pub mod catalog {
    //! The named workload catalog both ends of the protocol agree on: the server preloads every
    //! entry at startup, `loadgen` generates requests against the same names, and the
    //! bit-identity tests rebuild the identical inputs library-side.  Everything is
    //! deterministic — same name, same geometry, bit for bit.

    use rayflex_geometry::{Aabb, Ray, Triangle, Vec3};

    /// The triangle scenes the server preloads, servable by trace / any-hit requests.
    pub const SCENES: [&str; 3] = ["wall", "lit", "soup"];
    /// The vector datasets the server preloads, servable by kNN requests.
    pub const DATASETS: [&str; 1] = ["clusters"];
    /// The point clouds the server preloads, servable by radius requests.
    pub const CLOUDS: [&str; 1] = ["cloud"];
    /// Dimension of every vector in the [`DATASETS`] entries.
    pub const KNN_DIMENSION: usize = 16;

    /// The triangles of a named scene, or `None` for names outside [`SCENES`].
    #[must_use]
    pub fn scene_triangles(name: &str) -> Option<Vec<Triangle>> {
        match name {
            "wall" => Some(crate::scenes::quad_wall(12, 1.5, 6.0)),
            "lit" => Some(crate::scenes::lit_scene(2, 10.0).triangles),
            "soup" => Some(crate::scenes::random_triangle_soup(41, 256, 12.0)),
            _ => None,
        }
    }

    /// The bounds rays of a named scene are generated inside (a box that comfortably contains
    /// the geometry, so streams mix hits and misses).
    #[must_use]
    pub fn scene_bounds(name: &str) -> Option<Aabb> {
        let extent = match name {
            "wall" => 12.0,
            "lit" => 12.0,
            "soup" => 14.0,
            _ => return None,
        };
        Some(Aabb::new(Vec3::splat(-extent), Vec3::splat(extent)))
    }

    /// A deterministic ray batch aimed at a named scene, or `None` for unknown names.
    #[must_use]
    pub fn sample_rays(name: &str, seed: u64, count: usize) -> Option<Vec<Ray>> {
        Some(crate::rays::random_rays(seed, count, &scene_bounds(name)?))
    }

    /// The vectors of a named kNN dataset, or `None` for names outside [`DATASETS`].
    #[must_use]
    pub fn dataset_vectors(name: &str) -> Option<Vec<Vec<f32>>> {
        match name {
            "clusters" => {
                Some(crate::vectors::clustered_dataset(17, 256, KNN_DIMENSION, 6, 0.4).vectors)
            }
            _ => None,
        }
    }

    /// A deterministic query-vector batch near a named dataset's clusters.
    #[must_use]
    pub fn sample_queries(name: &str, seed: u64, count: usize) -> Option<Vec<Vec<f32>>> {
        match name {
            "clusters" => {
                let dataset = crate::vectors::clustered_dataset(17, 256, KNN_DIMENSION, 6, 0.4);
                Some(crate::vectors::queries_near_dataset(
                    seed, &dataset, count, 0.3,
                ))
            }
            _ => None,
        }
    }

    /// The points of a named cloud, or `None` for names outside [`CLOUDS`].
    #[must_use]
    pub fn cloud_points(name: &str) -> Option<Vec<Vec3>> {
        match name {
            "cloud" => Some(
                crate::vectors::clustered_dataset(23, 192, 3, 5, 2.5)
                    .vectors
                    .iter()
                    .map(|v| Vec3::new(v[0], v[1], v[2]))
                    .collect(),
            ),
            _ => None,
        }
    }

    /// Deterministic radius-query centres near a named cloud.
    #[must_use]
    pub fn sample_centers(name: &str, seed: u64, count: usize) -> Option<Vec<(Vec3, f32)>> {
        let points = cloud_points(name)?;
        let rays =
            crate::rays::random_rays(seed, count, &Aabb::new(Vec3::splat(-8.0), Vec3::splat(8.0)));
        Some(
            rays.iter()
                .enumerate()
                .map(|(i, ray)| {
                    // Anchor half the centres on real points so queries actually find
                    // neighbours.
                    let center = if i % 2 == 0 {
                        points[i % points.len()] + ray.dir * 0.05
                    } else {
                        ray.origin
                    };
                    (center, 1.0 + (i % 7) as f32 * 0.5)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::Vec3;

    fn sample_request() -> RequestFrame {
        RequestFrame {
            request_id: 42,
            tenant: 7,
            deadline_us: 1500,
            scene: "wall".into(),
            body: RequestBody::Trace {
                rays: catalog::sample_rays("wall", 3, 5).unwrap(),
            },
        }
    }

    #[test]
    fn request_round_trips_bit_exactly() {
        let request = sample_request();
        let decoded = decode_request(&encode_request(&request)).unwrap();
        assert_eq!(decoded, request);
        // Bit-exactness beyond PartialEq: re-encoding reproduces the same bytes.
        assert_eq!(encode_request(&decoded), encode_request(&request));
    }

    #[test]
    fn every_request_kind_round_trips() {
        let bodies = [
            RequestBody::AnyHit {
                rays: catalog::sample_rays("soup", 9, 3).unwrap(),
            },
            RequestBody::Knn {
                k: 4,
                query: vec![0.5; catalog::KNN_DIMENSION],
            },
            RequestBody::Radius {
                center: [1.0, -2.0, 0.5],
                radius: 3.0,
            },
            RequestBody::Shutdown,
        ];
        for body in bodies {
            let request = RequestFrame {
                request_id: 9,
                tenant: 0,
                deadline_us: 0,
                scene: "clusters".into(),
                body,
            };
            assert_eq!(decode_request(&encode_request(&request)).unwrap(), request);
        }
    }

    #[test]
    fn every_response_kind_round_trips() {
        let bodies = [
            ResponseBody::Hits {
                hits: vec![
                    None,
                    Some(WireHit {
                        primitive: 12,
                        t: 3.25,
                    }),
                ],
            },
            ResponseBody::PartialHits {
                total: 8,
                hits: vec![Some(WireHit {
                    primitive: 1,
                    t: 0.5,
                })],
            },
            ResponseBody::Neighbors {
                neighbors: vec![WireNeighbor {
                    index: 3,
                    distance: 1.75,
                }],
            },
            ResponseBody::Error {
                code: code::DEADLINE_EXCEEDED,
                reason: "beat budget exhausted".into(),
            },
            ResponseBody::ShutdownAck,
        ];
        for body in bodies {
            let response = ResponseFrame {
                request_id: 77,
                body,
            };
            assert_eq!(
                decode_response(&encode_response(&response)).unwrap(),
                response
            );
        }
    }

    #[test]
    fn zero_direction_rays_decode_without_panicking() {
        // Hand-build the wire bytes of a zero-direction ray — the constructor would panic on
        // it, so decode must route around that while preserving the bits.
        let mut w = Writer::new();
        write_header(&mut w, OP_TRACE);
        w.u64(1);
        w.u32(0);
        w.u64(0);
        w.short_str("wall");
        w.u32(1);
        for v in [1.0f32, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, f32::INFINITY] {
            w.f32(v);
        }
        let decoded = decode_request(&w.buf).unwrap();
        let RequestBody::Trace { rays } = &decoded.body else {
            panic!("wrong body kind");
        };
        assert_eq!(rays[0].origin, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(rays[0].dir, Vec3::ZERO);
    }

    #[test]
    fn structural_violations_are_rejected_not_panicked() {
        let good = encode_request(&sample_request());

        // Truncations at every length decode to an error, never a panic.
        for len in 0..good.len() {
            assert!(decode_request(&good[..len]).is_err(), "prefix {len}");
        }

        // Trailing garbage is rejected.
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_request(&padded).is_err());

        // Bad magic, version, opcode.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(decode_request(&bad).is_err());
        let mut bad = good.clone();
        bad[2] = 99;
        assert!(decode_request(&bad).is_err());
        let mut bad = good.clone();
        bad[3] = 200;
        assert!(decode_request(&bad).is_err());

        // A lying ray count cannot force an allocation or an over-read.
        let mut lying = good.clone();
        let count_at = 2 + 2 + 8 + 4 + 8 + 2 + "wall".len();
        lying[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&lying).is_err());
    }

    #[test]
    fn every_single_bit_flip_decodes_or_rejects_without_panicking() {
        let good = encode_request(&sample_request());
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut flipped = good.clone();
                flipped[byte] ^= 1 << bit;
                // Either outcome is fine; what matters is that it *returns*.
                let _ = decode_request(&flipped);
            }
        }
    }

    #[test]
    fn the_catalog_is_deterministic_and_complete() {
        for name in catalog::SCENES {
            assert!(
                !catalog::scene_triangles(name).unwrap().is_empty(),
                "{name}"
            );
            let a = catalog::sample_rays(name, 5, 8).unwrap();
            let b = catalog::sample_rays(name, 5, 8).unwrap();
            assert_eq!(a, b, "{name}: same seed, same rays");
        }
        for name in catalog::DATASETS {
            let vectors = catalog::dataset_vectors(name).unwrap();
            assert!(!vectors.is_empty());
            assert!(vectors.iter().all(|v| v.len() == catalog::KNN_DIMENSION));
            assert_eq!(
                catalog::sample_queries(name, 2, 4).unwrap(),
                catalog::sample_queries(name, 2, 4).unwrap()
            );
        }
        for name in catalog::CLOUDS {
            assert!(!catalog::cloud_points(name).unwrap().is_empty());
            assert_eq!(
                catalog::sample_centers(name, 4, 6).unwrap(),
                catalog::sample_centers(name, 4, 6).unwrap()
            );
        }
        assert!(catalog::scene_triangles("nope").is_none());
        assert!(catalog::dataset_vectors("nope").is_none());
        assert!(catalog::cloud_points("nope").is_none());
    }

    #[test]
    fn frames_round_trip_through_a_byte_stream() {
        let payload = encode_request(&sample_request());
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let got = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(got, payload);

        // An oversized declared length is refused before allocation.
        let mut lying = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
        lying.extend_from_slice(&[0; 8]);
        assert!(matches!(
            read_frame(&mut lying.as_slice()),
            Err(WireError::Oversized { .. })
        ));

        // A frame cut off mid-payload is an I/O error (EOF), not garbage.
        let mut short = wire.clone();
        short.truncate(wire.len() - 3);
        assert!(matches!(
            read_frame(&mut short.as_slice()),
            Err(WireError::Io(_))
        ));
    }
}
