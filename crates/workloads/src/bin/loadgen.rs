//! Closed-loop load generator for `rayflex-server`: N concurrent clients (default 64) each
//! fire a mixed request stream — traces, any-hits, kNN and radius queries, a third of them
//! carrying deadlines to exercise earliest-deadline-first admission — back-to-back over their
//! own connection, so the offered load is identical across server configurations and only the
//! batching policy differs.
//!
//! In spawn mode (`--server-bin PATH`) it launches one server per variant — `batch1`
//! (`--max-batch 1 --flush-us 0`, every request its own fused run) and `dynamic` (the real
//! coalescing knobs) — measures p50/p99 latency and wire throughput for each, shuts the server
//! down with a protocol shutdown frame, asserts a clean drain (exit status 0), and writes
//! `BENCH_server.json`.  Against an already-running server (`--addr`), it runs a single
//! `external` variant with no ratio.
//!
//! Two throughputs are reported, and they answer different questions.  The *wire* numbers
//! (req/s, p50/p99) time the whole host process; on a single-core host the kernel scheduler
//! interleaves client threads so every policy self-batches and the wire ratio hovers near 1.
//! The *modeled device* numbers come from the datapath's SIMD lane accounting
//! (`lanes_busy`/`lane_slots` on the server's drained summary): every kernel issue charges the
//! full device width, so coalesced passes that fill wide issues need proportionally fewer
//! slots for the same busy beats.  Both variants execute the identical request set — equal
//! offered load, equal busy lanes — so `slots(batch1) / slots(dynamic)` is the modeled
//! RT-device throughput ratio of dynamic fused batching, the paper's own utilisation lens.
//! That ratio is the `speedup_vs_scalar` the bench gate tracks, and `--min-ratio` turns it
//! into a hard floor.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rayflex_workloads::wire::{catalog, RequestBody, RequestFrame, ResponseBody, WireClient};

const USAGE: &str = "usage: loadgen (--server-bin PATH | --addr HOST:PORT) [--clients N] \
                     [--requests N] [--max-batch N] [--flush-us N] [--out PATH] [--min-ratio R] \
                     [--max-p99-us N]";

#[derive(Debug, Clone)]
struct Options {
    server_bin: Option<String>,
    addr: Option<String>,
    clients: usize,
    requests: usize,
    max_batch: usize,
    flush_us: u64,
    out: String,
    min_ratio: f64,
    max_p99_us: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            server_bin: None,
            addr: None,
            clients: 64,
            requests: 25,
            max_batch: 32,
            flush_us: 200,
            out: "BENCH_server.json".into(),
            min_ratio: 0.0,
            max_p99_us: 0,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--server-bin" => options.server_bin = Some(value("--server-bin")?),
            "--addr" => options.addr = Some(value("--addr")?),
            "--clients" => {
                options.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--requests" => {
                options.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--max-batch" => {
                options.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?;
            }
            "--flush-us" => {
                options.flush_us = value("--flush-us")?
                    .parse()
                    .map_err(|e| format!("--flush-us: {e}"))?;
            }
            "--out" => options.out = value("--out")?,
            "--min-ratio" => {
                options.min_ratio = value("--min-ratio")?
                    .parse()
                    .map_err(|e| format!("--min-ratio: {e}"))?;
            }
            "--max-p99-us" => {
                options.max_p99_us = value("--max-p99-us")?
                    .parse()
                    .map_err(|e| format!("--max-p99-us: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if options.server_bin.is_none() && options.addr.is_none() {
        return Err(format!(
            "one of --server-bin or --addr is required\n{USAGE}"
        ));
    }
    Ok(options)
}

/// The request a given client issues at a given step: a deterministic mix of all four query
/// kinds, one third carrying a deadline so EDF admission has real work to do.
fn build_request(client: usize, step: usize) -> RequestFrame {
    let request_id = (client as u64) << 32 | step as u64;
    let seed = request_id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let deadline_us = if step.is_multiple_of(3) { 20_000 } else { 0 };
    let body = match step % 7 {
        5 => {
            let queries = catalog::sample_queries("clusters", seed, 1).expect("catalog queries");
            RequestBody::Knn {
                k: 4,
                query: queries.into_iter().next().expect("one query"),
            }
        }
        6 => {
            let centers = catalog::sample_centers("cloud", seed, 1).expect("catalog centers");
            let (center, radius) = centers[0];
            RequestBody::Radius {
                center: [center.x, center.y, center.z],
                radius,
            }
        }
        step_mod => {
            // The service premise is many concurrent *small* queries: one or two rays against
            // the small scenes keeps every solo stream's passes far narrower than the device,
            // so batch-size-1 dispatch genuinely underfills the lanes.
            let scene = if step_mod.is_multiple_of(2) {
                "lit"
            } else {
                "wall"
            };
            let rays = catalog::sample_rays(scene, seed, 1 + step_mod % 2).expect("catalog rays");
            if step_mod.is_multiple_of(3) {
                RequestBody::Trace { rays }
            } else {
                RequestBody::AnyHit { rays }
            }
        }
    };
    let scene = match &body {
        RequestBody::Knn { .. } => "clusters",
        RequestBody::Radius { .. } => "cloud",
        RequestBody::Trace { .. } | RequestBody::AnyHit { .. } => {
            if (step % 7).is_multiple_of(2) {
                "lit"
            } else {
                "wall"
            }
        }
        RequestBody::Shutdown => unreachable!(),
    };
    RequestFrame {
        request_id,
        tenant: (client % 4) as u32,
        deadline_us,
        scene: scene.into(),
        body,
    }
}

#[derive(Debug, Clone)]
struct VariantResult {
    mode: String,
    max_batch: usize,
    flush_us: u64,
    requests: usize,
    errors: usize,
    seconds: f64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    /// Lane counters from the server's drained summary (zero for the `external` variant, which
    /// never sees the server exit).
    lanes_busy: u64,
    lane_slots: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs the closed-loop phase against `addr` and aggregates latency/throughput.
fn run_load(
    addr: &str,
    options: &Options,
    mode: &str,
    max_batch: usize,
    flush_us: u64,
) -> VariantResult {
    let barrier = Arc::new(Barrier::new(options.clients + 1));
    let handles: Vec<_> = (0..options.clients)
        .map(|client| {
            let addr = addr.to_string();
            let barrier = Arc::clone(&barrier);
            let requests = options.requests;
            std::thread::spawn(move || {
                let mut wire = WireClient::connect(&addr).expect("client connects");
                wire.stream_mut()
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("timeout set");
                let mut latencies = Vec::with_capacity(requests);
                let mut errors = 0usize;
                barrier.wait();
                for step in 0..requests {
                    let request = build_request(client, step);
                    let begin = Instant::now();
                    let response = wire.request(&request).expect("request round-trips");
                    latencies.push(begin.elapsed().as_micros() as u64);
                    assert_eq!(response.request_id, request.request_id);
                    if matches!(response.body, ResponseBody::Error { .. }) {
                        errors += 1;
                    }
                }
                (latencies, errors)
            })
        })
        .collect();

    barrier.wait();
    let begin = Instant::now();
    let mut latencies = Vec::with_capacity(options.clients * options.requests);
    let mut errors = 0usize;
    for handle in handles {
        let (thread_latencies, thread_errors) = handle.join().expect("client thread finishes");
        latencies.extend(thread_latencies);
        errors += thread_errors;
    }
    let seconds = begin.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let requests = latencies.len();
    VariantResult {
        mode: mode.to_string(),
        max_batch,
        flush_us,
        requests,
        errors,
        seconds,
        throughput_rps: requests as f64 / seconds.max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        lanes_busy: 0,
        lane_slots: 0,
    }
}

/// Spawns a server child with the given batching knobs and returns it, its bound address
/// (parsed from the `listening on` line), and a handle that yields the `(lanes_busy,
/// lane_slots)` counters from the drained summary once the child exits.
fn spawn_server(
    bin: &str,
    max_batch: usize,
    flush_us: u64,
) -> (Child, String, std::thread::JoinHandle<Option<(u64, u64)>>) {
    let mut child = Command::new(bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--max-batch",
            &max_batch.to_string(),
            "--flush-us",
            &flush_us.to_string(),
            "--admission",
            "edf",
            "--simd-lanes",
            "16",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("server spawns");
    let stdout = child.stdout.take().expect("server stdout is piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server prints its address")
            .expect("server stdout reads");
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout in the background so the child never blocks on a full pipe; the
    // drained summary carries the modeled lane counters this benchmark is after.
    let drain = std::thread::spawn(move || {
        let mut lanes = None;
        for line in lines.map_while(Result::ok) {
            if line.starts_with("drained: ") {
                lanes = parse_drained_lanes(&line);
            }
            eprintln!("[server] {line}");
        }
        lanes
    });
    (child, addr, drain)
}

/// Pulls `lanes_busy=` and `lane_slots=` out of the server's drained summary line.
fn parse_drained_lanes(line: &str) -> Option<(u64, u64)> {
    let field = |key: &str| {
        line.split_whitespace()
            .find_map(|token| token.strip_prefix(key))
            .and_then(|value| value.parse().ok())
    };
    Some((field("lanes_busy=")?, field("lane_slots=")?))
}

/// Sends a protocol shutdown frame, asserts the child drains and exits cleanly, and returns
/// the lane counters its drained summary reported.
fn shutdown_server(
    mut child: Child,
    addr: &str,
    drain: std::thread::JoinHandle<Option<(u64, u64)>>,
) -> (u64, u64) {
    let mut wire = WireClient::connect(addr).expect("shutdown client connects");
    let response = wire
        .request(&RequestFrame {
            request_id: u64::MAX,
            tenant: 0,
            deadline_us: 0,
            scene: String::new(),
            body: RequestBody::Shutdown,
        })
        .expect("shutdown acks");
    assert!(
        matches!(response.body, ResponseBody::ShutdownAck),
        "expected a shutdown ack, got {:?}",
        response.body
    );
    let status = child.wait().expect("server child reaps");
    assert!(
        status.success(),
        "server must drain and exit 0, got {status}"
    );
    drain
        .join()
        .expect("drain thread finishes")
        .unwrap_or((0, 0))
}

fn variant_json(result: &VariantResult, speedup: f64) -> String {
    let occupancy = result.lanes_busy as f64 / (result.lane_slots.max(1)) as f64;
    format!(
        "    {{\"mode\": \"{}\", \"max_batch\": {}, \"flush_us\": {}, \"requests\": {}, \
         \"errors\": {}, \"seconds\": {:.6}, \"throughput_rps\": {:.0}, \"p50_us\": {}, \
         \"p99_us\": {}, \"lanes_busy\": {}, \"lane_slots\": {}, \"lane_occupancy\": {:.4}, \
         \"speedup_vs_scalar\": {:.2}}}",
        result.mode,
        result.max_batch,
        result.flush_us,
        result.requests,
        result.errors,
        result.seconds,
        result.throughput_rps,
        result.p50_us,
        result.p99_us,
        result.lanes_busy,
        result.lane_slots,
        occupancy,
        speedup
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    let mut results: Vec<VariantResult> = Vec::new();
    if let Some(bin) = &options.server_bin {
        for (mode, max_batch, flush_us) in [
            ("batch1", 1usize, 0u64),
            ("dynamic", options.max_batch, options.flush_us),
        ] {
            let (child, addr, drain) = spawn_server(bin, max_batch, flush_us);
            let mut result = run_load(&addr, &options, mode, max_batch, flush_us);
            let (lanes_busy, lane_slots) = shutdown_server(child, &addr, drain);
            result.lanes_busy = lanes_busy;
            result.lane_slots = lane_slots;
            eprintln!(
                "{mode}: {} req in {:.3}s  ({:.0} req/s, p50 {}us, p99 {}us, {} errors, \
                 lane occupancy {:.3})",
                result.requests,
                result.seconds,
                result.throughput_rps,
                result.p50_us,
                result.p99_us,
                result.errors,
                result.lanes_busy as f64 / result.lane_slots.max(1) as f64
            );
            results.push(result);
        }
    } else if let Some(addr) = &options.addr {
        let result = run_load(
            addr,
            &options,
            "external",
            options.max_batch,
            options.flush_us,
        );
        eprintln!(
            "external: {} req in {:.3}s  ({:.0} req/s, p50 {}us, p99 {}us, {} errors)",
            result.requests,
            result.seconds,
            result.throughput_rps,
            result.p50_us,
            result.p99_us,
            result.errors
        );
        results.push(result);
    }

    let wire_ratio = match (results.first(), results.get(1)) {
        (Some(batch1), Some(dynamic)) if batch1.throughput_rps > 0.0 => {
            Some(dynamic.throughput_rps / batch1.throughput_rps)
        }
        _ => None,
    };
    // Both variants executed the identical request set, so busy lanes should agree; the slot
    // ratio is then the modeled device throughput of coalescing at equal offered load.
    let modeled_ratio = match (results.first(), results.get(1)) {
        (Some(batch1), Some(dynamic)) if batch1.lane_slots > 0 && dynamic.lane_slots > 0 => {
            if batch1.lanes_busy != dynamic.lanes_busy {
                eprintln!(
                    "note: busy-lane totals differ across variants ({} vs {}) — offered \
                     loads were not identical",
                    batch1.lanes_busy, dynamic.lanes_busy
                );
            }
            Some(batch1.lane_slots as f64 / dynamic.lane_slots as f64)
        }
        _ => None,
    };

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"clients\": {}, \"requests_per_client\": {},\n",
        options.clients, options.requests
    ));
    json.push_str("  \"modes\": [\n");
    let lines: Vec<String> = results
        .iter()
        .enumerate()
        .map(|(index, result)| {
            let speedup = if index == 0 {
                1.0
            } else {
                modeled_ratio.unwrap_or(1.0)
            };
            variant_json(result, speedup)
        })
        .collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ]");
    if let Some(modeled) = modeled_ratio {
        let wire = wire_ratio.unwrap_or(1.0);
        json.push_str(&format!(
            ",\n  \"batch_ratio\": [\n    {{\"mode\": \"batch-ratio\", \
             \"wire_throughput_ratio\": {wire:.2}, \"speedup_vs_scalar\": {modeled:.2}}}\n  ]"
        ));
    }
    json.push_str("\n}\n");

    let mut file = std::fs::File::create(&options.out).expect("bench json writes");
    file.write_all(json.as_bytes()).expect("bench json writes");
    eprintln!("wrote {}", options.out);
    if options.max_p99_us > 0 {
        for result in &results {
            if result.p99_us > options.max_p99_us {
                eprintln!(
                    "FAIL: {} p99 {}us exceeds the --max-p99-us {}us sanity bound",
                    result.mode, result.p99_us, options.max_p99_us
                );
                std::process::exit(1);
            }
        }
    }
    if let Some(wire) = wire_ratio {
        eprintln!("wire throughput ratio (dynamic/batch1): {wire:.2}x");
    }
    if let Some(modeled) = modeled_ratio {
        eprintln!("modeled device throughput ratio (dynamic/batch1): {modeled:.2}x");
        if options.min_ratio > 0.0 && modeled < options.min_ratio {
            eprintln!(
                "FAIL: modeled ratio {modeled:.2} below the --min-ratio {:.2} floor",
                options.min_ratio
            );
            std::process::exit(1);
        }
    }
}
