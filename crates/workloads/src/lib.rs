//! # rayflex-workloads
//!
//! Procedural workload generators for exercising the RayFlex datapath and its RT-unit substrate:
//! triangle scenes (the synthetic equivalent of the paper's bunny in Fig. 1), camera ray batches
//! and clustered vector datasets for the hierarchical-search case study (§V-A).
//!
//! Everything is deterministic given a seed, so testbenches and benchmark harnesses are
//! reproducible.
//!
//! # Example
//!
//! ```
//! use rayflex_workloads::scenes;
//!
//! let sphere = scenes::icosphere(2, 1.0, rayflex_geometry::Vec3::ZERO);
//! assert!(sphere.len() >= 300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod adversarial;
pub mod mixed;
pub mod rays;
pub mod scenes;
pub mod stimulus;
pub mod vectors;
pub mod wire;
