//! Adversarial workload generators: deterministically malformed scenes, rays and vector sets
//! for the hardened execution layer's failure paths.
//!
//! The regular generators in this crate produce well-formed workloads; these produce inputs a
//! robust engine must *reject* — non-finite vertices, zero-area triangles, untraceable rays,
//! corrupt vector components.  The chaos harness (`rtunit/tests/proptest_chaos.rs`) feeds them
//! to the `try_*` entry points and asserts a structured error comes back, never a panic and
//! never a silently wrong answer.
//!
//! Everything is deterministic given a seed (the crate-wide contract), so a failing chaos case
//! replays bit-for-bit.  Generators that corrupt a single victim return its index, letting a
//! test assert the error names the right element.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rayflex_geometry::{Affine, Ray, Triangle, Vec3};

use crate::scenes::{self, InstancedSceneDesc};

/// A well-formed scene of `count` random, non-degenerate triangles inside a ±`extent` box —
/// the clean baseline the corrupting generators start from (and chaos tests trace fault-free
/// reference runs against).
#[must_use]
pub fn valid_scene(seed: u64, count: usize, extent: f32) -> Vec<Triangle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let point = |rng: &mut StdRng| {
        Vec3::new(
            rng.gen_range(-extent..extent),
            rng.gen_range(-extent..extent),
            rng.gen_range(-extent..extent),
        )
    };
    let mut triangles = Vec::with_capacity(count);
    while triangles.len() < count {
        let triangle = Triangle::new(point(&mut rng), point(&mut rng), point(&mut rng));
        // Random vertices are almost never collinear, but the adversarial suite cannot afford
        // "almost": resample until the triangle is robustly non-degenerate.
        if triangle.area() > 1e-3 {
            triangles.push(triangle);
        }
    }
    triangles
}

/// A [`valid_scene`] with one seed-chosen vertex component made non-finite (NaN or infinity).
/// Returns the scene and the index of the poisoned triangle.
///
/// Scene validation must reject this with an `invalid scene` error naming that triangle.
#[must_use]
pub fn poisoned_scene(seed: u64, count: usize) -> (Vec<Triangle>, usize) {
    let mut triangles = valid_scene(seed, count.max(1), 20.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let victim = rng.gen_range(0..triangles.len());
    let poison = if rng.gen_bool(0.5) {
        f32::NAN
    } else {
        f32::INFINITY
    };
    let vertex = match rng.gen_range(0..3u32) {
        0 => &mut triangles[victim].v0,
        1 => &mut triangles[victim].v1,
        _ => &mut triangles[victim].v2,
    };
    match rng.gen_range(0..3u32) {
        0 => vertex.x = poison,
        1 => vertex.y = poison,
        _ => vertex.z = poison,
    }
    (triangles, victim)
}

/// A [`valid_scene`] with one seed-chosen triangle collapsed to **exactly** zero area by
/// repeating one of its vertices (float-rounded "collinear" constructions leave residual area
/// and would slip past an exact-zero degeneracy check).  Returns the scene and the index of the
/// degenerate triangle.
#[must_use]
pub fn degenerate_scene(seed: u64, count: usize) -> (Vec<Triangle>, usize) {
    let mut triangles = valid_scene(seed, count.max(1), 20.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
    let victim = rng.gen_range(0..triangles.len());
    let base = triangles[victim];
    triangles[victim] = if rng.gen_bool(0.5) {
        Triangle::new(base.v0, base.v1, base.v0)
    } else {
        Triangle::new(base.v0, base.v1, base.v1)
    };
    (triangles, victim)
}

/// A well-formed [`scenes::debris_field`] description with one seed-chosen placement broken in
/// one of the three ways an instanced scene can be invalid: a non-finite transform, a singular
/// (zero linear part) transform, or a dangling mesh index.  Returns the description and the
/// index of the corrupted placement.
///
/// Two-level scene validation must reject this with an `invalid scene` error naming that
/// instance.
#[must_use]
pub fn corrupt_instanced_scene(
    seed: u64,
    kinds: usize,
    count: usize,
) -> (InstancedSceneDesc, usize) {
    let mut desc = scenes::debris_field(seed, kinds, count.max(1), 25.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1A5_B1A5);
    let victim = rng.gen_range(0..desc.placements.len());
    let mesh_count = desc.meshes.len();
    let placement = &mut desc.placements[victim];
    match rng.gen_range(0..3u32) {
        0 => placement.1.translation.x = f32::NAN,
        1 => placement.1 = Affine::scale(Vec3::ZERO),
        _ => placement.0 = mesh_count,
    }
    (desc, victim)
}

/// `count` rays that are every one of them untraceable: NaN origins, infinite or zero
/// directions, NaN extents — the corruption rotating deterministically with the seed.
///
/// Request validation must reject the stream at its first ray.
#[must_use]
pub fn hostile_rays(seed: u64, count: usize) -> Vec<Ray> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut ray = Ray::new(
                Vec3::new(
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                ),
                Vec3::new(0.0, 0.0, 1.0),
            );
            match rng.gen_range(0..4u32) {
                0 => ray.origin.x = f32::NAN,
                1 => ray.dir.y = f32::INFINITY,
                2 => ray.dir = Vec3::ZERO,
                _ => ray.t_end = f32::NAN,
            }
            ray
        })
        .collect()
}

/// A well-formed `count`×`dim` candidate set with one seed-chosen victim corrupted: either a
/// NaN component or a wrong dimension (one element too short, never empty).  Returns the
/// candidates and the victim's index.
///
/// Vector validation must reject the set with an error naming that candidate.
#[must_use]
pub fn hostile_vectors(seed: u64, count: usize, dim: usize) -> (Vec<Vec<f32>>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<Vec<f32>> = (0..count.max(1))
        .map(|_| (0..dim).map(|_| rng.gen_range(-8.0..8.0)).collect())
        .collect();
    let victim = rng.gen_range(0..candidates.len());
    if rng.gen_bool(0.5) || dim <= 1 {
        let component = rng.gen_range(0..dim.max(1));
        if let Some(value) = candidates[victim].get_mut(component) {
            *value = f32::NAN;
        } else {
            candidates[victim].push(f32::NAN);
        }
    } else {
        candidates[victim].pop();
    }
    (candidates, victim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_scenes_are_deterministic_and_non_degenerate() {
        let a = valid_scene(5, 24, 20.0);
        let b = valid_scene(5, 24, 20.0);
        assert_eq!(a, b, "same seed, same scene");
        assert_eq!(a.len(), 24);
        assert!(a.iter().all(|t| t.area() > 1e-3));
        assert_ne!(valid_scene(6, 24, 20.0), a);
    }

    #[test]
    fn corrupt_instanced_scenes_break_exactly_the_named_placement() {
        for seed in 0..16u64 {
            let (desc, victim) = corrupt_instanced_scene(seed, 3, 12);
            let broken = |(mesh, transform): &(usize, Affine)| {
                *mesh >= desc.meshes.len()
                    || !transform.is_finite()
                    || transform.determinant() == 0.0
            };
            assert!(
                broken(&desc.placements[victim]),
                "seed {seed}: victim intact"
            );
            let count = desc.placements.iter().filter(|p| broken(p)).count();
            assert_eq!(count, 1, "seed {seed}: exactly one corrupted placement");
            let (again, same_victim) = corrupt_instanced_scene(seed, 3, 12);
            assert_eq!(same_victim, victim, "seed {seed}: deterministic victim");
            assert_eq!(again.placements[victim].0, desc.placements[victim].0);
        }
    }

    #[test]
    fn poisoned_scenes_carry_exactly_one_non_finite_triangle() {
        for seed in 0..16u64 {
            let (scene, victim) = poisoned_scene(seed, 12);
            let finite = |t: &Triangle| t.v0.is_finite() && t.v1.is_finite() && t.v2.is_finite();
            assert!(!finite(&scene[victim]), "seed {seed}: victim not poisoned");
            let poisoned = scene.iter().filter(|t| !finite(t)).count();
            assert_eq!(poisoned, 1, "seed {seed}: exactly one victim");
        }
        // NaN breaks PartialEq reflexivity, so determinism is pinned via the debug rendering.
        let (a, ia) = poisoned_scene(3, 12);
        let (b, ib) = poisoned_scene(3, 12);
        assert_eq!(ia, ib);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn degenerate_scenes_carry_exactly_one_flat_triangle() {
        for seed in 0..16u64 {
            let (scene, victim) = degenerate_scene(seed, 12);
            assert_eq!(scene[victim].area(), 0.0, "seed {seed}: victim not flat");
            let flat = scene.iter().filter(|t| t.area() <= 1e-3).count();
            assert_eq!(flat, 1, "seed {seed}: exactly one victim");
        }
    }

    #[test]
    fn hostile_rays_are_all_untraceable() {
        let rays = hostile_rays(9, 64);
        assert_eq!(rays.len(), 64);
        for (i, ray) in rays.iter().enumerate() {
            let untraceable = !ray.origin.is_finite()
                || !ray.dir.is_finite()
                || ray.dir.length_squared() == 0.0
                || ray.t_end.is_nan();
            assert!(untraceable, "ray {i} is traceable");
        }
        assert_eq!(
            format!("{:?}", hostile_rays(9, 8)),
            format!("{:?}", hostile_rays(9, 8))
        );
    }

    #[test]
    fn hostile_vector_sets_carry_exactly_one_bad_candidate() {
        for seed in 0..16u64 {
            let (candidates, victim) = hostile_vectors(seed, 10, 7);
            let bad = |v: &Vec<f32>| v.len() != 7 || v.iter().any(|x| x.is_nan());
            assert!(bad(&candidates[victim]), "seed {seed}: victim intact");
            assert_eq!(
                candidates.iter().filter(|v| bad(v)).count(),
                1,
                "seed {seed}: exactly one victim"
            );
            assert!(!candidates[victim].is_empty(), "never empty");
        }
    }
}
