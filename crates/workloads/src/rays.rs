//! Ray-stream generators: deterministic camera and random ray batches for the traversal engines
//! and the simulator performance baselines, available as array-of-structures slices or as
//! structure-of-arrays [`RayPacket`]s.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rayflex_geometry::{sampling, Aabb, Ray, RayPacket, Vec3};

/// A `width` × `height` grid of primary camera rays: origins on the plane `z = 0` spanning
/// `extent` in x/y, all looking down `+z` with a slight deterministic jitter so neighbouring rays
/// do not trace identical paths.
#[must_use]
pub fn camera_grid(width: usize, height: usize, extent: f32) -> Vec<Ray> {
    let count = width.max(1) * height.max(1);
    (0..count)
        .map(|i| {
            let x = (i % width.max(1)) as f32 / width.max(1) as f32 - 0.5;
            let y = (i / width.max(1)) as f32 / height.max(1) as f32 - 0.5;
            let jitter = 1e-3 * ((i % 7) as f32 - 3.0);
            Ray::new(
                Vec3::new(x * extent, y * extent, 0.0),
                Vec3::new(jitter, -jitter, 1.0),
            )
        })
        .collect()
}

/// [`camera_grid`] packed into a structure-of-arrays stream.
#[must_use]
pub fn camera_grid_packet(width: usize, height: usize, extent: f32) -> RayPacket {
    RayPacket::from_rays(&camera_grid(width, height, extent))
}

/// `count` random rays with origins inside `bounds` and uniformly random directions
/// (deterministic per seed).
#[must_use]
pub fn random_rays(seed: u64, count: usize, bounds: &Aabb) -> Vec<Ray> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| sampling::ray_in_box(&mut rng, bounds))
        .collect()
}

/// [`random_rays`] packed into a structure-of-arrays stream.
#[must_use]
pub fn random_rays_packet(seed: u64, count: usize, bounds: &Aabb) -> RayPacket {
    RayPacket::from_rays(&random_rays(seed, count, bounds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camera_grids_have_the_requested_shape() {
        let rays = camera_grid(16, 9, 12.0);
        assert_eq!(rays.len(), 16 * 9);
        assert!(rays.iter().all(|r| r.dir.z == 1.0));
        assert!(rays.iter().all(|r| r.origin.x.abs() <= 6.0));
        let packet = camera_grid_packet(16, 9, 12.0);
        assert_eq!(packet.to_rays(), rays);
    }

    #[test]
    fn random_streams_are_deterministic_per_seed() {
        let bounds = Aabb::new(Vec3::splat(-10.0), Vec3::splat(10.0));
        assert_eq!(random_rays(7, 32, &bounds), random_rays(7, 32, &bounds));
        assert_ne!(random_rays(7, 32, &bounds), random_rays(8, 32, &bounds));
        assert_eq!(random_rays_packet(7, 8, &bounds).len(), 8);
    }

    #[test]
    fn degenerate_grid_sizes_are_clamped() {
        assert_eq!(camera_grid(0, 0, 1.0).len(), 1);
    }
}
