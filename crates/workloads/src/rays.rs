//! Ray-stream generators: deterministic camera, shadow, ambient-occlusion and random ray batches
//! for the traversal engines and the simulator performance baselines, available as
//! array-of-structures slices or as structure-of-arrays [`RayPacket`]s.
//!
//! The shadow and ambient-occlusion generators produce **finite-extent** rays for the any-hit
//! query: a shadow ray spans surface point to light (hit ⇒ the point is in shadow), an AO ray
//! spans a short hemisphere probe (hit ⇒ nearby geometry occludes ambient light).  Both offset
//! their extents by a small epsilon so a ray never reports its own originating surface.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rayflex_geometry::{sampling, Aabb, Ray, RayPacket, Vec3};

/// The self-intersection offset applied by the shadow and ambient-occlusion generators.
pub const SHADOW_EPSILON: f32 = 1e-3;

/// A `width` × `height` grid of primary camera rays: origins on the plane `z = 0` spanning
/// `extent` in x/y, all looking down `+z` with a slight deterministic jitter so neighbouring rays
/// do not trace identical paths.
#[must_use]
pub fn camera_grid(width: usize, height: usize, extent: f32) -> Vec<Ray> {
    let count = width.max(1) * height.max(1);
    (0..count)
        .map(|i| {
            let x = (i % width.max(1)) as f32 / width.max(1) as f32 - 0.5;
            let y = (i / width.max(1)) as f32 / height.max(1) as f32 - 0.5;
            let jitter = 1e-3 * ((i % 7) as f32 - 3.0);
            Ray::new(
                Vec3::new(x * extent, y * extent, 0.0),
                Vec3::new(jitter, -jitter, 1.0),
            )
        })
        .collect()
}

/// [`camera_grid`] packed into a structure-of-arrays stream.
#[must_use]
pub fn camera_grid_packet(width: usize, height: usize, extent: f32) -> RayPacket {
    RayPacket::from_rays(&camera_grid(width, height, extent))
}

/// `count` random rays with origins inside `bounds` and uniformly random directions
/// (deterministic per seed).
#[must_use]
pub fn random_rays(seed: u64, count: usize, bounds: &Aabb) -> Vec<Ray> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| sampling::ray_in_box(&mut rng, bounds))
        .collect()
}

/// [`random_rays`] packed into a structure-of-arrays stream.
#[must_use]
pub fn random_rays_packet(seed: u64, count: usize, bounds: &Aabb) -> RayPacket {
    RayPacket::from_rays(&random_rays(seed, count, bounds))
}

/// One shadow ray per surface point, aimed at a point light: unit direction toward the light,
/// extent `[SHADOW_EPSILON, distance - SHADOW_EPSILON]`.  An any-hit traversal reporting a hit
/// means the point is occluded from the light.  Points closer to the light than twice the
/// epsilon yield degenerate (empty-extent) rays that can never hit.
#[must_use]
pub fn shadow_rays(points: &[Vec3], light: Vec3) -> Vec<Ray> {
    points
        .iter()
        .map(|&point| {
            let to_light = light - point;
            let distance = to_light.length();
            let dir = if distance > 0.0 {
                to_light / distance
            } else {
                Vec3::new(0.0, 1.0, 0.0)
            };
            Ray::with_extent(point, dir, SHADOW_EPSILON, distance - SHADOW_EPSILON)
        })
        .collect()
}

/// Shadow rays for a `width`×`height` grid of points on the plane `y = plane_y` spanning
/// ±`extent / 2` in x/z, aimed at `light` — the query stream paired with
/// [`crate::scenes::soft_shadow`].
#[must_use]
pub fn floor_shadow_rays(
    width: usize,
    height: usize,
    extent: f32,
    plane_y: f32,
    light: Vec3,
) -> Vec<Ray> {
    let (width, height) = (width.max(1), height.max(1));
    let points: Vec<Vec3> = (0..width * height)
        .map(|i| {
            let x = ((i % width) as f32 / width as f32 - 0.5) * extent;
            let z = ((i / width) as f32 / height as f32 - 0.5) * extent;
            Vec3::new(x, plane_y, z)
        })
        .collect();
    shadow_rays(&points, light)
}

/// One shadow ray per `(point, normal)` surfel, aimed at a point light — the G-buffer pass-2
/// stream of the deferred renderer.  Each origin is nudged off the surface along its normal by
/// [`SHADOW_EPSILON`] (on top of the parametric epsilon applied by [`shadow_rays`]), so grazing
/// lights do not re-intersect the originating surface.  A surfel sitting exactly on the light
/// yields a degenerate (empty-extent) ray that can never report occlusion.
#[must_use]
pub fn surfel_shadow_rays(surfels: &[(Vec3, Vec3)], light: Vec3) -> Vec<Ray> {
    let points: Vec<Vec3> = surfels
        .iter()
        .map(|&(point, normal)| point + normal * SHADOW_EPSILON)
        .collect();
    shadow_rays(&points, light)
}

/// One mirror-reflection bounce ray per `(point, normal)` surfel: the incident direction
/// (normalised) reflected about the surfel normal, `r = d − 2 (d · n) n`, with the origin nudged
/// off the surface along the normal by [`SHADOW_EPSILON`] and a parametric start of the same
/// epsilon — the closest-hit stream of a one-bounce reflection pass.  `incident` carries the
/// direction the surfel was hit from (the primary ray direction of its pixel) and must be as
/// long as `surfels`.
///
/// A degenerate zero-length incident direction yields a ray along the normal instead of a NaN
/// direction, so no bounce ray can poison a frame.
///
/// # Panics
///
/// Panics if `incident` and `surfels` have different lengths.
#[must_use]
pub fn surfel_reflection_rays(surfels: &[(Vec3, Vec3)], incident: &[Vec3]) -> Vec<Ray> {
    assert_eq!(
        surfels.len(),
        incident.len(),
        "one incident direction per surfel"
    );
    surfels
        .iter()
        .zip(incident)
        .map(|(&(point, normal), &incoming)| {
            let length = incoming.length();
            let dir = if length > 0.0 {
                let d = incoming / length;
                d - normal * (2.0 * d.dot(normal))
            } else {
                normal
            };
            Ray::with_extent(
                point + normal * SHADOW_EPSILON,
                dir,
                SHADOW_EPSILON,
                f32::INFINITY,
            )
        })
        .collect()
}

/// `samples_per_point` ambient-occlusion probe rays per `(point, normal)` pair: directions
/// uniformly sampled on the hemisphere around the normal, extent
/// `[SHADOW_EPSILON, max_distance]` (deterministic per seed).  The occluded fraction of a
/// point's probes estimates its ambient occlusion.
#[must_use]
pub fn ambient_occlusion_rays(
    seed: u64,
    surfels: &[(Vec3, Vec3)],
    samples_per_point: usize,
    max_distance: f32,
) -> Vec<Ray> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rays = Vec::with_capacity(surfels.len() * samples_per_point);
    for &(point, normal) in surfels {
        for _ in 0..samples_per_point {
            let mut dir = sampling::unit_direction(&mut rng);
            if dir.dot(normal) < 0.0 {
                dir = -dir;
            }
            rays.push(Ray::with_extent(point, dir, SHADOW_EPSILON, max_distance));
        }
    }
    rays
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camera_grids_have_the_requested_shape() {
        let rays = camera_grid(16, 9, 12.0);
        assert_eq!(rays.len(), 16 * 9);
        assert!(rays.iter().all(|r| r.dir.z == 1.0));
        assert!(rays.iter().all(|r| r.origin.x.abs() <= 6.0));
        let packet = camera_grid_packet(16, 9, 12.0);
        assert_eq!(packet.to_rays(), rays);
    }

    #[test]
    fn random_streams_are_deterministic_per_seed() {
        let bounds = Aabb::new(Vec3::splat(-10.0), Vec3::splat(10.0));
        assert_eq!(random_rays(7, 32, &bounds), random_rays(7, 32, &bounds));
        assert_ne!(random_rays(7, 32, &bounds), random_rays(8, 32, &bounds));
        assert_eq!(random_rays_packet(7, 8, &bounds).len(), 8);
    }

    #[test]
    fn degenerate_grid_sizes_are_clamped() {
        assert_eq!(camera_grid(0, 0, 1.0).len(), 1);
    }

    #[test]
    fn shadow_rays_span_point_to_light() {
        let light = Vec3::new(0.0, 10.0, 0.0);
        let points = vec![Vec3::new(3.0, 0.0, 4.0), Vec3::new(0.0, 0.0, 0.0), light];
        let rays = shadow_rays(&points, light);
        assert_eq!(rays.len(), 3);
        for (ray, point) in rays.iter().zip(&points) {
            assert_eq!(ray.t_beg, SHADOW_EPSILON);
            assert!((ray.dir.length() - 1.0).abs() < 1e-5 || *point == light);
            // The extent stops short of the light itself.
            let distance = (light - *point).length();
            assert!(ray.t_end <= distance);
        }
        // A point at the light gets a degenerate extent that can never hit.
        assert!(rays[2].t_end < rays[2].t_beg);
    }

    #[test]
    fn floor_shadow_rays_cover_the_floor_grid() {
        let light = Vec3::new(0.0, 12.0, 0.0);
        let rays = floor_shadow_rays(8, 6, 20.0, 0.0, light);
        assert_eq!(rays.len(), 48);
        assert!(rays.iter().all(|r| r.origin.y == 0.0));
        assert!(rays.iter().all(|r| r.origin.x.abs() <= 10.0));
        assert!(rays.iter().all(|r| r.dir.y > 0.0), "all rays aim upward");
        assert_eq!(floor_shadow_rays(0, 0, 20.0, 0.0, light).len(), 1);
    }

    #[test]
    fn surfel_shadow_rays_offset_their_origins_along_the_normal() {
        let light = Vec3::new(0.0, 10.0, 0.0);
        let surfels = vec![
            (Vec3::new(2.0, 0.0, 1.0), Vec3::new(0.0, 1.0, 0.0)),
            (light, Vec3::new(0.0, 1.0, 0.0)),
        ];
        let rays = surfel_shadow_rays(&surfels, light);
        assert_eq!(rays.len(), 2);
        assert_eq!(
            rays[0].origin.y, SHADOW_EPSILON,
            "origin nudged off the surface"
        );
        assert!((rays[0].dir.length() - 1.0).abs() < 1e-5);
        // A surfel on the light: the normal offset leaves a sub-epsilon extent that never hits.
        assert!(
            rays[1].t_end < rays[1].t_beg,
            "degenerate extent can never hit"
        );
    }

    #[test]
    fn reflection_rays_mirror_the_incident_direction() {
        let surfels = vec![
            (Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)),
            (Vec3::new(3.0, 1.0, 2.0), Vec3::new(1.0, 0.0, 0.0)),
        ];
        // A 45° incident ray in the x/y plane reflects to the mirrored 45° direction.
        let incident = vec![
            Vec3::new(1.0, -1.0, 0.0),
            Vec3::ZERO, // degenerate: falls back to the normal
        ];
        let rays = surfel_reflection_rays(&surfels, &incident);
        assert_eq!(rays.len(), 2);
        let expected = Vec3::new(1.0, 1.0, 0.0).normalized();
        assert!((rays[0].dir - expected).length() < 1e-6);
        assert_eq!(
            rays[0].origin.y, SHADOW_EPSILON,
            "origin nudged off surface"
        );
        assert_eq!(rays[0].t_beg, SHADOW_EPSILON);
        assert_eq!(rays[1].dir, Vec3::new(1.0, 0.0, 0.0));
        assert!(rays.iter().all(|r| r.dir.is_finite()));
    }

    #[test]
    #[should_panic(expected = "one incident direction per surfel")]
    fn reflection_rays_reject_mismatched_lengths() {
        let _ = surfel_reflection_rays(&[(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0))], &[]);
    }

    #[test]
    fn ambient_occlusion_rays_stay_in_the_hemisphere() {
        let surfels = vec![
            (Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)),
            (Vec3::new(5.0, 1.0, -2.0), Vec3::new(1.0, 0.0, 0.0)),
        ];
        let rays = ambient_occlusion_rays(11, &surfels, 16, 3.0);
        assert_eq!(rays.len(), 32);
        for (i, ray) in rays.iter().enumerate() {
            let normal = surfels[i / 16].1;
            assert!(ray.dir.dot(normal) >= 0.0, "ray {i} leaves the surface");
            assert_eq!(ray.t_beg, SHADOW_EPSILON);
            assert_eq!(ray.t_end, 3.0);
        }
        assert_eq!(
            ambient_occlusion_rays(11, &surfels, 16, 3.0),
            ambient_occlusion_rays(11, &surfels, 16, 3.0)
        );
    }
}
