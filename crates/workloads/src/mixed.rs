//! The mixed multi-workload preset: one deterministic bundle of every query kind the fused
//! scheduler can time-multiplex over a single datapath — a closest-hit render stream, an
//! any-hit shadow stream, a k-NN distance-scoring workload and a batch of radius queries over a
//! point cloud (the candidate-collection filter).
//!
//! This is the workload the `rayflex-bench` fused suite (`BENCH_fused.json`) drives through the
//! scalar, sequential-batched and fused execution modes, and the shape the paper's unified RT
//! unit (§V-A) is meant to serve: heterogeneous queries arriving together, not one kind at a
//! time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rayflex_geometry::{Aabb, Ray, Triangle, Vec3};

use crate::{rays, scenes, vectors};

/// One deterministic mixed workload: four concurrent query streams plus the datasets they run
/// against.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedWorkload {
    /// Triangle scene of the two traversal streams (a floor with an icosphere occluder).
    pub triangles: Vec<Triangle>,
    /// Closest-hit stream: random rays through the scene volume.
    pub primary_rays: Vec<Ray>,
    /// Any-hit stream: finite-extent shadow rays from the floor toward the light.
    pub shadow_rays: Vec<Ray>,
    /// Point light the shadow stream aims at.
    pub light: Vec3,
    /// Distance stream: the query vector every candidate is scored against.
    pub query_vector: Vec<f32>,
    /// Distance stream: the candidate vectors.
    pub candidates: Vec<Vec<f32>>,
    /// Collection stream: the point cloud the radius queries filter.
    pub points: Vec<Vec3>,
    /// Sphere radius representing each point in the collection BVH.
    pub point_radius: f32,
    /// Collection stream: `(query point, radius)` pairs.
    pub radius_queries: Vec<(Vec3, f32)>,
}

/// Builds the standard mixed workload: `items` rays per traversal stream, `items` candidate
/// vectors, and `items / 32` (at least four) radius queries over an `8 × items`-point cloud —
/// capped at `items + 4096` points so the collection BVH stays proportionate when a benchmark
/// scales `items` into the tens of thousands — all deterministic per seed.
#[must_use]
pub fn mixed_workload(seed: u64, items: usize) -> MixedWorkload {
    let items = items.max(4);
    let extent = 24.0;
    let side = (items as f64).sqrt().ceil() as usize;
    let triangles = scenes::soft_shadow(2, extent);
    let light = Vec3::new(extent / 3.0, extent, -extent / 4.0);
    let bounds = Aabb::new(Vec3::splat(-extent), Vec3::splat(extent));

    let dataset = vectors::clustered_dataset(seed.wrapping_add(1), items, 24, 8, 4.0);
    let query_vector = dataset.vectors[0].clone();

    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    let points: Vec<Vec3> = (0..items.saturating_mul(8).min(items + 4096))
        .map(|_| {
            Vec3::new(
                rng.gen_range(-extent..extent),
                rng.gen_range(-extent..extent),
                rng.gen_range(-extent..extent),
            )
        })
        .collect();
    let radius_queries: Vec<(Vec3, f32)> = (0..(items / 32).max(4))
        .map(|_| {
            (
                Vec3::new(
                    rng.gen_range(-extent..extent),
                    rng.gen_range(-extent..extent),
                    rng.gen_range(-extent..extent),
                ),
                rng.gen_range(3.0f32..10.0),
            )
        })
        .collect();

    MixedWorkload {
        primary_rays: rays::random_rays(seed, items, &bounds),
        shadow_rays: rays::floor_shadow_rays(side, side, extent, 0.0, light),
        triangles,
        light,
        query_vector,
        candidates: dataset.vectors,
        points,
        point_radius: 0.01,
        radius_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_mixed_workload_is_deterministic_and_fully_populated() {
        let a = mixed_workload(7, 128);
        let b = mixed_workload(7, 128);
        assert_eq!(a, b);
        assert_ne!(a, mixed_workload(8, 128));
        assert_eq!(a.primary_rays.len(), 128);
        assert!(a.shadow_rays.len() >= 128);
        assert_eq!(a.candidates.len(), 128);
        assert_eq!(a.points.len(), 128 * 8);
        assert_eq!(a.radius_queries.len(), 4);
        assert!(!a.triangles.is_empty());
        assert!(a.radius_queries.iter().all(|&(_, r)| r > 0.0));
    }

    #[test]
    fn tiny_item_counts_are_clamped_to_a_usable_workload() {
        let w = mixed_workload(3, 0);
        assert!(w.primary_rays.len() >= 4);
        assert!(w.radius_queries.len() >= 4);
        assert!(!w.candidates.is_empty());
    }
}
