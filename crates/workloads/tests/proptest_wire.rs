//! Protocol round-trip and robustness properties of the `rayflex-server` wire format: every
//! representable request and response survives encode → decode bit-exactly, and *arbitrary*
//! byte soup — including single-bit corruptions of valid frames, the exact fault
//! `FaultKind::MalformedFrame` injects — decodes to a structured error or an equivalent value,
//! never a panic.

use proptest::prelude::*;

use rayflex_geometry::{Ray, Vec3};
use rayflex_workloads::wire::{
    decode_request, decode_response, encode_request, encode_response, RequestBody, RequestFrame,
    ResponseBody, ResponseFrame, WireHit, WireNeighbor,
};

fn finite_f32() -> impl Strategy<Value = f32> {
    -1.0e6f32..1.0e6
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (finite_f32(), finite_f32(), finite_f32()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn ray() -> impl Strategy<Value = Ray> {
    (vec3(), vec3(), 0.0f32..10.0, 0.0f32..1000.0).prop_filter_map(
        "non-zero direction",
        |(origin, dir, t_beg, t_end)| {
            (dir.length_squared() > 1e-9).then(|| Ray::with_extent(origin, dir, t_beg, t_end))
        },
    )
}

fn scene_name() -> impl Strategy<Value = String> {
    // The vendored proptest shim has no regex string strategy; build names from a charset.
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
    prop::collection::vec(0usize..CHARSET.len(), 0..24)
        .prop_map(|picks| picks.into_iter().map(|i| CHARSET[i] as char).collect())
}

fn request_body() -> impl Strategy<Value = RequestBody> {
    prop_oneof![
        prop::collection::vec(ray(), 0..12).prop_map(|rays| RequestBody::Trace { rays }),
        prop::collection::vec(ray(), 0..12).prop_map(|rays| RequestBody::AnyHit { rays }),
        (0u32..20, prop::collection::vec(finite_f32(), 0..24))
            .prop_map(|(k, query)| RequestBody::Knn { k, query }),
        (vec3(), 0.0f32..50.0).prop_map(|(c, radius)| RequestBody::Radius {
            center: [c.x, c.y, c.z],
            radius,
        }),
        Just(RequestBody::Shutdown),
    ]
}

fn request() -> impl Strategy<Value = RequestFrame> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        scene_name(),
        request_body(),
    )
        .prop_map(
            |(request_id, tenant, deadline_us, scene, body)| RequestFrame {
                request_id,
                tenant,
                deadline_us,
                scene,
                body,
            },
        )
}

fn hit() -> impl Strategy<Value = Option<WireHit>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), finite_f32()).prop_map(|(primitive, t)| Some(WireHit { primitive, t })),
    ]
}

fn response_body() -> impl Strategy<Value = ResponseBody> {
    prop_oneof![
        prop::collection::vec(hit(), 0..16).prop_map(|hits| ResponseBody::Hits { hits }),
        (prop::collection::vec(hit(), 0..16), 0u32..16).prop_map(|(hits, extra)| {
            let total = hits.len() as u32 + extra;
            ResponseBody::PartialHits { total, hits }
        }),
        prop::collection::vec(
            (any::<u64>(), finite_f32())
                .prop_map(|(index, distance)| WireNeighbor { index, distance }),
            0..16
        )
        .prop_map(|neighbors| ResponseBody::Neighbors { neighbors }),
        (any::<u8>(), prop::collection::vec(32u8..127, 0..40)).prop_map(|(code, reason)| {
            ResponseBody::Error {
                code,
                reason: reason.into_iter().map(char::from).collect(),
            }
        }),
        Just(ResponseBody::ShutdownAck),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Requests round trip bit-exactly: decode inverts encode, and re-encoding the decoded
    /// value reproduces the identical bytes (the stronger claim — no value survives only up to
    /// re-canonicalisation).
    #[test]
    fn requests_round_trip_bit_exactly(request in request()) {
        let bytes = encode_request(&request);
        let decoded = decode_request(&bytes).expect("valid frames must decode");
        prop_assert_eq!(&decoded, &request);
        prop_assert_eq!(encode_request(&decoded), bytes);
    }

    /// Responses round trip bit-exactly, same contract as requests.
    #[test]
    fn responses_round_trip_bit_exactly(
        request_id in any::<u64>(),
        body in response_body(),
    ) {
        let response = ResponseFrame { request_id, body };
        let bytes = encode_response(&response);
        let decoded = decode_response(&bytes).expect("valid frames must decode");
        prop_assert_eq!(&decoded, &response);
        prop_assert_eq!(encode_response(&decoded), bytes);
    }

    /// Arbitrary byte soup decodes to `Ok` or a structured error — never a panic, never an
    /// over-read (the decoders are total functions of the payload bytes).
    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Single-bit corruptions of a valid request — exactly what `FaultKind::MalformedFrame`
    /// injects on the wire — decode to a structured error or to some well-formed request,
    /// never a panic.  Truncations at every byte boundary (the `TruncatedFrame` shape after
    /// the transport delivered a short payload) must always be rejected or re-interpreted,
    /// equally panic-free.
    #[test]
    fn corrupted_and_truncated_requests_fail_structurally(
        request in request(),
        byte_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let good = encode_request(&request);
        if !good.is_empty() {
            let mut flipped = good.clone();
            let index = (byte_seed as usize) % flipped.len();
            flipped[index] ^= 1 << bit;
            let _ = decode_request(&flipped);

            let cut = (byte_seed as usize) % (good.len() + 1);
            if cut < good.len() {
                prop_assert!(
                    decode_request(&good[..cut]).is_err(),
                    "a proper prefix can never be a complete frame"
                );
            }
        }
    }
}
