//! # rayflex-rtl
//!
//! A cycle-level model of the elastic-pipeline building blocks used by the RayFlex datapath
//! (ISPASS 2025, §III-C): parameterised skid buffers connected by the two-phase bundled-data
//! ("valid/ready") handshake.
//!
//! The paper's key structural idea is that the entire datapath is a chain of one module class —
//! the *RayFlex Skid Buffer* — each instance of which encapsulates a chunk of (possibly stateful)
//! programmer-supplied combinational logic between two handshake interfaces.  Because the ready
//! signal is registered inside the buffer, there is no global pipeline controller and no
//! combinational ready chain: stages synchronise themselves and back-pressure propagates one
//! stage per cycle.
//!
//! This crate reproduces those semantics in software:
//!
//! * [`SkidBuffer`] — a capacity-two elastic buffer with registered `input_ready`, carrying
//!   programmer-supplied `T -> U` logic,
//! * [`ElasticPipeline`] — a chain of skid buffers sharing one intermediate data type (the
//!   Shared RayFlex Data Structure in the datapath), with format-conversion stages at the ends,
//! * [`harness`] — drivers that measure latency, initiation interval and behaviour under
//!   random back-pressure and input bubbles.
//!
//! # Example
//!
//! ```
//! use rayflex_rtl::{ElasticPipeline, SkidBuffer};
//!
//! // A three-stage pipeline computing ((x + 1) * 2) - 3 with one operation per stage.
//! let mut pipe = ElasticPipeline::new(
//!     SkidBuffer::from_fn("in", |x: &i64| x + 1),
//!     vec![SkidBuffer::from_fn("mul", |x: &i64| x * 2)],
//!     SkidBuffer::from_fn("out", |x: &i64| x - 3),
//! );
//!
//! let outputs = rayflex_rtl::harness::drive_to_completion(&mut pipe, vec![1, 2, 3]);
//! assert_eq!(outputs.into_iter().map(|o| o.value).collect::<Vec<_>>(), vec![1, 3, 5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod harness;
mod pipeline;
mod skid_buffer;

pub use pipeline::{ElasticPipeline, TickResult};
pub use skid_buffer::SkidBuffer;
