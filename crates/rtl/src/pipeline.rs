//! The elastic pipeline: a chain of skid buffers sharing one intermediate data type.

use crate::SkidBuffer;

/// The observable result of one clock cycle of an [`ElasticPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickResult<O> {
    /// Whether the datum offered at the input interface was accepted this cycle.
    pub input_accepted: bool,
    /// The datum transferred out of the pipeline this cycle, if any.
    pub output: Option<O>,
    /// The cycle number (starting from 1) that has just completed.
    pub cycle: u64,
}

/// A chain of [`SkidBuffer`] stages modelling the RayFlex elastic pipeline (paper Fig. 5b).
///
/// The first stage converts the external input format `I` into the internal shared data type `S`
/// (the Shared RayFlex Data Structure), every intermediate stage maps `S -> S`, and the last
/// stage converts `S` into the external output format `O`.  Data advances one stage per cycle
/// whenever the downstream stage has room; back-pressure propagates upstream one stage per cycle
/// through the registered ready signals of the skid buffers — exactly the self-synchronising
/// behaviour the paper relies on to avoid a centralised pipeline controller.
///
/// # Example
///
/// ```
/// use rayflex_rtl::{ElasticPipeline, SkidBuffer};
///
/// let mut pipe = ElasticPipeline::new(
///     SkidBuffer::from_fn("entry", |x: &u32| *x as u64),
///     vec![SkidBuffer::from_fn("sq", |x: &u64| x * x)],
///     SkidBuffer::from_fn("exit", |x: &u64| *x + 1),
/// );
/// assert_eq!(pipe.depth(), 3);
/// // Feed one value and run until it falls out the other end (3 cycles of latency).
/// let mut result = None;
/// let mut offered = Some(5u32);
/// while result.is_none() {
///     let tick = pipe.tick(offered.as_ref(), true);
///     if tick.input_accepted { offered = None; }
///     result = tick.output;
/// }
/// assert_eq!(result, Some(26));
/// assert_eq!(pipe.cycles(), 4); // accepted on cycle 1, emerges 3 stages later on cycle 4
/// ```
pub struct ElasticPipeline<I, S, O> {
    entry: SkidBuffer<I, S>,
    middle: Vec<SkidBuffer<S, S>>,
    exit: SkidBuffer<S, O>,
    cycle: u64,
}

impl<I, S, O> ElasticPipeline<I, S, O> {
    /// Assembles a pipeline from an entry stage, any number of intermediate stages and an exit
    /// stage.  The pipeline depth (and therefore its fixed latency in cycles when un-stalled) is
    /// `2 + middle.len()`.
    #[must_use]
    pub fn new(
        entry: SkidBuffer<I, S>,
        middle: Vec<SkidBuffer<S, S>>,
        exit: SkidBuffer<S, O>,
    ) -> Self {
        ElasticPipeline {
            entry,
            middle,
            exit,
            cycle: 0,
        }
    }

    /// Number of pipeline stages (equal to the un-stalled latency in cycles).
    #[must_use]
    pub fn depth(&self) -> usize {
        2 + self.middle.len()
    }

    /// Number of clock cycles simulated so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Number of data beats currently in flight inside the pipeline.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entry.occupancy()
            + self.middle.iter().map(SkidBuffer::occupancy).sum::<usize>()
            + self.exit.occupancy()
    }

    /// Whether the pipeline can accept a new datum at its input this cycle.
    #[must_use]
    pub fn input_ready(&self) -> bool {
        self.entry.input_ready()
    }

    /// Whether the pipeline is holding a completed datum at its output this cycle.
    #[must_use]
    pub fn output_valid(&self) -> bool {
        self.exit.output_valid()
    }

    /// Total stall cycles accumulated across all stages (a measure of back-pressure).
    #[must_use]
    pub fn total_stall_cycles(&self) -> u64 {
        self.entry.stall_cycles()
            + self
                .middle
                .iter()
                .map(SkidBuffer::stall_cycles)
                .sum::<u64>()
            + self.exit.stall_cycles()
    }

    /// Simulates one clock cycle.
    ///
    /// `input` is the datum offered at the input interface this cycle (with its valid signal
    /// implied by `Some`); `output_ready` is the external consumer's ready signal.  All fire
    /// decisions are taken from the registered state at the start of the cycle, then applied,
    /// mirroring the RTL's synchronous update.
    pub fn tick(&mut self, input: Option<&I>, output_ready: bool) -> TickResult<O> {
        self.cycle += 1;
        let stages = self.middle.len();

        // --- Phase 1: sample the registered handshake signals of every stage. ---
        let entry_valid = self.entry.output_valid();
        let entry_ready = self.entry.input_ready();
        let middle_valid: Vec<bool> = self.middle.iter().map(SkidBuffer::output_valid).collect();
        let middle_ready: Vec<bool> = self.middle.iter().map(SkidBuffer::input_ready).collect();
        let exit_valid = self.exit.output_valid();
        let exit_ready = self.exit.input_ready();

        // Fire conditions for each interface.
        let fire_input = input.is_some() && entry_ready;
        // Interface feeding middle[k] comes from middle[k-1] (or the entry stage for k == 0).
        let fire_into_middle: Vec<bool> = (0..stages)
            .map(|k| {
                let upstream_valid = if k == 0 {
                    entry_valid
                } else {
                    middle_valid[k - 1]
                };
                upstream_valid && middle_ready[k]
            })
            .collect();
        let exit_upstream_valid = if stages == 0 {
            entry_valid
        } else {
            middle_valid[stages - 1]
        };
        let fire_into_exit = exit_upstream_valid && exit_ready;
        let fire_output = exit_valid && output_ready;

        // --- Phase 2: apply the transfers, downstream first so each pop feeds one push. ---
        let output = if fire_output {
            Some(self.exit.pop())
        } else {
            None
        };
        if exit_valid && !fire_output {
            self.exit.note_stall();
        }

        let mut popped_from_middle = vec![false; stages];
        let mut popped_from_entry = false;

        if fire_into_exit {
            let datum = if stages == 0 {
                popped_from_entry = true;
                self.entry.pop()
            } else {
                popped_from_middle[stages - 1] = true;
                self.middle[stages - 1].pop()
            };
            self.exit.push(&datum);
        }

        for k in (0..stages).rev() {
            if fire_into_middle[k] {
                let datum = if k == 0 {
                    popped_from_entry = true;
                    self.entry.pop()
                } else {
                    popped_from_middle[k - 1] = true;
                    self.middle[k - 1].pop()
                };
                self.middle[k].push(&datum);
            }
        }

        if fire_input {
            let Some(request) = input else {
                unreachable!("fire_input implies input present");
            };
            self.entry.push(request);
        }

        // Stall bookkeeping for stages whose valid output was not consumed this cycle.
        if entry_valid && !popped_from_entry {
            self.entry.note_stall();
        }
        for k in 0..stages {
            if middle_valid[k] && !popped_from_middle[k] {
                self.middle[k].note_stall();
            }
        }

        TickResult {
            input_accepted: fire_input,
            output,
            cycle: self.cycle,
        }
    }

    /// Runs the pipeline with no new input until every in-flight datum has drained, collecting
    /// the outputs (the external consumer is always ready).  Gives up after `max_cycles`.
    pub fn drain(&mut self, max_cycles: u64) -> Vec<O> {
        let mut outputs = Vec::new();
        let mut waited = 0;
        while self.occupancy() > 0 && waited < max_cycles {
            let tick = self.tick(None, true);
            outputs.extend(tick.output);
            waited += 1;
        }
        outputs
    }
}

impl<I, S, O> core::fmt::Debug for ElasticPipeline<I, S, O> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ElasticPipeline")
            .field("depth", &self.depth())
            .field("cycle", &self.cycle)
            .field("occupancy", &self.occupancy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder_pipeline(stage_count: usize) -> ElasticPipeline<u64, u64, u64> {
        // Each stage adds 1; the result of an n-stage pipeline is input + n.
        let entry = SkidBuffer::from_fn("entry", |x: &u64| x + 1);
        let middle = (0..stage_count.saturating_sub(2))
            .map(|i| SkidBuffer::from_fn(format!("mid{i}"), |x: &u64| x + 1))
            .collect();
        let exit = SkidBuffer::from_fn("exit", |x: &u64| x + 1);
        ElasticPipeline::new(entry, middle, exit)
    }

    #[test]
    fn latency_equals_depth_when_unstalled() {
        for depth in [2usize, 3, 5, 11] {
            let mut pipe = adder_pipeline(depth);
            assert_eq!(pipe.depth(), depth);
            let mut issue_cycle = None;
            let mut done_cycle = None;
            let mut offered = Some(100u64);
            for _ in 0..(depth as u64 + 5) {
                let tick = pipe.tick(offered.as_ref(), true);
                if tick.input_accepted {
                    issue_cycle = Some(tick.cycle);
                    offered = None;
                }
                if let Some(v) = tick.output {
                    assert_eq!(v, 100 + depth as u64);
                    done_cycle = Some(tick.cycle);
                    break;
                }
            }
            let latency = done_cycle.unwrap() - issue_cycle.unwrap();
            assert_eq!(latency, depth as u64, "depth {depth}");
        }
    }

    #[test]
    fn throughput_is_one_per_cycle() {
        let mut pipe = adder_pipeline(11);
        let inputs: Vec<u64> = (0..1000).collect();
        let mut outputs = Vec::new();
        let mut next = 0usize;
        let mut cycles = 0u64;
        while outputs.len() < inputs.len() {
            let offered = inputs.get(next);
            let tick = pipe.tick(offered, true);
            if tick.input_accepted {
                next += 1;
            }
            outputs.extend(tick.output);
            cycles += 1;
            assert!(cycles < 3000, "pipeline wedged");
        }
        assert_eq!(outputs, inputs.iter().map(|x| x + 11).collect::<Vec<_>>());
        // 1000 items through an 11-deep pipeline at II=1: the last result appears 11 cycles
        // after the last of the 1000 back-to-back issues.
        assert_eq!(cycles, 11 + 1000);
    }

    #[test]
    fn results_stay_in_order_under_backpressure() {
        let mut pipe = adder_pipeline(5);
        let inputs: Vec<u64> = (0..200).collect();
        let mut outputs = Vec::new();
        let mut next = 0usize;
        let mut cycle = 0u64;
        while outputs.len() < inputs.len() {
            cycle += 1;
            // Consumer ready only two cycles out of three.
            let ready = !cycle.is_multiple_of(3);
            let tick = pipe.tick(inputs.get(next), ready);
            if tick.input_accepted {
                next += 1;
            }
            outputs.extend(tick.output);
            assert!(cycle < 10_000, "pipeline wedged");
        }
        assert_eq!(outputs, inputs.iter().map(|x| x + 5).collect::<Vec<_>>());
        assert!(
            pipe.total_stall_cycles() > 0,
            "back-pressure must be visible"
        );
    }

    #[test]
    fn bubbles_do_not_corrupt_the_stream() {
        let mut pipe = adder_pipeline(4);
        let inputs: Vec<u64> = (0..50).collect();
        let mut outputs = Vec::new();
        let mut next = 0usize;
        let mut cycle = 0u64;
        while outputs.len() < inputs.len() {
            cycle += 1;
            // Offer input only every other cycle (bubbles in the stream).
            let offered = if cycle.is_multiple_of(2) {
                inputs.get(next)
            } else {
                None
            };
            let tick = pipe.tick(offered, true);
            if tick.input_accepted {
                next += 1;
            }
            outputs.extend(tick.output);
            assert!(cycle < 10_000, "pipeline wedged");
        }
        assert_eq!(outputs, inputs.iter().map(|x| x + 4).collect::<Vec<_>>());
    }

    #[test]
    fn occupancy_never_exceeds_two_per_stage() {
        let mut pipe = adder_pipeline(3);
        let mut offered: u64 = 0;
        for cycle in 0..100u64 {
            let ready = cycle % 4 == 0; // heavily stalled consumer
            let tick = pipe.tick(Some(&offered), ready);
            if tick.input_accepted {
                offered += 1;
            }
            assert!(pipe.occupancy() <= 2 * pipe.depth());
        }
        // Fully stalled pipeline must eventually refuse input.
        let mut refused = false;
        for _ in 0..20 {
            let tick = pipe.tick(Some(&offered), false);
            if !tick.input_accepted {
                refused = true;
            }
        }
        assert!(refused);
    }

    #[test]
    fn drain_flushes_everything() {
        let mut pipe = adder_pipeline(6);
        for i in 0..6u64 {
            pipe.tick(Some(&i), false);
        }
        assert!(pipe.occupancy() > 0);
        let outputs = pipe.drain(100);
        assert_eq!(outputs.len(), 6);
        assert_eq!(pipe.occupancy(), 0);
        // Order preserved.
        assert_eq!(outputs, (0..6u64).map(|x| x + 6).collect::<Vec<_>>());
    }

    #[test]
    fn zero_middle_stage_pipeline_works() {
        let mut pipe = ElasticPipeline::new(
            SkidBuffer::from_fn("in", |x: &u32| u64::from(*x) * 3),
            Vec::new(),
            SkidBuffer::from_fn("out", |x: &u64| x + 1),
        );
        assert_eq!(pipe.depth(), 2);
        let mut out = None;
        let mut offered = Some(7u32);
        for _ in 0..5 {
            let tick = pipe.tick(offered.as_ref(), true);
            if tick.input_accepted {
                offered = None;
            }
            if tick.output.is_some() {
                out = tick.output;
                break;
            }
        }
        assert_eq!(out, Some(22));
    }
}
