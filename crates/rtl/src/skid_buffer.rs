//! The parameterised RayFlex skid buffer.

/// A cycle-level model of the *RayFlex Skid Buffer* module (paper Fig. 5a).
///
/// The module couples a chunk of programmer-supplied logic (a possibly stateful `T -> U`
/// transformation) with a two-entry elastic buffer.  Its `input_ready` signal is a registered
/// function of the buffer occupancy at the start of the cycle, so connecting many skid buffers in
/// series never creates a combinational ready chain: back-pressure propagates one stage per cycle
/// while the skid register absorbs the in-flight datum.
///
/// In steady state with a ready consumer the buffer sustains one transfer per cycle and adds
/// exactly one cycle of latency, which is how the 11-stage RayFlex pipeline reaches its
/// fixed 11-cycle latency at an initiation interval of one.
///
/// # Example
///
/// ```
/// use rayflex_rtl::SkidBuffer;
///
/// let mut buf = SkidBuffer::from_fn("double", |x: &u32| x * 2);
/// // Cycle 1: push a value; nothing is visible at the output yet.
/// let (accepted, out) = buf.step(Some(&21), true);
/// assert!(accepted);
/// assert!(out.is_none());
/// // Cycle 2: the transformed value emerges.
/// let (_, out) = buf.step(None, true);
/// assert_eq!(out, Some(42));
/// ```
pub struct SkidBuffer<T, U> {
    name: String,
    logic: Box<dyn FnMut(&T) -> U + Send>,
    /// The value currently presented at the output interface.
    main: Option<U>,
    /// The overflow ("skid") register that absorbs one datum when the consumer stalls.
    skid: Option<U>,
    accepted: u64,
    emitted: u64,
    stall_cycles: u64,
}

impl<T, U> SkidBuffer<T, U> {
    /// Creates a skid buffer around a (possibly stateful) logic closure.
    #[must_use]
    pub fn from_fn(name: impl Into<String>, logic: impl FnMut(&T) -> U + Send + 'static) -> Self {
        SkidBuffer {
            name: name.into(),
            logic: Box::new(logic),
            main: None,
            skid: None,
            accepted: 0,
            emitted: 0,
            stall_cycles: 0,
        }
    }

    /// Creates a pass-through stage that clones its input, modelling a blank pipeline stage
    /// (e.g. stages 5–9 of the ray-box operation in Fig. 4c).
    #[must_use]
    pub fn passthrough(name: impl Into<String>) -> Self
    where
        T: Clone + Into<U>,
    {
        SkidBuffer::from_fn(name, |x: &T| x.clone().into())
    }

    /// The instance name (used in reports and debugging).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered `input_ready` signal for the current cycle: true unless both the main and
    /// the skid register are occupied.
    #[must_use]
    pub fn input_ready(&self) -> bool {
        self.occupancy() < 2
    }

    /// The `output_valid` signal for the current cycle.
    #[must_use]
    pub fn output_valid(&self) -> bool {
        self.main.is_some()
    }

    /// Number of data beats currently held (0, 1 or 2).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        usize::from(self.main.is_some()) + usize::from(self.skid.is_some())
    }

    /// Borrows the datum currently presented at the output, if any.
    #[must_use]
    pub fn peek_output(&self) -> Option<&U> {
        self.main.as_ref()
    }

    /// Total transfers accepted at the input interface so far.
    #[must_use]
    pub fn accepted_count(&self) -> u64 {
        self.accepted
    }

    /// Total transfers emitted at the output interface so far.
    #[must_use]
    pub fn emitted_count(&self) -> u64 {
        self.emitted
    }

    /// Cycles in which valid output data was held back by a stalled consumer.
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Consumes the datum at the output interface (the downstream "fire").
    ///
    /// The caller must only invoke this when [`SkidBuffer::output_valid`] was true at the start
    /// of the cycle; the datum held in the skid register (if any) is promoted to the output.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn pop(&mut self) -> U {
        let front = self
            .main
            .take()
            .unwrap_or_else(|| panic!("popping an empty skid buffer `{}`", self.name));
        self.main = self.skid.take();
        self.emitted += 1;
        front
    }

    /// Accepts a datum at the input interface (the upstream "fire"), passing it through the
    /// programmer-supplied logic and storing the result.
    ///
    /// The caller must only invoke this when [`SkidBuffer::input_ready`] was true at the start of
    /// the cycle.
    ///
    /// # Panics
    ///
    /// Panics if both the main and the skid register are already occupied.
    pub fn push(&mut self, input: &T) {
        assert!(
            self.occupancy() < 2,
            "pushing a full skid buffer `{}`",
            self.name
        );
        let value = (self.logic)(input);
        if self.main.is_none() {
            self.main = Some(value);
        } else {
            self.skid = Some(value);
        }
        self.accepted += 1;
    }

    /// Records that valid output data was held this cycle because the consumer stalled.
    pub fn note_stall(&mut self) {
        self.stall_cycles += 1;
    }

    /// Drives the buffer standalone for one cycle: offers `input` (if any) and a consumer that is
    /// ready when `output_ready` is true.  Returns whether the input was accepted and the datum
    /// transferred to the consumer this cycle, if any.
    pub fn step(&mut self, input: Option<&T>, output_ready: bool) -> (bool, Option<U>) {
        let fire_out = self.output_valid() && output_ready;
        let fire_in = input.is_some() && self.input_ready();
        let held = self.output_valid() && !fire_out;
        let output = if fire_out { Some(self.pop()) } else { None };
        if held {
            self.note_stall();
        }
        if fire_in {
            let Some(datum) = input else {
                unreachable!("fire_in implies input present");
            };
            self.push(datum);
        }
        (fire_in, output)
    }
}

impl<T, U> core::fmt::Debug for SkidBuffer<T, U> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SkidBuffer")
            .field("name", &self.name)
            .field("occupancy", &self.occupancy())
            .field("accepted", &self.accepted)
            .field("emitted", &self.emitted)
            .field("stall_cycles", &self.stall_cycles)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer_is_ready_and_not_valid() {
        let buf = SkidBuffer::from_fn("t", |x: &u32| *x);
        assert!(buf.input_ready());
        assert!(!buf.output_valid());
        assert_eq!(buf.occupancy(), 0);
        assert_eq!(buf.name(), "t");
    }

    #[test]
    fn single_transfer_takes_one_cycle() {
        let mut buf = SkidBuffer::from_fn("t", |x: &u32| x + 1);
        let (accepted, out) = buf.step(Some(&1), true);
        assert!(accepted);
        assert_eq!(out, None);
        let (_, out) = buf.step(None, true);
        assert_eq!(out, Some(2));
        assert_eq!(buf.occupancy(), 0);
    }

    #[test]
    fn sustains_one_transfer_per_cycle() {
        let mut buf = SkidBuffer::from_fn("t", |x: &u64| x * 10);
        let mut outputs = Vec::new();
        for i in 0..100u64 {
            let (accepted, out) = buf.step(Some(&i), true);
            assert!(accepted, "back-to-back transfers must never stall");
            outputs.extend(out);
        }
        // Drain.
        loop {
            let (_, out) = buf.step(None, true);
            match out {
                Some(v) => outputs.push(v),
                None => break,
            }
        }
        assert_eq!(outputs, (0..100u64).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(buf.accepted_count(), 100);
        assert_eq!(buf.emitted_count(), 100);
        assert_eq!(buf.stall_cycles(), 0);
    }

    #[test]
    fn skid_register_absorbs_one_datum_on_stall() {
        let mut buf = SkidBuffer::from_fn("t", |x: &u32| *x);
        // Fill main.
        buf.step(Some(&1), false);
        assert!(buf.input_ready(), "skid register still has room");
        // Fill skid while the consumer stalls.
        let (accepted, _) = buf.step(Some(&2), false);
        assert!(accepted);
        assert_eq!(buf.occupancy(), 2);
        assert!(
            !buf.input_ready(),
            "completely full buffer must deassert ready"
        );
        // A third push is refused.
        let (accepted, _) = buf.step(Some(&3), false);
        assert!(!accepted);
        // Draining returns the data in order.
        let (_, a) = buf.step(None, true);
        let (_, b) = buf.step(None, true);
        assert_eq!((a, b), (Some(1), Some(2)));
        assert!(buf.stall_cycles() > 0);
    }

    #[test]
    fn stateful_logic_accumulates_across_beats() {
        let mut sum = 0u64;
        let mut buf = SkidBuffer::from_fn("acc", move |x: &u64| {
            sum += x;
            sum
        });
        let inputs = [5u64, 7, 8];
        let mut outputs = Vec::new();
        for value in &inputs {
            let (_, out) = buf.step(Some(value), true);
            outputs.extend(out);
        }
        for _ in 0..4 {
            let (_, out) = buf.step(None, true);
            outputs.extend(out);
        }
        assert_eq!(outputs, vec![5, 12, 20]);
    }

    #[test]
    fn passthrough_copies_data_unchanged() {
        let mut buf: SkidBuffer<u32, u32> = SkidBuffer::passthrough("blank");
        buf.step(Some(&7), true);
        let (_, out) = buf.step(None, true);
        assert_eq!(out, Some(7));
    }

    #[test]
    #[should_panic(expected = "pushing a full skid buffer")]
    fn pushing_a_full_buffer_panics() {
        let mut buf = SkidBuffer::from_fn("t", |x: &u32| *x);
        buf.push(&1);
        buf.push(&2);
        buf.push(&3);
    }

    #[test]
    #[should_panic(expected = "popping an empty skid buffer")]
    fn popping_an_empty_buffer_panics() {
        let mut buf = SkidBuffer::from_fn("t", |x: &u32| *x);
        let _ = buf.pop();
    }

    #[test]
    fn debug_output_reports_occupancy() {
        let mut buf = SkidBuffer::from_fn("stage7", |x: &u32| *x);
        buf.push(&9);
        let text = format!("{buf:?}");
        assert!(text.contains("stage7"));
        assert!(text.contains("occupancy: 1"));
    }
}
