//! Drive harnesses for elastic pipelines: latency, initiation-interval and robustness
//! measurements under configurable input bubbles and output back-pressure.

use crate::ElasticPipeline;

/// A completed datum together with the cycles at which it entered and left the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion<O> {
    /// The pipeline output value.
    pub value: O,
    /// Cycle (1-based) at which the corresponding input was accepted.
    pub issue_cycle: u64,
    /// Cycle (1-based) at which the output was transferred to the consumer.
    pub completion_cycle: u64,
}

impl<O> Completion<O> {
    /// Latency of this datum in cycles: the number of clock edges between the input being
    /// accepted and the output being transferred (an N-stage register pipeline has latency N).
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.completion_cycle - self.issue_cycle
    }
}

/// Timing statistics for a driven run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingReport {
    /// Number of data processed.
    pub items: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Minimum observed per-item latency.
    pub min_latency: u64,
    /// Maximum observed per-item latency.
    pub max_latency: u64,
    /// Smallest gap, in cycles, between consecutive accepted inputs (the achieved initiation
    /// interval under the driven conditions).
    pub min_initiation_interval: u64,
}

/// A pattern of external stalls applied to the pipeline's consumer or producer side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallPattern {
    /// Never stall.
    None,
    /// Stall every `n`-th cycle (n ≥ 2).
    EveryNth(u64),
    /// Stall pseudo-randomly with probability `percent`/100, from a deterministic seed.
    Random {
        /// Stall probability in percent (0–100).
        percent: u32,
        /// Seed for the xorshift generator so runs are reproducible.
        seed: u64,
    },
}

impl StallPattern {
    /// Returns `true` if the interface should stall on the given cycle.
    #[must_use]
    pub fn stalls_at(&self, cycle: u64) -> bool {
        match *self {
            StallPattern::None => false,
            StallPattern::EveryNth(n) => n >= 2 && cycle.is_multiple_of(n),
            StallPattern::Random { percent, seed } => {
                // A small splitmix/xorshift hash keeps the harness dependency-free and
                // deterministic across runs.
                let mut x = cycle.wrapping_add(seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^= x >> 31;
                (x % 100) < u64::from(percent.min(100))
            }
        }
    }
}

/// Feeds `inputs` into the pipeline as fast as it will accept them, with an always-ready
/// consumer, and returns the completions in order.
pub fn drive_to_completion<I, S, O>(
    pipeline: &mut ElasticPipeline<I, S, O>,
    inputs: Vec<I>,
) -> Vec<Completion<O>> {
    drive_with_stalls(pipeline, inputs, StallPattern::None, StallPattern::None).0
}

/// Feeds `inputs` into the pipeline subject to an input bubble pattern and an output
/// back-pressure pattern, returning the completions and a timing report.
///
/// # Panics
///
/// Panics if the pipeline fails to make progress for an extended period (a wedged pipeline is a
/// bug in the stage logic or the handshake model, and hiding it would mask the error).
pub fn drive_with_stalls<I, S, O>(
    pipeline: &mut ElasticPipeline<I, S, O>,
    inputs: Vec<I>,
    input_bubbles: StallPattern,
    output_backpressure: StallPattern,
) -> (Vec<Completion<O>>, TimingReport) {
    let total = inputs.len();
    let mut issue_cycles = Vec::with_capacity(total);
    let mut completions = Vec::with_capacity(total);
    let mut next_input = 0usize;
    let mut idle_cycles = 0u64;
    let start_cycle = pipeline.cycles();

    while completions.len() < total {
        let cycle = pipeline.cycles() + 1;
        let offer_input = next_input < total && !input_bubbles.stalls_at(cycle);
        let consumer_ready = !output_backpressure.stalls_at(cycle);
        let offered = if offer_input {
            inputs.get(next_input)
        } else {
            None
        };
        let tick = pipeline.tick(offered, consumer_ready);
        let mut progressed = false;
        if tick.input_accepted {
            issue_cycles.push(tick.cycle);
            next_input += 1;
            progressed = true;
        }
        if let Some(value) = tick.output {
            let index = completions.len();
            completions.push(Completion {
                value,
                issue_cycle: issue_cycles[index],
                completion_cycle: tick.cycle,
            });
            progressed = true;
        }
        if progressed {
            idle_cycles = 0;
        } else {
            idle_cycles += 1;
            assert!(
                idle_cycles < 1_000_000,
                "pipeline made no progress for 1M cycles: wedged"
            );
        }
    }

    let cycles = pipeline.cycles() - start_cycle;
    let min_latency = completions
        .iter()
        .map(Completion::latency)
        .min()
        .unwrap_or(0);
    let max_latency = completions
        .iter()
        .map(Completion::latency)
        .max()
        .unwrap_or(0);
    let min_ii = issue_cycles
        .windows(2)
        .map(|w| w[1] - w[0])
        .min()
        .unwrap_or(0);
    (
        completions,
        TimingReport {
            items: total,
            cycles,
            min_latency,
            max_latency,
            min_initiation_interval: min_ii,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SkidBuffer;

    fn pipeline(depth: usize) -> ElasticPipeline<u64, u64, u64> {
        let entry = SkidBuffer::from_fn("entry", |x: &u64| *x);
        let middle = (0..depth - 2)
            .map(|i| SkidBuffer::from_fn(format!("s{i}"), |x: &u64| *x))
            .collect();
        let exit = SkidBuffer::from_fn("exit", |x: &u64| *x);
        ElasticPipeline::new(entry, middle, exit)
    }

    #[test]
    fn drive_to_completion_preserves_order_and_measures_latency() {
        let mut pipe = pipeline(11);
        let completions = drive_to_completion(&mut pipe, (0..64u64).collect());
        assert_eq!(completions.len(), 64);
        for (i, c) in completions.iter().enumerate() {
            assert_eq!(c.value, i as u64);
            assert_eq!(c.latency(), 11, "fixed latency when un-stalled");
        }
    }

    #[test]
    fn timing_report_shows_ii_of_one_when_unstalled() {
        let mut pipe = pipeline(11);
        let (_, report) = drive_with_stalls(
            &mut pipe,
            (0..100u64).collect(),
            StallPattern::None,
            StallPattern::None,
        );
        assert_eq!(report.items, 100);
        assert_eq!(report.min_initiation_interval, 1);
        assert_eq!(report.min_latency, 11);
        assert_eq!(report.max_latency, 11);
        // 100 items at II=1 through 11 stages: the last output appears at cycle 11 + 100.
        assert_eq!(report.cycles, 11 + 100);
    }

    #[test]
    fn random_backpressure_preserves_results() {
        let mut pipe = pipeline(7);
        let inputs: Vec<u64> = (0..256).collect();
        let (completions, report) = drive_with_stalls(
            &mut pipe,
            inputs.clone(),
            StallPattern::Random {
                percent: 30,
                seed: 7,
            },
            StallPattern::Random {
                percent: 30,
                seed: 99,
            },
        );
        assert_eq!(
            completions.iter().map(|c| c.value).collect::<Vec<_>>(),
            inputs
        );
        assert!(report.max_latency >= 7);
        assert!(report.cycles > 256);
    }

    #[test]
    fn every_nth_stall_pattern_behaves() {
        let p = StallPattern::EveryNth(3);
        assert!(p.stalls_at(3));
        assert!(p.stalls_at(6));
        assert!(!p.stalls_at(4));
        assert!(!StallPattern::None.stalls_at(5));
        // A degenerate EveryNth(1) never stalls rather than dead-locking the harness.
        assert!(!StallPattern::EveryNth(1).stalls_at(10));
    }

    #[test]
    fn random_pattern_is_deterministic_for_a_seed() {
        let a = StallPattern::Random {
            percent: 50,
            seed: 42,
        };
        let b = StallPattern::Random {
            percent: 50,
            seed: 42,
        };
        for cycle in 0..1000 {
            assert_eq!(a.stalls_at(cycle), b.stalls_at(cycle));
        }
        let hits = (0..10_000).filter(|&c| a.stalls_at(c)).count();
        // Roughly half the cycles should stall (loose bounds to stay robust).
        assert!(hits > 3_000 && hits < 7_000, "hits = {hits}");
    }
}
