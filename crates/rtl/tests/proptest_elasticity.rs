//! Property-based tests of the elastic-pipeline handshake: for arbitrary pipeline depths, input
//! bubble patterns and consumer back-pressure patterns, data is never lost, duplicated or
//! re-ordered, per-stage occupancy never exceeds the two-entry skid capacity, and the un-stalled
//! latency always equals the depth.

use proptest::prelude::*;

use rayflex_rtl::harness::{drive_with_stalls, StallPattern};
use rayflex_rtl::{ElasticPipeline, SkidBuffer};

fn identity_pipeline(depth: usize) -> ElasticPipeline<u64, u64, u64> {
    assert!(depth >= 2);
    let entry = SkidBuffer::from_fn("entry", |x: &u64| *x);
    let middle = (0..depth - 2)
        .map(|i| SkidBuffer::from_fn(format!("mid{i}"), |x: &u64| *x))
        .collect();
    let exit = SkidBuffer::from_fn("exit", |x: &u64| *x);
    ElasticPipeline::new(entry, middle, exit)
}

fn stall_pattern() -> impl Strategy<Value = StallPattern> {
    prop_oneof![
        Just(StallPattern::None),
        (2u64..7).prop_map(StallPattern::EveryNth),
        (0u32..80, any::<u64>()).prop_map(|(percent, seed)| StallPattern::Random { percent, seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn data_is_never_lost_duplicated_or_reordered(
        depth in 2usize..16,
        item_count in 1usize..200,
        input_bubbles in stall_pattern(),
        backpressure in stall_pattern(),
    ) {
        let mut pipeline = identity_pipeline(depth);
        let inputs: Vec<u64> = (0..item_count as u64).collect();
        let (completions, report) =
            drive_with_stalls(&mut pipeline, inputs.clone(), input_bubbles, backpressure);
        let outputs: Vec<u64> = completions.iter().map(|c| c.value).collect();
        prop_assert_eq!(outputs, inputs);
        prop_assert_eq!(report.items, item_count);
        // Latency can never be shorter than the register depth.
        prop_assert!(report.min_latency >= depth as u64);
        // Completion cycles are strictly increasing (one output port).
        for pair in completions.windows(2) {
            prop_assert!(pair[0].completion_cycle < pair[1].completion_cycle);
        }
    }

    #[test]
    fn unstalled_runs_achieve_fixed_latency_and_full_throughput(
        depth in 2usize..16,
        item_count in 1usize..200,
    ) {
        let mut pipeline = identity_pipeline(depth);
        let inputs: Vec<u64> = (0..item_count as u64).collect();
        let (completions, report) =
            drive_with_stalls(&mut pipeline, inputs, StallPattern::None, StallPattern::None);
        prop_assert!(completions.iter().all(|c| c.latency() == depth as u64));
        prop_assert_eq!(report.min_initiation_interval, u64::from(item_count > 1));
        prop_assert_eq!(report.cycles, depth as u64 + item_count as u64);
        prop_assert_eq!(pipeline.total_stall_cycles(), 0);
    }

    #[test]
    fn occupancy_is_bounded_by_two_entries_per_stage(
        depth in 2usize..10,
        ready_pattern in prop::collection::vec(any::<bool>(), 20..120),
    ) {
        let mut pipeline = identity_pipeline(depth);
        let mut next = 0u64;
        for &ready in &ready_pattern {
            let tick = pipeline.tick(Some(&next), ready);
            if tick.input_accepted {
                next += 1;
            }
            prop_assert!(pipeline.occupancy() <= 2 * pipeline.depth());
        }
        // Everything still in flight drains and arrives in order.
        let drained = pipeline.drain(10_000);
        let mut all: Vec<u64> = Vec::new();
        all.extend(drained);
        prop_assert!(all.windows(2).all(|w| w[0] < w[1]));
    }
}
