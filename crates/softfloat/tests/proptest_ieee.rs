//! Property-based tests: RecF32 arithmetic must match native IEEE binary32 arithmetic exactly.

use proptest::prelude::*;
use rayflex_softfloat::{cmp, RecF32};

/// Strategy producing arbitrary f32 bit patterns, including subnormals, infinities and NaNs.
fn any_f32_bits() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

/// Strategy biased towards "geometric" magnitudes similar to ray-tracing coordinates.
fn scene_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-1000.0f32..1000.0),
        (-1.0f32..1.0),
        Just(0.0f32),
        Just(-0.0f32),
        (-1e-6f32..1e-6),
    ]
}

fn assert_same(expect: f32, got: RecF32, what: &str, x: f32, y: f32) {
    if expect.is_nan() {
        assert!(got.is_nan(), "{what}({x}, {y}): expected NaN, got {got:?}");
    } else {
        assert_eq!(
            got.to_f32().to_bits(),
            expect.to_bits(),
            "{what}({x:e} [{:#010x}], {y:e} [{:#010x}]): expected {expect:e}, got {:e}",
            x.to_bits(),
            y.to_bits(),
            got.to_f32()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn roundtrip_is_lossless(x in any_f32_bits()) {
        let r = RecF32::from_f32(x);
        if x.is_nan() {
            prop_assert!(r.to_f32().is_nan());
        } else {
            prop_assert_eq!(r.to_f32().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn add_matches_native(x in any_f32_bits(), y in any_f32_bits()) {
        assert_same(x + y, RecF32::from_f32(x).add(RecF32::from_f32(y)), "add", x, y);
    }

    #[test]
    fn sub_matches_native(x in any_f32_bits(), y in any_f32_bits()) {
        assert_same(x - y, RecF32::from_f32(x).sub(RecF32::from_f32(y)), "sub", x, y);
    }

    #[test]
    fn mul_matches_native(x in any_f32_bits(), y in any_f32_bits()) {
        assert_same(x * y, RecF32::from_f32(x).mul(RecF32::from_f32(y)), "mul", x, y);
    }

    #[test]
    fn add_is_commutative(x in any_f32_bits(), y in any_f32_bits()) {
        let a = RecF32::from_f32(x);
        let b = RecF32::from_f32(y);
        let ab = a.add(b);
        let ba = b.add(a);
        if ab.is_nan() {
            prop_assert!(ba.is_nan());
        } else {
            prop_assert_eq!(ab.to_bits(), ba.to_bits());
        }
    }

    #[test]
    fn mul_is_commutative(x in any_f32_bits(), y in any_f32_bits()) {
        let a = RecF32::from_f32(x);
        let b = RecF32::from_f32(y);
        let ab = a.mul(b);
        let ba = b.mul(a);
        if ab.is_nan() {
            prop_assert!(ba.is_nan());
        } else {
            prop_assert_eq!(ab.to_bits(), ba.to_bits());
        }
    }

    #[test]
    fn comparisons_match_native(x in any_f32_bits(), y in any_f32_bits()) {
        let a = RecF32::from_f32(x);
        let b = RecF32::from_f32(y);
        prop_assert_eq!(cmp::lt(a, b), x < y);
        prop_assert_eq!(cmp::le(a, b), x <= y);
        prop_assert_eq!(cmp::gt(a, b), x > y);
        prop_assert_eq!(cmp::ge(a, b), x >= y);
        prop_assert_eq!(cmp::eq(a, b), x == y);
    }

    #[test]
    fn scene_arithmetic_chains_match_native(
        a in scene_f32(), b in scene_f32(), c in scene_f32(), d in scene_f32()
    ) {
        // A fused-looking chain rounded at every step, as the datapath computes (a - b) * c + d.
        let native = ((a - b) * c) + d;
        let rec = RecF32::from_f32(a)
            .sub(RecF32::from_f32(b))
            .mul(RecF32::from_f32(c))
            .add(RecF32::from_f32(d));
        if native.is_nan() {
            prop_assert!(rec.is_nan());
        } else {
            prop_assert_eq!(rec.to_f32().to_bits(), native.to_bits());
        }
    }

    #[test]
    fn packed_width_never_exceeds_33_bits(x in any_f32_bits()) {
        prop_assert_eq!(RecF32::from_f32(x).to_bits() >> 33, 0);
    }
}
