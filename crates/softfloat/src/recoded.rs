//! The recoded 33-bit floating-point value type.

use crate::round;

/// Exponent bias of the recoded format.
///
/// The recoded exponent stores `unbiased_exponent + REC_BIAS`.  The bias is chosen so that every
/// IEEE binary32 value — including normalised subnormals down to 2^-149 — fits in the 9-bit field
/// with headroom for the special codes at the top of the range.
const REC_BIAS: i32 = 320;

/// Exponent field value encoding zero.
const EXP_ZERO: u32 = 0;
/// Exponent field value encoding infinity.
const EXP_INF: u32 = 0x1FE;
/// Exponent field value encoding NaN.
const EXP_NAN: u32 = 0x1FF;

/// A floating-point value in the RayFlex internal *recoded* format.
///
/// The format is inspired by Berkeley HardFloat's `recFN` encoding: 1 sign bit, a 9-bit exponent
/// (one bit wider than binary32) and a 23-bit fraction, for 33 bits total.  Unlike binary32 there
/// are no subnormal encodings — subnormal inputs are normalised into the wider exponent range on
/// conversion — and zero, infinity and NaN are signalled by reserved exponent codes.
///
/// Every `RecF32` produced by this crate represents a value that is exactly representable as an
/// IEEE binary32 number, so [`RecF32::to_f32`] is lossless and arithmetic results match native
/// `f32` round-to-nearest-even results bit-for-bit.
///
/// # Example
///
/// ```
/// use rayflex_softfloat::RecF32;
/// let x = RecF32::from_f32(0.1);
/// assert_eq!(x.to_f32(), 0.1f32);
/// assert_eq!(RecF32::WIDTH_BITS, 33);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RecF32 {
    /// Packed representation: bit 32 = sign, bits 31..23 = exponent, bits 22..0 = fraction.
    bits: u64,
}

/// Internal unpacked classification of a recoded value, used by the arithmetic routines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Unpacked {
    /// Positive or negative zero.
    Zero { sign: bool },
    /// Positive or negative infinity.
    Inf { sign: bool },
    /// Not-a-number (always treated as a quiet NaN).
    Nan,
    /// A finite non-zero value `(-1)^sign * sig * 2^(exp - 23)` with `sig` in `[2^23, 2^24)`.
    Finite { sign: bool, exp: i32, sig: u32 },
}

impl RecF32 {
    /// Width of the packed recoded representation in bits.
    pub const WIDTH_BITS: u32 = 33;

    /// Positive zero.
    pub const ZERO: RecF32 = RecF32 { bits: 0 };
    /// Negative zero.
    pub const NEG_ZERO: RecF32 = RecF32 { bits: 1 << 32 };
    /// Positive infinity.
    pub const INFINITY: RecF32 = RecF32 {
        bits: (EXP_INF as u64) << 23,
    };
    /// Negative infinity.
    pub const NEG_INFINITY: RecF32 = RecF32 {
        bits: (1 << 32) | ((EXP_INF as u64) << 23),
    };
    /// The canonical quiet NaN.
    pub const NAN: RecF32 = RecF32 {
        bits: ((EXP_NAN as u64) << 23) | (1 << 22),
    };
    /// Positive one.
    pub const ONE: RecF32 = RecF32 {
        bits: ((REC_BIAS as u64) << 23),
    };

    /// Creates a recoded value from raw packed bits.
    ///
    /// Only the low 33 bits are significant; higher bits are ignored.  This is primarily useful
    /// for tests and for modelling the raw wires of the RTL design.
    #[must_use]
    pub fn from_bits(bits: u64) -> Self {
        RecF32 {
            bits: bits & 0x1_FFFF_FFFF,
        }
    }

    /// Returns the raw 33-bit packed representation.
    #[must_use]
    pub fn to_bits(self) -> u64 {
        self.bits
    }

    /// Converts an IEEE binary32 value into the recoded format (the stage-1 converter).
    #[must_use]
    pub fn from_f32(value: f32) -> Self {
        Self::from_f32_bits(value.to_bits())
    }

    /// Converts from the raw bit pattern of an IEEE binary32 value.
    #[must_use]
    pub fn from_f32_bits(bits: u32) -> Self {
        let sign = (bits >> 31) != 0;
        let exp = (bits >> 23) & 0xFF;
        let frac = bits & 0x7F_FFFF;
        match (exp, frac) {
            (0, 0) => Self::pack_special(sign, EXP_ZERO),
            (0, _) => {
                // Subnormal: normalise into the wider exponent range.
                let shift = frac.leading_zeros() - 8; // position the MSB of frac at bit 23
                let sig = frac << shift;
                let unbiased = -126 - shift as i32;
                Self::pack_finite(sign, unbiased, sig & 0x7F_FFFF)
            }
            (0xFF, 0) => Self::pack_special(sign, EXP_INF),
            (0xFF, _) => Self::NAN,
            _ => Self::pack_finite(sign, exp as i32 - 127, frac),
        }
    }

    /// Converts the recoded value back to IEEE binary32 (the stage-11 converter).
    ///
    /// The conversion is exact for every value this crate produces.
    #[must_use]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(self.to_f32_bits())
    }

    /// Converts the recoded value back to the raw bit pattern of an IEEE binary32 value.
    #[must_use]
    pub fn to_f32_bits(self) -> u32 {
        let sign_bit = (self.sign() as u32) << 31;
        match self.exp_field() {
            EXP_ZERO => sign_bit,
            EXP_INF => sign_bit | 0x7F80_0000,
            EXP_NAN => 0x7FC0_0000,
            e => {
                let unbiased = e as i32 - REC_BIAS;
                let frac = (self.bits & 0x7F_FFFF) as u32;
                if unbiased >= -126 {
                    sign_bit | (((unbiased + 127) as u32) << 23) | frac
                } else {
                    // Re-denormalise.  Values stored here always originate from exact binary32
                    // subnormals, so the shifted-out bits are zero.
                    let sig = frac | 0x80_0000;
                    let shift = (-126 - unbiased) as u32;
                    debug_assert!(
                        shift < 24,
                        "recoded exponent below binary32 subnormal range"
                    );
                    sign_bit | (sig >> shift)
                }
            }
        }
    }

    /// Returns `true` if the value is NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        self.exp_field() == EXP_NAN
    }

    /// Returns `true` if the value is positive or negative infinity.
    #[must_use]
    pub fn is_infinite(self) -> bool {
        self.exp_field() == EXP_INF
    }

    /// Returns `true` if the value is positive or negative zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.exp_field() == EXP_ZERO
    }

    /// Returns `true` if the value is finite (zero or a finite non-zero number).
    #[must_use]
    pub fn is_finite(self) -> bool {
        !self.is_nan() && !self.is_infinite()
    }

    /// Returns the sign bit (`true` for negative values, including `-0` and `-inf`).
    #[must_use]
    pub fn sign(self) -> bool {
        (self.bits >> 32) != 0
    }

    /// Returns the value with the sign bit flipped (NaN is returned unchanged).
    ///
    /// Deliberately an inherent method rather than `std::ops::Neg`: the recoded format models
    /// hardware functional units, and call sites should read as explicit FU invocations.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Self {
        if self.is_nan() {
            self
        } else {
            RecF32 {
                bits: self.bits ^ (1 << 32),
            }
        }
    }

    /// Returns the absolute value (NaN is returned unchanged).
    #[must_use]
    pub fn abs(self) -> Self {
        if self.is_nan() {
            self
        } else {
            RecF32 {
                bits: self.bits & 0xFFFF_FFFF,
            }
        }
    }

    /// IEEE-754 round-to-nearest-even addition, matching native `f32` addition bit-for-bit.
    ///
    /// Deliberately an inherent method rather than `std::ops::Add` (see [`RecF32::neg`]).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Self) -> Self {
        round::add(self, rhs)
    }

    /// IEEE-754 round-to-nearest-even subtraction.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Self) -> Self {
        round::add(self, rhs.neg())
    }

    /// IEEE-754 round-to-nearest-even multiplication, matching native `f32` multiplication.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Self) -> Self {
        round::mul(self, rhs)
    }

    /// Squares the value.  In the disjoint-pipeline design the synthesiser specialises
    /// multipliers whose operands share a wire into squarers; numerically this is identical to
    /// [`RecF32::mul`] with both operands equal.
    #[must_use]
    pub fn square(self) -> Self {
        self.mul(self)
    }

    pub(crate) fn exp_field(self) -> u32 {
        ((self.bits >> 23) & 0x1FF) as u32
    }

    pub(crate) fn unpack(self) -> Unpacked {
        match self.exp_field() {
            EXP_ZERO => Unpacked::Zero { sign: self.sign() },
            EXP_INF => Unpacked::Inf { sign: self.sign() },
            EXP_NAN => Unpacked::Nan,
            e => Unpacked::Finite {
                sign: self.sign(),
                exp: e as i32 - REC_BIAS,
                sig: ((self.bits & 0x7F_FFFF) as u32) | 0x80_0000,
            },
        }
    }

    fn pack_special(sign: bool, exp_field: u32) -> Self {
        RecF32 {
            bits: ((sign as u64) << 32) | ((exp_field as u64) << 23),
        }
    }

    fn pack_finite(sign: bool, unbiased_exp: i32, frac: u32) -> Self {
        let exp_field = (unbiased_exp + REC_BIAS) as u64;
        debug_assert!(exp_field > 0 && exp_field < EXP_INF as u64);
        RecF32 {
            bits: ((sign as u64) << 32) | (exp_field << 23) | u64::from(frac & 0x7F_FFFF),
        }
    }
}

impl From<f32> for RecF32 {
    fn from(value: f32) -> Self {
        RecF32::from_f32(value)
    }
}

impl From<RecF32> for f32 {
    fn from(value: RecF32) -> f32 {
        value.to_f32()
    }
}

impl core::fmt::Debug for RecF32 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "RecF32({} = {:#011x})", self.to_f32(), self.bits)
    }
}

impl core::fmt::Display for RecF32 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(x: f32) {
        let r = RecF32::from_f32(x);
        let back = r.to_f32();
        assert_eq!(
            back.to_bits(),
            x.to_bits(),
            "round-trip mismatch for {x} ({:#010x})",
            x.to_bits()
        );
    }

    #[test]
    fn roundtrip_simple_values() {
        for x in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            1.5,
            core::f32::consts::PI,
            1e-30,
            1e30,
            f32::MAX,
            f32::MIN_POSITIVE,
        ] {
            roundtrip(x);
        }
    }

    #[test]
    fn roundtrip_subnormals() {
        roundtrip(f32::from_bits(1)); // smallest positive subnormal
        roundtrip(f32::from_bits(0x0000_0012));
        roundtrip(f32::from_bits(0x007F_FFFF)); // largest subnormal
        roundtrip(-f32::from_bits(0x0040_0000));
    }

    #[test]
    fn roundtrip_specials() {
        roundtrip(f32::INFINITY);
        roundtrip(f32::NEG_INFINITY);
        assert!(RecF32::from_f32(f32::NAN).is_nan());
        assert!(RecF32::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn classification() {
        assert!(RecF32::ZERO.is_zero());
        assert!(RecF32::NEG_ZERO.is_zero());
        assert!(RecF32::NEG_ZERO.sign());
        assert!(RecF32::INFINITY.is_infinite());
        assert!(!RecF32::INFINITY.sign());
        assert!(RecF32::NEG_INFINITY.sign());
        assert!(RecF32::NAN.is_nan());
        assert!(RecF32::ONE.is_finite());
        assert_eq!(RecF32::ONE.to_f32(), 1.0);
    }

    #[test]
    fn negation_and_abs() {
        assert_eq!(RecF32::ONE.neg().to_f32(), -1.0);
        assert_eq!(RecF32::from_f32(-2.5).abs().to_f32(), 2.5);
        assert!(RecF32::NAN.neg().is_nan());
        assert_eq!(RecF32::ZERO.neg(), RecF32::NEG_ZERO);
    }

    #[test]
    fn width_is_33_bits() {
        assert_eq!(RecF32::WIDTH_BITS, 33);
        // No value should ever set bits above bit 32.
        assert_eq!(RecF32::from_f32(f32::MAX).to_bits() >> 33, 0);
        assert_eq!(RecF32::NAN.to_bits() >> 33, 0);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(RecF32::default(), RecF32::ZERO);
    }
}
