//! IEEE-754 exception flags.
//!
//! The RayFlex RTL sources its functional units from Berkeley HardFloat, whose units report the
//! standard exception conditions.  The datapath itself does not act on them, but exposing the
//! flags lets users of the library observe overflow/underflow behaviour of a workload (for
//! instance when experimenting with alternative rounding strategies as suggested in §III-F).
//!
//! # Example
//!
//! ```
//! use rayflex_softfloat::{ExceptionFlags, RecF32};
//!
//! let mut flags = ExceptionFlags::default();
//! flags.record_result(RecF32::from_f32(f32::MAX).mul(RecF32::from_f32(2.0)));
//! assert!(flags.overflow);
//! ```

use crate::recoded::RecF32;

/// A set of IEEE-754 exception flags accumulated over a sequence of operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ExceptionFlags {
    /// An operation produced an invalid result (NaN from non-NaN operands).
    pub invalid: bool,
    /// A result overflowed to infinity.
    pub overflow: bool,
    /// A result underflowed to a subnormal or zero.
    pub underflow: bool,
    /// A result required rounding (approximated here by overflow/underflow detection).
    pub inexact: bool,
}

impl ExceptionFlags {
    /// Creates an empty flag set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies a result value and accumulates the corresponding flags.
    ///
    /// This is a coarse, result-based classification (the datapath does not thread per-operation
    /// flag wires): NaN results raise `invalid`, infinite results raise `overflow` + `inexact`,
    /// and subnormal results raise `underflow` + `inexact`.
    pub fn record_result(&mut self, result: RecF32) {
        if result.is_nan() {
            self.invalid = true;
        } else if result.is_infinite() {
            self.overflow = true;
            self.inexact = true;
        } else if !result.is_zero() && result.abs().to_f32() < f32::MIN_POSITIVE {
            self.underflow = true;
            self.inexact = true;
        }
    }

    /// Merges another flag set into this one.
    pub fn merge(&mut self, other: ExceptionFlags) {
        self.invalid |= other.invalid;
        self.overflow |= other.overflow;
        self.underflow |= other.underflow;
        self.inexact |= other.inexact;
    }

    /// Returns `true` if no exception has been recorded.
    #[must_use]
    pub fn is_clear(&self) -> bool {
        !(self.invalid || self.overflow || self.underflow || self.inexact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_by_default() {
        assert!(ExceptionFlags::new().is_clear());
    }

    #[test]
    fn records_invalid_on_nan() {
        let mut f = ExceptionFlags::new();
        f.record_result(RecF32::NAN);
        assert!(f.invalid);
        assert!(!f.overflow);
    }

    #[test]
    fn records_overflow_and_underflow() {
        let mut f = ExceptionFlags::new();
        f.record_result(RecF32::INFINITY);
        assert!(f.overflow && f.inexact);
        let mut g = ExceptionFlags::new();
        g.record_result(RecF32::from_f32(f32::from_bits(1)));
        assert!(g.underflow);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExceptionFlags::new();
        let mut b = ExceptionFlags::new();
        a.record_result(RecF32::NAN);
        b.record_result(RecF32::INFINITY);
        a.merge(b);
        assert!(a.invalid && a.overflow);
        assert!(!a.is_clear());
    }
}
