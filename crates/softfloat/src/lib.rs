//! # rayflex-softfloat
//!
//! A from-scratch software floating-point library reproducing the numeric behaviour of the
//! Berkeley HardFloat units used by the RayFlex datapath (ISPASS 2025).
//!
//! RayFlex processes IEEE-754 binary32 (`f32`) values at its IO boundary but internally carries a
//! *recoded* format with one extra exponent bit (33 bits total), converting at the first and last
//! pipeline stages and rounding after every addition and multiplication.  This crate provides:
//!
//! * [`RecF32`] — the 33-bit recoded value type (sign + 9-bit exponent + 23-bit fraction) with
//!   lossless conversions to and from `f32`,
//! * IEEE-754 round-to-nearest-even addition, subtraction and multiplication
//!   ([`RecF32::add`], [`RecF32::sub`], [`RecF32::mul`]) that match native `f32` arithmetic
//!   bit-for-bit (including subnormals, signed zeros, infinities and NaN propagation),
//! * hardware-style comparators ([`cmp`]) with the "NaN compares false" semantics the paper relies
//!   on for coplanar-ray handling,
//! * the stage-1 / stage-11 format converters ([`convert`]) and exception flags ([`flags`]).
//!
//! # Example
//!
//! ```
//! use rayflex_softfloat::RecF32;
//!
//! let a = RecF32::from_f32(1.5);
//! let b = RecF32::from_f32(2.25);
//! let sum = a.add(b);
//! assert_eq!(sum.to_f32(), 3.75);
//!
//! // NaN propagates and never compares true, as the RayFlex slab test expects.
//! let nan = RecF32::from_f32(f32::INFINITY).mul(RecF32::ZERO);
//! assert!(nan.is_nan());
//! assert!(!rayflex_softfloat::cmp::le(nan, RecF32::ZERO));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cmp;
pub mod convert;
pub mod flags;
mod recoded;
mod round;

pub use flags::ExceptionFlags;
pub use recoded::RecF32;
