//! IEEE-754 binary32 round-to-nearest-even arithmetic on recoded values.
//!
//! The RayFlex datapath rounds after every addition and multiplication (§III-F of the paper).
//! These routines implement that contract: each operation unpacks its recoded operands, performs
//! exact intermediate arithmetic on wide integer significands, rounds once to binary32 precision
//! (round-to-nearest, ties-to-even) and re-encodes the result.  The results are bit-identical to
//! native `f32` arithmetic, which is what anchors the hardware model to the golden software model.

use crate::recoded::{RecF32, Unpacked};

/// Rounds a finite, non-zero magnitude to binary32 and returns the packed IEEE bits.
///
/// `sig` carries the magnitude with the leading one at bit 30 (i.e. the value is
/// `sig * 2^(exp - 30)`); bits 6..0 are the guard/round/sticky extension beyond 24-bit precision.
/// `exp` is the unbiased binary exponent of bit 30.  Handles overflow to infinity and graceful
/// underflow to subnormals or zero.
fn round_pack_f32(sign: bool, mut exp: i32, mut sig: u32) -> u32 {
    debug_assert!(sig != 0);
    let sign_bit = (sign as u32) << 31;

    // Subnormal range: shift right until the exponent reaches the minimum, keeping sticky bits.
    if exp < -126 {
        let shift = (-126 - exp) as u32;
        if shift >= 31 {
            // The entire significand becomes sticky: rounds to zero (RNE, magnitude < 2^-150).
            sig = 1;
        } else {
            let sticky = if sig & ((1 << shift) - 1) != 0 { 1 } else { 0 };
            sig = (sig >> shift) | sticky;
        }
        exp = -126;
    }

    let round_bits = sig & 0x7F;
    let mut result_sig = sig >> 7;
    // Round to nearest, ties to even.
    if round_bits > 0x40 || (round_bits == 0x40 && (result_sig & 1) != 0) {
        result_sig += 1;
    }

    if result_sig == 0 {
        return sign_bit;
    }

    if result_sig >= 1 << 24 {
        // Rounding carried out of the significand.
        result_sig >>= 1;
        exp += 1;
    }

    if result_sig < 1 << 23 {
        // Subnormal result (only possible when exp == -126).
        debug_assert_eq!(exp, -126);
        return sign_bit | result_sig;
    }

    if exp > 127 {
        // Overflow to infinity under round-to-nearest-even.
        return sign_bit | 0x7F80_0000;
    }

    sign_bit | (((exp + 127) as u32) << 23) | (result_sig & 0x7F_FFFF)
}

/// Addition (and, via sign negation, subtraction) with a single rounding step.
pub(crate) fn add(a: RecF32, b: RecF32) -> RecF32 {
    use Unpacked::*;
    let (ua, ub) = (a.unpack(), b.unpack());
    match (ua, ub) {
        (Nan, _) | (_, Nan) => RecF32::NAN,
        (Inf { sign: sa }, Inf { sign: sb }) => {
            if sa == sb {
                if sa {
                    RecF32::NEG_INFINITY
                } else {
                    RecF32::INFINITY
                }
            } else {
                RecF32::NAN
            }
        }
        (Inf { sign }, _) | (_, Inf { sign }) => {
            if sign {
                RecF32::NEG_INFINITY
            } else {
                RecF32::INFINITY
            }
        }
        (Zero { sign: sa }, Zero { sign: sb }) => {
            // +0 + -0 = +0 under round-to-nearest; -0 + -0 = -0.
            if sa && sb {
                RecF32::NEG_ZERO
            } else {
                RecF32::ZERO
            }
        }
        (Zero { .. }, Finite { .. }) => b,
        (Finite { .. }, Zero { .. }) => a,
        (
            Finite {
                sign: sa,
                exp: ea,
                sig: siga,
            },
            Finite {
                sign: sb,
                exp: eb,
                sig: sigb,
            },
        ) => add_finite(sa, ea, siga, sb, eb, sigb),
    }
}

fn add_finite(sa: bool, ea: i32, siga: u32, sb: bool, eb: i32, sigb: u32) -> RecF32 {
    // Order the operands by magnitude so the larger one is `x`.
    let a_larger = (ea, siga) >= (eb, sigb);
    let (sx, ex, sigx, sy, ey, sigy) = if a_larger {
        (sa, ea, siga, sb, eb, sigb)
    } else {
        (sb, eb, sigb, sa, ea, siga)
    };

    // Work with 7 extra fraction bits: the leading one sits at bit 30.
    let x = u64::from(sigx) << 7;
    let mut y = u64::from(sigy) << 7;
    let diff = (ex - ey) as u32;
    // Align the smaller operand, folding shifted-out bits into a sticky bit.
    if diff != 0 {
        if diff > 60 {
            y = 1;
        } else {
            let sticky = if y & ((1u64 << diff) - 1) != 0 { 1 } else { 0 };
            y = (y >> diff) | sticky;
        }
    }

    if sx == sy {
        // Magnitude addition.
        let mut sum = x + y;
        let mut exp = ex;
        if sum >= 1 << 31 {
            let sticky = sum & 1;
            sum = (sum >> 1) | sticky;
            exp += 1;
        }
        RecF32::from_f32_bits(round_pack_f32(sx, exp, sum as u32))
    } else {
        // Magnitude subtraction.
        let mut diff_sig = x - y;
        if diff_sig == 0 {
            // Exact cancellation yields +0 under round-to-nearest-even.
            return RecF32::ZERO;
        }
        let mut exp = ex;
        // `x` has its leading one at bit 30, so `diff_sig` < 2^31 and at least 33 leading zeros.
        let shift = diff_sig.leading_zeros() - 33;
        // Normalise so the leading one returns to bit 30.
        diff_sig <<= shift;
        exp -= shift as i32;
        // `diff_sig` now fits in 31 bits because x < 2^31 and the leading one is at bit 30.
        RecF32::from_f32_bits(round_pack_f32(sx, exp, diff_sig as u32))
    }
}

/// Multiplication with a single rounding step.
pub(crate) fn mul(a: RecF32, b: RecF32) -> RecF32 {
    use Unpacked::*;
    let (ua, ub) = (a.unpack(), b.unpack());
    match (ua, ub) {
        (Nan, _) | (_, Nan) => RecF32::NAN,
        (Inf { .. }, Zero { .. }) | (Zero { .. }, Inf { .. }) => RecF32::NAN,
        (Inf { sign: sa }, Inf { sign: sb })
        | (Inf { sign: sa }, Finite { sign: sb, .. })
        | (Finite { sign: sa, .. }, Inf { sign: sb }) => {
            if sa != sb {
                RecF32::NEG_INFINITY
            } else {
                RecF32::INFINITY
            }
        }
        (Zero { sign: sa }, Zero { sign: sb })
        | (Zero { sign: sa }, Finite { sign: sb, .. })
        | (Finite { sign: sa, .. }, Zero { sign: sb }) => {
            if sa != sb {
                RecF32::NEG_ZERO
            } else {
                RecF32::ZERO
            }
        }
        (
            Finite {
                sign: sa,
                exp: ea,
                sig: siga,
            },
            Finite {
                sign: sb,
                exp: eb,
                sig: sigb,
            },
        ) => {
            let sign = sa != sb;
            // Exact 24x24 -> 48-bit product.  The product of two significands in [2^23, 2^24)
            // lies in [2^46, 2^48).
            let mut product = u64::from(siga) * u64::from(sigb);
            let mut exp = ea + eb;
            if product >= 1 << 47 {
                exp += 1;
            } else {
                product <<= 1;
            }
            // The leading one is now at bit 47; compress to 31 bits keeping a sticky bit.
            let sticky = if product & 0x1_FFFF != 0 { 1 } else { 0 };
            let sig = ((product >> 17) as u32) | sticky;
            RecF32::from_f32_bits(round_pack_f32(sign, exp, sig))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_add(x: f32, y: f32) {
        let expect = x + y;
        let got = RecF32::from_f32(x).add(RecF32::from_f32(y)).to_f32();
        if expect.is_nan() {
            assert!(got.is_nan(), "add({x}, {y}) expected NaN, got {got}");
        } else {
            assert_eq!(
                got.to_bits(),
                expect.to_bits(),
                "add({x}, {y}) = {got} expected {expect}"
            );
        }
    }

    fn check_mul(x: f32, y: f32) {
        let expect = x * y;
        let got = RecF32::from_f32(x).mul(RecF32::from_f32(y)).to_f32();
        if expect.is_nan() {
            assert!(got.is_nan(), "mul({x}, {y}) expected NaN, got {got}");
        } else {
            assert_eq!(
                got.to_bits(),
                expect.to_bits(),
                "mul({x}, {y}) = {got} expected {expect}"
            );
        }
    }

    const INTERESTING: &[f32] = &[
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.5,
        2.0,
        3.0,
        1.5,
        -2.75,
        1e-6,
        -1e-6,
        1e20,
        -1e20,
        3.4e38,
        -3.4e38,
        1e-38,
        -1e-38,
        1e-44, // subnormal
        -1e-44,
        f32::MAX,
        f32::MIN_POSITIVE,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        1.0000001,
        0.99999994,
        16777216.0, // 2^24
        16777215.0,
        0.1,
        0.2,
        0.3,
    ];

    #[test]
    fn addition_matches_native_on_interesting_pairs() {
        for &x in INTERESTING {
            for &y in INTERESTING {
                check_add(x, y);
            }
        }
    }

    #[test]
    fn multiplication_matches_native_on_interesting_pairs() {
        for &x in INTERESTING {
            for &y in INTERESTING {
                check_mul(x, y);
            }
        }
    }

    #[test]
    fn cancellation_produces_positive_zero() {
        let a = RecF32::from_f32(5.5);
        let b = RecF32::from_f32(-5.5);
        let r = a.add(b);
        assert!(r.is_zero());
        assert!(!r.sign());
    }

    #[test]
    fn infinity_minus_infinity_is_nan() {
        let r = RecF32::INFINITY.add(RecF32::NEG_INFINITY);
        assert!(r.is_nan());
    }

    #[test]
    fn infinity_times_zero_is_nan() {
        assert!(RecF32::INFINITY.mul(RecF32::ZERO).is_nan());
        assert!(RecF32::ZERO.mul(RecF32::NEG_INFINITY).is_nan());
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        let r = RecF32::from_f32(f32::MAX).mul(RecF32::from_f32(2.0));
        assert!(r.is_infinite());
        assert!(!r.sign());
        let r = RecF32::from_f32(f32::MAX).add(RecF32::from_f32(f32::MAX));
        assert!(r.is_infinite());
    }

    #[test]
    fn underflow_rounds_to_zero_or_subnormal() {
        let tiny = RecF32::from_f32(f32::MIN_POSITIVE);
        let r = tiny.mul(tiny);
        assert_eq!(r.to_f32(), f32::MIN_POSITIVE * f32::MIN_POSITIVE);
        let smallest = RecF32::from_f32(f32::from_bits(1));
        let r = smallest.mul(RecF32::from_f32(0.25));
        assert_eq!(r.to_f32(), f32::from_bits(1) * 0.25);
    }

    #[test]
    fn subnormal_arithmetic_matches_native() {
        let cases = [
            (f32::from_bits(1), f32::from_bits(3)),
            (f32::from_bits(0x0000_1234), f32::from_bits(0x0000_0FF0)),
            (f32::from_bits(0x007F_FFFF), f32::from_bits(0x0000_0001)),
            (f32::from_bits(0x0000_0001), -f32::from_bits(0x007F_FFFF)),
        ];
        for (x, y) in cases {
            check_add(x, y);
            check_mul(x, y);
        }
    }

    #[test]
    fn squaring_matches_multiplication() {
        for &x in INTERESTING {
            let sq = RecF32::from_f32(x).square();
            let mul = RecF32::from_f32(x).mul(RecF32::from_f32(x));
            assert_eq!(sq.to_bits(), mul.to_bits());
        }
    }
}
