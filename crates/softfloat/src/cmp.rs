//! Hardware-style floating-point comparators.
//!
//! The RayFlex datapath uses comparators in the slab ray-box test (stage 4), the quad-sort
//! network and the ray-triangle hit test (stage 10).  The paper (§IV-A) leans on the IEEE rule
//! that any ordered comparison involving NaN is false: a ray coplanar with a box face produces
//! `inf × 0 = NaN` and therefore misses.  Every predicate in this module implements exactly those
//! semantics, and `+0` equals `-0`.
//!
//! # Example
//!
//! ```
//! use rayflex_softfloat::{cmp, RecF32};
//!
//! let a = RecF32::from_f32(1.0);
//! let b = RecF32::from_f32(2.0);
//! assert!(cmp::lt(a, b));
//! assert!(cmp::le(a, a));
//! assert_eq!(cmp::min(a, b).to_f32(), 1.0);
//!
//! // NaN never compares true.
//! assert!(!cmp::lt(RecF32::NAN, b));
//! assert!(!cmp::le(RecF32::NAN, b));
//! assert!(!cmp::eq(RecF32::NAN, RecF32::NAN));
//! ```

use crate::recoded::RecF32;

/// Ordering key: maps a non-NaN recoded value to a signed integer whose order matches the real
/// number order (with `-0` and `+0` mapping to the same key).
fn order_key(x: RecF32) -> i64 {
    // The magnitude key is built from the binary32 bit pattern, which is monotonic for
    // non-negative floats; specials are already collapsed by the conversion.
    let bits = x.to_f32_bits();
    let magnitude = i64::from(bits & 0x7FFF_FFFF);
    if bits >> 31 != 0 {
        -magnitude
    } else {
        magnitude
    }
}

/// Returns `true` if `a < b`.  False if either operand is NaN.
#[must_use]
pub fn lt(a: RecF32, b: RecF32) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    order_key(a) < order_key(b)
}

/// Returns `true` if `a <= b`.  False if either operand is NaN.
#[must_use]
pub fn le(a: RecF32, b: RecF32) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    order_key(a) <= order_key(b)
}

/// Returns `true` if `a > b`.  False if either operand is NaN.
#[must_use]
pub fn gt(a: RecF32, b: RecF32) -> bool {
    lt(b, a)
}

/// Returns `true` if `a >= b`.  False if either operand is NaN.
#[must_use]
pub fn ge(a: RecF32, b: RecF32) -> bool {
    le(b, a)
}

/// IEEE equality: `+0 == -0`, NaN is not equal to anything (including itself).
#[must_use]
pub fn eq(a: RecF32, b: RecF32) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    order_key(a) == order_key(b)
}

/// Hardware-style minimum: a comparator followed by a multiplexer selecting
/// `if a < b { a } else { b }`.  When either operand is NaN the comparison is false and the
/// second operand is selected, mirroring the RTL behaviour the paper describes.
#[must_use]
pub fn min(a: RecF32, b: RecF32) -> RecF32 {
    if lt(a, b) {
        a
    } else {
        b
    }
}

/// Hardware-style maximum: `if a > b { a } else { b }` (the second operand wins on NaN).
#[must_use]
pub fn max(a: RecF32, b: RecF32) -> RecF32 {
    if gt(a, b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_native_f32() {
        let values = [
            f32::NEG_INFINITY,
            -3.5,
            -1.0,
            -f32::MIN_POSITIVE,
            -0.0,
            0.0,
            f32::from_bits(1),
            1.0,
            2.5,
            1e30,
            f32::INFINITY,
        ];
        for &x in &values {
            for &y in &values {
                let (a, b) = (RecF32::from_f32(x), RecF32::from_f32(y));
                assert_eq!(lt(a, b), x < y, "lt({x}, {y})");
                assert_eq!(le(a, b), x <= y, "le({x}, {y})");
                assert_eq!(gt(a, b), x > y, "gt({x}, {y})");
                assert_eq!(ge(a, b), x >= y, "ge({x}, {y})");
                assert_eq!(eq(a, b), x == y, "eq({x}, {y})");
            }
        }
    }

    #[test]
    fn nan_comparisons_are_false() {
        let n = RecF32::NAN;
        let one = RecF32::ONE;
        assert!(!lt(n, one) && !lt(one, n));
        assert!(!le(n, one) && !le(one, n));
        assert!(!gt(n, one) && !gt(one, n));
        assert!(!ge(n, one) && !ge(one, n));
        assert!(!eq(n, n));
    }

    #[test]
    fn signed_zeros_are_equal() {
        assert!(eq(RecF32::ZERO, RecF32::NEG_ZERO));
        assert!(!lt(RecF32::NEG_ZERO, RecF32::ZERO));
        assert!(le(RecF32::NEG_ZERO, RecF32::ZERO));
    }

    #[test]
    fn min_max_select_like_hardware() {
        let a = RecF32::from_f32(1.0);
        let b = RecF32::from_f32(2.0);
        assert_eq!(min(a, b).to_f32(), 1.0);
        assert_eq!(max(a, b).to_f32(), 2.0);
        // NaN in the first operand: the comparison is false so the second operand is chosen.
        assert_eq!(min(RecF32::NAN, b).to_f32(), 2.0);
        assert_eq!(max(RecF32::NAN, b).to_f32(), 2.0);
        // NaN in the second operand: the comparison is false so NaN is chosen.
        assert!(min(a, RecF32::NAN).is_nan());
        assert!(max(a, RecF32::NAN).is_nan());
    }

    #[test]
    fn subnormals_order_correctly() {
        let tiny = RecF32::from_f32(f32::from_bits(1));
        let tiny2 = RecF32::from_f32(f32::from_bits(2));
        assert!(lt(tiny, tiny2));
        assert!(lt(RecF32::ZERO, tiny));
        assert!(lt(tiny.neg(), RecF32::ZERO));
    }
}
