//! Format converters between IEEE binary32 and the internal recoded format.
//!
//! Stage 1 of the RayFlex pipeline converts every FP32 input field to the recoded 33-bit format,
//! and stage 11 converts the results back (Fig. 4c of the paper).  These thin wrapper types exist
//! so that the datapath model can account for converter instances as hardware assets and so that
//! the conversion direction is explicit at call sites.
//!
//! # Example
//!
//! ```
//! use rayflex_softfloat::convert::{Fp32ToRec, RecToFp32};
//!
//! let to_rec = Fp32ToRec::new();
//! let to_fp32 = RecToFp32::new();
//! let rec = to_rec.convert(1.25);
//! assert_eq!(to_fp32.convert(rec), 1.25);
//! ```

use crate::recoded::RecF32;

/// A stage-1 format converter instance (IEEE binary32 → recoded 33-bit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fp32ToRec;

impl Fp32ToRec {
    /// Creates a converter instance.
    #[must_use]
    pub fn new() -> Self {
        Fp32ToRec
    }

    /// Converts one IEEE binary32 value to the recoded format.
    #[must_use]
    pub fn convert(&self, value: f32) -> RecF32 {
        RecF32::from_f32(value)
    }

    /// Converts a slice of IEEE binary32 values (one converter lane per element).
    #[must_use]
    pub fn convert_all<const N: usize>(&self, values: [f32; N]) -> [RecF32; N] {
        values.map(RecF32::from_f32)
    }
}

/// A stage-11 format converter instance (recoded 33-bit → IEEE binary32).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecToFp32;

impl RecToFp32 {
    /// Creates a converter instance.
    #[must_use]
    pub fn new() -> Self {
        RecToFp32
    }

    /// Converts one recoded value back to IEEE binary32.
    #[must_use]
    pub fn convert(&self, value: RecF32) -> f32 {
        value.to_f32()
    }

    /// Converts a slice of recoded values (one converter lane per element).
    #[must_use]
    pub fn convert_all<const N: usize>(&self, values: [RecF32; N]) -> [f32; N] {
        values.map(RecF32::to_f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converters_roundtrip_arrays() {
        let inputs = [0.0f32, -1.5, 3.25, 1e-40, f32::INFINITY];
        let rec = Fp32ToRec::new().convert_all(inputs);
        let back = RecToFp32::new().convert_all(rec);
        for (a, b) in inputs.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn nan_converts_to_nan() {
        let rec = Fp32ToRec::new().convert(f32::NAN);
        assert!(rec.is_nan());
        assert!(RecToFp32::new().convert(rec).is_nan());
    }
}
