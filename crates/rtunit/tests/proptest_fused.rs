//! Property-based tests of the fused multi-stream scheduler: for arbitrary random mixed
//! workloads — a closest-hit render stream, an any-hit shadow stream, a k-NN distance-scoring
//! stream and a batch of radius-query candidate collections — a **fused** run (all streams
//! merged into shared mixed-opcode bulk passes over one datapath) produces per-stream outputs,
//! per-stream statistics and per-kind `BeatMix` attribution identical to the same streams run
//! **sequentially**, and identical to the scalar **round-robin reference** mode
//! (`FusedScheduler::run_reference`).  The tentpole bit-identity guarantee of the fused
//! scheduler, pinned one layer above `rtunit`'s single-stream property tests.

use proptest::prelude::*;

use rayflex_core::{PipelineConfig, QueryKind, RayFlexDatapath};
use rayflex_geometry::{Ray, Sphere, Triangle, Vec3};
use rayflex_rtunit::{
    Bvh4, CollectStream, DistanceStream, FusedScheduler, KnnMetric, Scene, TraversalStream,
};

fn coordinate() -> impl Strategy<Value = f32> {
    -50.0f32..50.0
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (coordinate(), coordinate(), coordinate()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn triangle() -> impl Strategy<Value = Triangle> {
    (vec3(), vec3(), vec3())
        .prop_map(|(a, b, c)| Triangle::new(a, b, c))
        .prop_filter("non-degenerate", |t| t.area() > 1e-3)
}

fn scene() -> impl Strategy<Value = Vec<Triangle>> {
    prop::collection::vec(triangle(), 1..24)
}

/// Rays with random origins/directions and a mix of infinite and finite (shadow-style) extents.
fn ray() -> impl Strategy<Value = Ray> {
    (vec3(), vec3(), any::<bool>(), 1.0f32..120.0).prop_filter_map(
        "non-zero direction",
        |(origin, toward, finite, t_end)| {
            let dir = toward - origin;
            if dir.length_squared() <= 1e-6 {
                return None;
            }
            Some(if finite {
                Ray::with_extent(origin, dir, 1e-3, t_end)
            } else {
                Ray::new(origin, dir)
            })
        },
    )
}

fn vector(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-8.0f32..8.0, dim..dim + 1)
}

fn points() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(vec3(), 1..40)
}

fn radius_queries() -> impl Strategy<Value = Vec<(Vec3, f32)>> {
    prop::collection::vec((vec3(), 1.0f32..25.0), 1..5)
}

/// The per-stream results of one mixed-workload run, whatever the scheduling discipline.
#[derive(Debug, PartialEq)]
struct MixedResults {
    closest: Vec<Option<rayflex_rtunit::TraversalHit>>,
    closest_stats: rayflex_rtunit::TraversalStats,
    shadow: Vec<Option<rayflex_rtunit::TraversalHit>>,
    shadow_stats: rayflex_rtunit::TraversalStats,
    distances: Vec<u32>,
    distance_beats: u64,
    candidates: Vec<Vec<usize>>,
    collect_beats: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Sequential,
    Fused,
    RoundRobinReference,
}

#[allow(clippy::too_many_arguments)]
fn run_mixed(
    mode: Mode,
    scene_bvh: &Bvh4,
    triangles: &[Triangle],
    closest_rays: &[Ray],
    shadow_rays: &[Ray],
    query_vector: &[f32],
    candidates: &[Vec<f32>],
    sphere_bvh: &Bvh4,
    queries: &[(Vec3, f32)],
) -> (MixedResults, RayFlexDatapath) {
    let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
    let mut scheduler = FusedScheduler::new();
    let world = Scene::from_parts(scene_bvh.clone(), triangles.to_vec());
    let mut closest = TraversalStream::closest_hit(&world, closest_rays);
    let mut shadow = TraversalStream::any_hit(&world, shadow_rays);
    let mut distance = DistanceStream::new(query_vector, candidates, KnnMetric::Euclidean);
    let mut collect = CollectStream::new(sphere_bvh, queries);
    match mode {
        Mode::Sequential => {
            scheduler.run(&mut datapath, &mut [&mut closest]);
            scheduler.run(&mut datapath, &mut [&mut shadow]);
            scheduler.run(&mut datapath, &mut [&mut distance]);
            scheduler.run(&mut datapath, &mut [&mut collect]);
        }
        Mode::Fused => scheduler.run(
            &mut datapath,
            &mut [&mut closest, &mut shadow, &mut distance, &mut collect],
        ),
        Mode::RoundRobinReference => scheduler.run_reference(
            &mut datapath,
            &mut [&mut closest, &mut shadow, &mut distance, &mut collect],
        ),
    }
    let (closest, closest_stats) = closest.finish();
    let (shadow, shadow_stats) = shadow.finish();
    let (distances, distance_stats) = distance.finish();
    let (candidates, collect_beats) = collect.finish();
    (
        MixedResults {
            closest,
            closest_stats,
            shadow,
            shadow_stats,
            distances: distances.iter().map(|d| d.to_bits()).collect(),
            distance_beats: distance_stats.beats,
            candidates,
            collect_beats,
        },
        datapath,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn a_fused_mixed_workload_is_bit_identical_to_sequential_scheduling(
        triangles in scene(),
        closest_rays in prop::collection::vec(ray(), 1..10),
        shadow_rays in prop::collection::vec(ray(), 1..10),
        candidates in prop::collection::vec(vector(19), 1..8),
        dataset in points(),
        queries in radius_queries(),
    ) {
        let scene_bvh = Bvh4::build(&triangles);
        let query_vector = candidates[0].clone();
        let spheres: Vec<Sphere> = dataset.iter().map(|&p| Sphere::new(p, 0.05)).collect();
        let sphere_bvh = Bvh4::build(&spheres);

        let (sequential, sequential_dp) = run_mixed(
            Mode::Sequential, &scene_bvh, &triangles, &closest_rays, &shadow_rays,
            &query_vector, &candidates, &sphere_bvh, &queries,
        );
        let (fused, fused_dp) = run_mixed(
            Mode::Fused, &scene_bvh, &triangles, &closest_rays, &shadow_rays,
            &query_vector, &candidates, &sphere_bvh, &queries,
        );

        // Per-stream outputs and statistics are bit-identical, stream by stream.
        prop_assert_eq!(&fused, &sequential);

        // The datapath agrees too: same total work, same per-kind × per-opcode attribution.
        prop_assert_eq!(fused_dp.executed_beats(), sequential_dp.executed_beats());
        for (kind, opcode, count) in sequential_dp.beat_mix().iter_kinds() {
            prop_assert_eq!(
                fused_dp.beat_mix().count_for(kind, opcode), count,
                "kind {} opcode {}", kind, opcode
            );
        }

        // The fused run really interleaved distinct kinds in shared bulk passes: with at least
        // two non-empty streams admitted, the first pass always mixes kinds.
        prop_assert!(fused_dp.beat_mix().fused_passes() > 0, "no pass mixed query kinds");
        prop_assert!(
            fused_dp.beat_mix().passes() <= sequential_dp.beat_mix().passes(),
            "pass sharing cannot increase the pass count"
        );
        prop_assert_eq!(
            fused_dp.beat_mix().kind_total(QueryKind::Distance),
            fused.distance_beats
        );
        prop_assert_eq!(
            fused_dp.beat_mix().kind_total(QueryKind::Collect),
            fused.collect_beats
        );
    }

    #[test]
    fn the_scalar_round_robin_reference_pins_the_fused_run(
        triangles in scene(),
        closest_rays in prop::collection::vec(ray(), 1..6),
        shadow_rays in prop::collection::vec(ray(), 1..6),
        candidates in prop::collection::vec(vector(9), 1..5),
        dataset in points(),
        queries in radius_queries(),
    ) {
        let scene_bvh = Bvh4::build(&triangles);
        let query_vector = candidates[0].clone();
        let spheres: Vec<Sphere> = dataset.iter().map(|&p| Sphere::new(p, 0.05)).collect();
        let sphere_bvh = Bvh4::build(&spheres);

        let (fused, fused_dp) = run_mixed(
            Mode::Fused, &scene_bvh, &triangles, &closest_rays, &shadow_rays,
            &query_vector, &candidates, &sphere_bvh, &queries,
        );
        let (reference, reference_dp) = run_mixed(
            Mode::RoundRobinReference, &scene_bvh, &triangles, &closest_rays, &shadow_rays,
            &query_vector, &candidates, &sphere_bvh, &queries,
        );

        // Bulk fused dispatch and beat-at-a-time round-robin execution agree bit for bit, per
        // stream and per attribution counter — only pass accounting differs (the reference
        // never dispatches a bulk pass).
        prop_assert_eq!(&fused, &reference);
        prop_assert_eq!(fused_dp.executed_beats(), reference_dp.executed_beats());
        for (kind, opcode, count) in fused_dp.beat_mix().iter_kinds() {
            prop_assert_eq!(
                reference_dp.beat_mix().count_for(kind, opcode), count,
                "kind {} opcode {}", kind, opcode
            );
        }
        prop_assert_eq!(reference_dp.beat_mix().passes(), 0);
    }
}
