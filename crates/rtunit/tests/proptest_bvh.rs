//! Property-based tests of the BVH builder and the traversal engine: every primitive is indexed
//! exactly once, bounds contain their subtrees, and for arbitrary random scenes the BVH traversal
//! through the datapath finds exactly the same closest hit as a brute-force golden scan.

use proptest::prelude::*;

use rayflex_geometry::{golden, Ray, Triangle, Vec3};
use rayflex_rtunit::{Bvh4, Bvh4Node, ExecPolicy, Scene, TraceRequest, TraversalEngine};

fn coordinate() -> impl Strategy<Value = f32> {
    -50.0f32..50.0
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (coordinate(), coordinate(), coordinate()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn triangle() -> impl Strategy<Value = Triangle> {
    (vec3(), vec3(), vec3())
        .prop_map(|(a, b, c)| Triangle::new(a, b, c))
        .prop_filter("non-degenerate", |t| t.area() > 1e-3)
}

fn scene() -> impl Strategy<Value = Vec<Triangle>> {
    prop::collection::vec(triangle(), 1..40)
}

fn ray() -> impl Strategy<Value = Ray> {
    (vec3(), vec3()).prop_filter_map("non-zero direction", |(origin, toward)| {
        let dir = toward - origin;
        if dir.length_squared() > 1e-6 {
            Some(Ray::new(origin, dir))
        } else {
            None
        }
    })
}

/// Brute-force golden closest hit.
fn brute_force(triangles: &[Triangle], ray: &Ray) -> Option<(usize, f32)> {
    let mut best: Option<(usize, f32)> = None;
    for (i, tri) in triangles.iter().enumerate() {
        let hit = golden::watertight::ray_triangle(ray, tri);
        if hit.hit {
            let t = hit.distance();
            if t >= ray.t_beg && t <= ray.t_end && best.is_none_or(|(_, bt)| t < bt) {
                best = Some((i, t));
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_primitive_is_indexed_exactly_once(triangles in scene(), leaf_size in 1usize..6) {
        let bvh = Bvh4::build_with_leaf_size(&triangles, leaf_size);
        let mut seen = vec![0usize; triangles.len()];
        for &i in bvh.primitive_indices() {
            seen[i] += 1;
        }
        prop_assert!(seen.iter().all(|&count| count == 1));
        // Leaves respect the leaf size and node bounds contain the scene.
        for node in bvh.nodes() {
            if let Bvh4Node::Leaf { count, .. } = node {
                prop_assert!(*count <= leaf_size);
            }
        }
        for tri in &triangles {
            prop_assert!(bvh.scene_bounds().contains(tri.centroid()));
        }
    }

    #[test]
    fn traversal_finds_the_same_closest_hit_as_brute_force(
        triangles in scene(),
        rays in prop::collection::vec(ray(), 1..8),
    ) {
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh.clone(), triangles.clone());
        let mut engine = TraversalEngine::baseline();
        for ray in &rays {
            let expected = brute_force(&triangles, ray);
            let got = engine
                .trace(
                    &TraceRequest::closest_hit(&scene, core::slice::from_ref(ray)),
                    &ExecPolicy::scalar(),
                )
                .into_closest()[0];
            match (expected, got) {
                (None, None) => {}
                (Some((_prim, t)), Some(hit)) => {
                    // The same primitive, or a different primitive at a bit-identical distance
                    // (exact ties can legitimately resolve either way) — so only the distance is
                    // required to match.
                    prop_assert_eq!(hit.t.to_bits(), t.to_bits());
                }
                other => prop_assert!(false, "mismatch: {:?}", other),
            }
        }
    }
}
