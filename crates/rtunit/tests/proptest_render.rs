//! Property-based tests of the multi-pass deferred renderer: for arbitrary random scenes, camera
//! placements, light positions and ambient-occlusion sample counts, the wavefront frame
//! (`ExecPolicy::wavefront`) is pixel-bit-identical — and `TraversalStats`-identical — to the
//! scalar per-pixel multi-pass reference (`ExecPolicy::scalar`), and the thread-parallel policy
//! matches both.  (The full ExecMode × query-kind matrix lives in `proptest_policy.rs`.)

use proptest::prelude::*;

use rayflex_geometry::{Triangle, Vec3};
use rayflex_rtunit::{Bvh4, Camera, ExecPolicy, FrameDesc, RenderPasses, Renderer, Scene};

fn coordinate() -> impl Strategy<Value = f32> {
    -30.0f32..30.0
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (coordinate(), coordinate(), coordinate()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn triangle() -> impl Strategy<Value = Triangle> {
    (vec3(), vec3(), vec3())
        .prop_map(|(a, b, c)| Triangle::new(a, b, c))
        .prop_filter("non-degenerate", |t| t.area() > 1e-3)
}

fn scene() -> impl Strategy<Value = Vec<Triangle>> {
    prop::collection::vec(triangle(), 1..24)
}

fn camera() -> impl Strategy<Value = Camera> {
    (vec3(), vec3()).prop_filter_map("camera must look somewhere", |(position, look_at)| {
        ((look_at - position).length_squared() > 1e-4)
            .then(|| Camera::looking_at(position, look_at))
    })
}

fn passes() -> impl Strategy<Value = RenderPasses> {
    (vec3(), 0usize..4, 0.5f32..20.0, any::<u64>()).prop_map(|(light, samples, radius, seed)| {
        RenderPasses::shadowed(light).with_ambient_occlusion(samples, radius, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_parallel_and_reference_frames_agree_bit_for_bit(
        triangles in scene(),
        camera in camera(),
        passes in passes(),
        width in 1usize..14,
        height in 1usize..14,
        threads in 1usize..6,
    ) {
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh.clone(), triangles.clone());
        let frame = FrameDesc::deferred(camera, width, height, passes);

        let mut reference = Renderer::new();
        let expected = reference.render(&scene, &frame, &ExecPolicy::scalar());

        let mut batched = Renderer::new();
        let image = batched.render(&scene, &frame, &ExecPolicy::wavefront());

        prop_assert_eq!(image.first_mismatch(&expected), None, "batched frame diverged");
        for y in 0..height {
            for x in 0..width {
                prop_assert!(image.pixel(x, y).is_finite(), "pixel ({}, {}) is NaN", x, y);
            }
        }
        // Identical per-ray beat sequences in every pass mean identical statistics.
        prop_assert_eq!(batched.stats(), reference.stats());

        let mut parallel = Renderer::new();
        let parallel_image =
            parallel.render(&scene, &frame, &ExecPolicy::parallel(threads));
        prop_assert_eq!(image.first_mismatch(&parallel_image), None, "parallel frame diverged");
        prop_assert_eq!(parallel.stats(), batched.stats());
    }
}
