//! Property-based tests of the wavefront any-hit/shadow query: for arbitrary random scenes, ray
//! streams (including finite shadow-style extents) and datapath configurations, the batched
//! wavefront path agrees with the scalar reference — the same occluded/unoccluded verdict per
//! ray, the same reported hit, and identical [`TraversalStats`] — and its verdict matches what
//! the closest-hit query implies (a sibling of `crates/core/tests/proptest_batch.rs`, one layer
//! up the stack).

use proptest::prelude::*;

use rayflex_core::PipelineConfig;
use rayflex_geometry::{Ray, Triangle, Vec3};
use rayflex_rtunit::{Bvh4, ExecPolicy, Scene, TraceRequest, TraversalEngine};

fn coordinate() -> impl Strategy<Value = f32> {
    -50.0f32..50.0
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (coordinate(), coordinate(), coordinate()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn triangle() -> impl Strategy<Value = Triangle> {
    (vec3(), vec3(), vec3())
        .prop_map(|(a, b, c)| Triangle::new(a, b, c))
        .prop_filter("non-degenerate", |t| t.area() > 1e-3)
}

fn scene() -> impl Strategy<Value = Vec<Triangle>> {
    prop::collection::vec(triangle(), 1..40)
}

/// Rays with random origins/directions and a mix of infinite and finite (shadow-style) extents.
fn ray() -> impl Strategy<Value = Ray> {
    (vec3(), vec3(), any::<bool>(), 1.0f32..120.0).prop_filter_map(
        "non-zero direction",
        |(origin, toward, finite, t_end)| {
            let dir = toward - origin;
            if dir.length_squared() <= 1e-6 {
                return None;
            }
            Some(if finite {
                Ray::with_extent(origin, dir, 1e-3, t_end)
            } else {
                Ray::new(origin, dir)
            })
        },
    )
}

fn configs() -> impl Strategy<Value = PipelineConfig> {
    (0usize..PipelineConfig::evaluated_configs().len())
        .prop_map(|i| PipelineConfig::evaluated_configs()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wavefront_any_hit_agrees_with_the_scalar_reference(
        triangles in scene(),
        rays in prop::collection::vec(ray(), 1..12),
        config in configs(),
    ) {
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());

        let request = TraceRequest::any_hit(&scene, &rays);
        let mut scalar = TraversalEngine::with_config(config);
        let expected = scalar.trace(&request, &ExecPolicy::scalar()).into_any();

        let mut wavefront = TraversalEngine::with_config(config);
        let got = wavefront.trace(&request, &ExecPolicy::wavefront()).into_any();

        // Identical verdicts and identical reported hits (the per-ray beat sequence is the
        // same, so not just hit/no-hit but the exact primitive and bit-exact distance match).
        prop_assert_eq!(expected.len(), got.len());
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            match (e, g) {
                (None, None) => {}
                (Some(e), Some(g)) => {
                    prop_assert_eq!(e.primitive, g.primitive, "ray {}", i);
                    prop_assert_eq!(e.t.to_bits(), g.t.to_bits(), "ray {}", i);
                }
                other => prop_assert!(false, "ray {}: {:?}", i, other),
            }
        }
        // Identical beat sequences mean identical statistics.
        prop_assert_eq!(scalar.stats(), wavefront.stats());
    }

    #[test]
    fn any_hit_verdicts_are_consistent_with_closest_hit(
        triangles in scene(),
        rays in prop::collection::vec(ray(), 1..8),
        config in configs(),
    ) {
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let mut closest = TraversalEngine::with_config(config);
        let mut any = TraversalEngine::with_config(config);
        for (i, r) in rays.iter().enumerate() {
            let one = core::slice::from_ref(r);
            let closest_hit = closest
                .trace(
                    &TraceRequest::closest_hit(&scene, one),
                    &ExecPolicy::scalar(),
                )
                .into_closest()[0];
            let any_hit = any
                .trace(&TraceRequest::any_hit(&scene, one), &ExecPolicy::scalar())
                .into_any()[0];
            // A ray is occluded iff it has a closest hit; the any-hit distance can only be
            // farther than or equal to the closest one.
            prop_assert_eq!(closest_hit.is_some(), any_hit.is_some(), "ray {}", i);
            if let (Some(c), Some(a)) = (closest_hit, any_hit) {
                prop_assert!(a.t >= c.t, "ray {}: any-hit {} < closest {}", i, a.t, c.t);
            }
        }
        prop_assert_eq!(closest.stats().rays, any.stats().rays);
    }
}
