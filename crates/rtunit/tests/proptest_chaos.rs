//! The chaos matrix — deterministic fault injection swept across FaultPlan × ExecMode × query
//! kind, pinning the hardened execution layer's contract: every injected fault yields either a
//! structured [`QueryError`] or a result bit-identical to the fault-free scalar reference —
//! **never a panic** (every entry point runs under `catch_unwind`), **never a silently wrong
//! answer**.
//!
//! The fault vocabulary is [`rayflex_rtunit::fault`]'s [`FaultPlan`]: corrupt-ray,
//! truncate-packet, flip-BVH-child, poison-shard-N and starve-budget, all seeded and
//! deterministic so a failing case replays bit-for-bit.  Malformed base workloads come from
//! [`rayflex_workloads::adversarial`].

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use rayflex_core::PipelineConfig;
use rayflex_geometry::{Aabb, Vec3};
use rayflex_rtunit::fault::{while_armed, FaultKind, FaultPlan};
use rayflex_rtunit::{
    Blas, Bvh4, Camera, CoherenceMode, ExecPolicy, FrameDesc, HierarchicalSearch, Instance,
    KnnEngine, KnnMetric, QueryError, QueryOutcome, Renderer, Scene, TraceRequest, TraversalEngine,
    TraversalStats, MIN_RAYS_PER_SHARD,
};
use rayflex_workloads::{adversarial, rays, scenes};

/// Every execution discipline the matrix sweeps, including both beat-budget edge values, the
/// SIMD lane widths of the lane-batched fast path and the three coherence disciplines (the
/// defaulted entries already run `SortAndCompact`; `Off` and `SortOnly` are crossed in
/// explicitly), so starved, capped and faulted runs cover the lane kernels, the coherent
/// admission sorter and the work-stealing pool, not just the scalar fast path.
fn swept_policies() -> Vec<ExecPolicy> {
    vec![
        ExecPolicy::scalar(),
        ExecPolicy::wavefront(),
        ExecPolicy::wavefront().with_simd_lanes(4),
        ExecPolicy::wavefront().with_coherence(CoherenceMode::Off),
        ExecPolicy::wavefront()
            .with_coherence(CoherenceMode::SortOnly)
            .with_simd_lanes(8),
        ExecPolicy::parallel(2),
        ExecPolicy::parallel(2).with_simd_lanes(8),
        ExecPolicy::parallel(2).with_coherence(CoherenceMode::SortOnly),
        ExecPolicy::fused(),
        ExecPolicy::fused().with_coherence(CoherenceMode::Off),
        ExecPolicy::fused().with_beat_budget(1),
        ExecPolicy::fused().with_beat_budget(1).with_simd_lanes(8),
        ExecPolicy::fused()
            .with_beat_budget(1)
            .with_coherence(CoherenceMode::SortOnly),
    ]
}

/// Runs `f` under `catch_unwind`: the chaos contract's "zero panics escape any public `try_*`
/// entry point", enforced at every call site of the matrix.
fn no_panic<T>(label: &str, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => value,
        Err(_) => panic!("a panic escaped a try_* entry point under {label}"),
    }
}

/// Lifts a workloads-level instanced description into `rtunit`'s two-level [`Scene`] (one BLAS
/// per mesh, one instance per placement) — the boundary crossing the workloads crate itself
/// stays below.
fn lift(desc: &scenes::InstancedSceneDesc) -> Scene {
    Scene::instanced(
        desc.meshes.iter().cloned().map(Blas::new).collect(),
        desc.placements
            .iter()
            .map(|(mesh, transform)| Instance::new(*mesh, *transform))
            .collect(),
    )
}

fn clean_rays(seed: u64, count: usize) -> Vec<rayflex_geometry::Ray> {
    rays::random_rays(
        seed,
        count,
        &Aabb::new(Vec3::splat(-25.0), Vec3::splat(25.0)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// FaultKind::CorruptRay × every ExecMode: a single corrupted ray in either stream fails
    /// the whole request with `InvalidRequest` naming the victim, before any beat is issued.
    #[test]
    fn corrupt_ray_faults_yield_invalid_request_in_every_mode(seed in any::<u64>()) {
        let triangles = adversarial::valid_scene(seed, 12, 20.0);
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh, triangles.clone());
        let mut stream = clean_rays(seed, 16);
        let plan = FaultPlan::new(FaultKind::CorruptRay, seed);
        let victim = plan.corrupt_rays(&mut stream).expect("non-empty stream");

        for policy in swept_policies() {
            let mut engine = TraversalEngine::baseline();
            let request = TraceRequest::closest_hit(&scene, &stream);
            let err = no_panic("corrupt-ray", || engine.try_trace(&request, &policy))
                .expect_err("a corrupted ray must be rejected");
            prop_assert!(matches!(err, QueryError::InvalidRequest { .. }), "{err}");
            prop_assert!(
                err.to_string().contains(&format!("ray {victim}")),
                "{}: error must name the victim: {err}", policy.mode
            );
            prop_assert_eq!(engine.stats(), TraversalStats::default(), "no beats issued");
        }

        // A wholesale-hostile stream (every ray untraceable) is rejected just the same.
        let hostile = adversarial::hostile_rays(seed, 8);
        let mut engine = TraversalEngine::baseline();
        let request = TraceRequest::any_hit(&scene, &hostile);
        let err = no_panic("hostile-rays", || {
            engine.try_trace(&request, &ExecPolicy::wavefront())
        })
        .expect_err("hostile rays must be rejected");
        prop_assert!(err.to_string().contains("any-hit ray 0"), "{err}");
    }

    /// FaultKind::TruncatePacket × every ExecMode: a truncated packet is still well-formed, so
    /// the engine must *succeed* — and return exactly the clean run's prefix (a short DMA
    /// transfer loses rays, it must never corrupt the survivors).
    #[test]
    fn truncate_packet_faults_yield_the_clean_prefix(seed in any::<u64>()) {
        let triangles = adversarial::valid_scene(seed, 12, 20.0);
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh, triangles.clone());
        let full = clean_rays(seed, 16);

        let mut reference = TraversalEngine::baseline();
        let expected = reference
            .try_trace(
                &TraceRequest::closest_hit(&scene, &full),
                &ExecPolicy::scalar(),
            )
            .expect("clean scene")
            .into_output();

        let plan = FaultPlan::new(FaultKind::TruncatePacket, seed);
        let mut truncated = full.clone();
        let keep = plan.truncate(&mut truncated);
        prop_assert!(keep >= 1 && keep < full.len());

        for policy in swept_policies() {
            let mut engine = TraversalEngine::baseline();
            let request = TraceRequest::closest_hit(&scene, &truncated);
            let outcome = no_panic("truncate-packet", || engine.try_trace(&request, &policy))
                .expect("a truncated packet is still valid");
            prop_assert!(outcome.is_complete());
            prop_assert_eq!(
                &outcome.output().closest, &expected.closest[..keep].to_vec(),
                "{}: surviving prefix must be bit-identical", policy.mode
            );
        }
    }

    /// FaultKind::FlipBvhChild × every ExecMode × {traversal, render}: broken BVH topology is
    /// rejected as `InvalidScene` before any beat — as are the adversarial generators' poisoned
    /// (non-finite vertex) and degenerate (zero-area triangle) scenes.
    #[test]
    fn broken_scenes_yield_invalid_scene_in_every_mode(seed in any::<u64>()) {
        let triangles = adversarial::valid_scene(seed, 24, 20.0);
        let mut bvh = Bvh4::build(&triangles);
        prop_assert!(FaultPlan::new(FaultKind::FlipBvhChild, seed).apply_to_bvh(&mut bvh));
        let scene = Scene::from_parts(bvh, triangles.clone());

        let stream = clean_rays(seed, 4);
        let frame = FrameDesc::primary(
            Camera::looking_at(Vec3::new(0.0, 0.0, -40.0), Vec3::ZERO),
            3,
            3,
        );
        let (poisoned, _) = adversarial::poisoned_scene(seed, 12);
        let (degenerate, _) = adversarial::degenerate_scene(seed, 12);

        for policy in swept_policies() {
            let mut engine = TraversalEngine::baseline();
            let request = TraceRequest::closest_hit(&scene, &stream);
            let err = no_panic("flip-bvh-child", || engine.try_trace(&request, &policy))
                .expect_err("a flipped BVH must be rejected");
            prop_assert!(matches!(err, QueryError::InvalidScene { .. }), "{err}");
            prop_assert_eq!(engine.stats(), TraversalStats::default(), "no beats issued");

            let mut renderer = Renderer::new();
            let err = no_panic("flip-bvh-child render", || {
                renderer.try_render(&scene, &frame, &policy)
            })
            .expect_err("the renderer must reject it too");
            prop_assert!(matches!(err, QueryError::InvalidScene { .. }), "{err}");

            for bad in [&poisoned, &degenerate] {
                let bad_scene = Scene::from_parts(Bvh4::build(&triangles), bad.clone());
                let mut engine = TraversalEngine::baseline();
                let request = TraceRequest::closest_hit(&bad_scene, &stream);
                let err = no_panic("adversarial scene", || engine.try_trace(&request, &policy))
                    .expect_err("a malformed triangle set must be rejected");
                prop_assert!(matches!(err, QueryError::InvalidScene { .. }), "{err}");
            }
        }
    }

    /// FaultKind::CorruptInstance × every ExecMode × {traversal, render} over two-level
    /// scenes — and the adversarial `corrupt_instanced_scene` generator: a broken placement
    /// (non-finite transform, singular transform, or dangling BLAS index) is rejected as
    /// `InvalidScene` naming the victim instance, before any beat.
    #[test]
    fn corrupt_instances_yield_invalid_scene_in_every_mode(seed in any::<u64>()) {
        let mut faulted = lift(&scenes::debris_field(seed, 2, 8, 25.0));
        let fault_victim = FaultPlan::new(FaultKind::CorruptInstance, seed)
            .apply_to_scene(&mut faulted)
            .expect("a populated instanced scene always yields a victim");
        let (bad_desc, generator_victim) = adversarial::corrupt_instanced_scene(seed, 2, 8);
        let generated = lift(&bad_desc);

        let stream = clean_rays(seed, 4);
        let frame = FrameDesc::primary(
            Camera::looking_at(Vec3::new(0.0, 0.0, -40.0), Vec3::ZERO),
            3,
            3,
        );

        for policy in swept_policies() {
            for (label, broken, victim) in [
                ("fault-plan corrupt instance", &faulted, fault_victim),
                ("adversarial corrupt instance", &generated, generator_victim),
            ] {
                let mut engine = TraversalEngine::baseline();
                let request = TraceRequest::closest_hit(broken, &stream);
                let err = no_panic(label, || engine.try_trace(&request, &policy))
                    .expect_err("a corrupt instance must be rejected");
                prop_assert!(matches!(err, QueryError::InvalidScene { .. }), "{err}");
                prop_assert!(
                    err.to_string().contains(&format!("instance {victim}")),
                    "{label}: error must name instance {victim}, got: {err}"
                );
                prop_assert_eq!(engine.stats(), TraversalStats::default(), "no beats issued");

                let mut renderer = Renderer::new();
                let err = no_panic(label, || renderer.try_render(broken, &frame, &policy))
                    .expect_err("the renderer must reject it too");
                prop_assert!(matches!(err, QueryError::InvalidScene { .. }), "{err}");
            }
        }
    }

    /// Corrupt vectors × every ExecMode × {distances, k-nearest, radius}: a NaN component or a
    /// mismatched dimension fails with `InvalidRequest` naming the victim candidate; a
    /// non-finite query point fails a radius batch the same way.
    #[test]
    fn corrupt_vectors_yield_invalid_request_in_every_mode(seed in any::<u64>()) {
        let (candidates, victim) = adversarial::hostile_vectors(seed, 10, 7);
        let query = vec![0.5f32; 7];

        for policy in swept_policies() {
            let mut engine = KnnEngine::new();
            let err = no_panic("hostile-vectors distances", || {
                engine.try_distances(&query, &candidates, KnnMetric::Euclidean, &policy)
            })
            .expect_err("corrupt candidates must be rejected");
            prop_assert!(
                err.to_string().contains(&format!("candidate {victim}")),
                "{}: error must name the victim: {err}", policy.mode
            );

            let err = no_panic("hostile-vectors k-nearest", || {
                KnnEngine::new().try_k_nearest(&query, &candidates, 3, KnnMetric::Cosine, &policy)
            })
            .expect_err("k-nearest must reject them too");
            prop_assert!(matches!(err, QueryError::InvalidRequest { .. }), "{err}");

            let mut search = HierarchicalSearch::build(
                vec![Vec3::ZERO, Vec3::splat(1.0)],
                0.05,
                PipelineConfig::extended_unified(),
            );
            let bad_point = (Vec3::new(f32::NAN, 0.0, 0.0), 2.0);
            let err = no_panic("hostile radius query", || {
                search.try_radius_queries(&[(Vec3::ZERO, 1.0), bad_point], &policy)
            })
            .expect_err("a NaN query point must be rejected");
            prop_assert!(err.to_string().contains("radius query 1"), "{err}");
        }
    }

    /// FaultKind::StarveBudget × every ExecMode × every query kind: under a one-beat deadline,
    /// every entry point returns a structured deadline error or a (possibly empty) completed
    /// prefix bit-identical to the unstarved run — never a panic, never a wrong answer.
    #[test]
    fn starved_budgets_yield_structured_partials_in_every_mode(seed in any::<u64>()) {
        let triangles = adversarial::valid_scene(seed, 12, 20.0);
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh, triangles.clone());
        let stream = clean_rays(seed, 8);
        let frame = FrameDesc::primary(
            Camera::looking_at(Vec3::new(0.0, 0.0, -40.0), Vec3::ZERO),
            2,
            2,
        );
        let candidates: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32; 7]).collect();
        let points: Vec<Vec3> = (0..12).map(|i| Vec3::splat(i as f32)).collect();

        let mut reference = TraversalEngine::baseline();
        let expected = reference
            .try_trace(
                &TraceRequest::closest_hit(&scene, &stream),
                &ExecPolicy::scalar(),
            )
            .expect("clean scene")
            .into_output();
        let expected_distances = KnnEngine::new()
            .try_distances(&candidates[0], &candidates, KnnMetric::Euclidean, &ExecPolicy::scalar())
            .expect("clean candidates")
            .into_output();

        for policy in swept_policies() {
            let starved = policy.with_max_total_beats(1);

            let mut engine = TraversalEngine::baseline();
            let request = TraceRequest::closest_hit(&scene, &stream);
            match no_panic("starved trace", || engine.try_trace(&request, &starved)) {
                Ok(outcome) => {
                    let completed = outcome.partial().map_or(stream.len(), |p| p.completed);
                    prop_assert_eq!(
                        &outcome.output().closest, &expected.closest[..completed].to_vec(),
                        "{}: a starved prefix must be bit-identical", starved.mode
                    );
                }
                Err(QueryError::BudgetExhausted { max_total_beats }) => {
                    prop_assert_eq!(max_total_beats, 1);
                }
                Err(err) => prop_assert!(false, "unexpected error: {}", err),
            }

            let mut renderer = Renderer::new();
            let err = no_panic("starved render", || {
                renderer.try_render(&scene, &frame, &starved)
            })
            .expect_err("a 2x2 frame can never finish in one beat");
            prop_assert!(matches!(err, QueryError::DeadlineExceeded { .. }), "{err}");

            match no_panic("starved distances", || {
                KnnEngine::new().try_distances(
                    &candidates[0], &candidates, KnnMetric::Euclidean, &starved,
                )
            }) {
                Ok(outcome) => {
                    let completed =
                        outcome.partial().map_or(candidates.len(), |p| p.completed);
                    let got: Vec<u32> = outcome.output().iter().map(|d| d.to_bits()).collect();
                    let want: Vec<u32> =
                        expected_distances[..completed].iter().map(|d| d.to_bits()).collect();
                    prop_assert_eq!(got, want, "{}: starved distances prefix", starved.mode);
                }
                Err(QueryError::BudgetExhausted { .. }) => {}
                Err(err) => prop_assert!(false, "unexpected error: {}", err),
            }

            let mut search =
                HierarchicalSearch::build(points.clone(), 0.05, PipelineConfig::extended_unified());
            match no_panic("starved radius", || {
                search.try_radius_queries(&[(Vec3::ZERO, 3.0)], &starved)
            }) {
                Ok(_) | Err(QueryError::BudgetExhausted { .. }) => {}
                Err(err) => prop_assert!(false, "unexpected error: {}", err),
            }
        }
    }

    /// The acceptance-criterion deadline property, swept over random caps: a budget-capped run
    /// returns a typed partial result whose completed prefix is bit-identical to the uncapped
    /// run, in every ExecMode.
    #[test]
    fn capped_runs_return_bit_identical_prefixes(seed in any::<u64>(), cap in 1u64..400) {
        let triangles = adversarial::valid_scene(seed, 12, 20.0);
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh, triangles.clone());
        let stream = clean_rays(seed, 10);
        let request = TraceRequest::closest_hit(&scene, &stream);

        let mut reference = TraversalEngine::baseline();
        let expected = reference
            .try_trace(&request, &ExecPolicy::scalar())
            .expect("clean scene")
            .into_output();

        for policy in swept_policies() {
            let capped = policy.with_max_total_beats(cap);
            let mut engine = TraversalEngine::baseline();
            match no_panic("capped trace", || engine.try_trace(&request, &capped)) {
                Ok(QueryOutcome::Complete(output)) => {
                    prop_assert_eq!(&output, &expected, "{}: complete run diverged", capped.mode);
                }
                Ok(QueryOutcome::Partial(partial)) => {
                    prop_assert!(partial.completed < stream.len());
                    prop_assert!(partial.beats_spent >= cap, "cancelled before the deadline");
                    prop_assert_eq!(
                        &partial.output.closest,
                        &expected.closest[..partial.completed].to_vec(),
                        "{}: partial prefix diverged", capped.mode
                    );
                }
                Err(QueryError::BudgetExhausted { max_total_beats }) => {
                    prop_assert_eq!(max_total_beats, cap);
                }
                Err(err) => prop_assert!(false, "unexpected error: {}", err),
            }
        }
    }

    /// FaultKind::ScramblePermutation × every ExecMode: corrupting the coherent admission order
    /// (one seeded swap of two admission-list entries, still a valid permutation) must change
    /// **nothing observable** — hits and statistics stay bit-identical to the fault-free scalar
    /// reference in every mode and coherence discipline, and no panic escapes.  This is the
    /// proof that reassembly is index-keyed: results route by item index, never by dispatch
    /// position, so any admission permutation yields the same answer.
    #[test]
    fn scrambled_admission_permutations_are_unobservable(seed in any::<u64>()) {
        let triangles = adversarial::valid_scene(seed, 12, 20.0);
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh, triangles.clone());
        let closest = clean_rays(seed, 12);
        let any = clean_rays(seed.wrapping_add(1), 9);
        let request = TraceRequest::pair(&scene, &closest, &any);

        let mut reference = TraversalEngine::baseline();
        let expected = reference
            .try_trace(&request, &ExecPolicy::scalar())
            .expect("clean scene")
            .into_output();

        let plan = FaultPlan::new(FaultKind::ScramblePermutation, seed);
        for policy in swept_policies() {
            let mut engine = TraversalEngine::baseline();
            let outcome = while_armed(&plan, || {
                no_panic("scrambled admission", || engine.try_trace(&request, &policy))
            })
            .expect("a scrambled (but valid) permutation is not an error");
            prop_assert!(outcome.is_complete());
            prop_assert_eq!(
                outcome.output(), &expected,
                "{}: a scrambled admission order leaked into the outputs", policy.mode
            );
            prop_assert_eq!(
                engine.stats(), reference.stats(),
                "{}: stats must be permutation-invariant", policy.mode
            );
        }
    }
}

proptest! {
    // Each case spawns real worker threads; a handful of seeds is plenty.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// FaultKind::PoisonShard × ExecMode: a poisoned parallel worker is recovered by the
    /// one-shot scalar retry of its index range — bit-identical output, `shard_fallbacks`
    /// recording the event — while non-sharding modes never observe the armed fault at all.
    #[test]
    fn poisoned_shards_recover_bit_identically(seed in any::<u64>()) {
        let triangles = adversarial::valid_scene(seed, 12, 20.0);
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh, triangles.clone());
        // Two full shards, so Parallel really spawns two workers.
        let stream = clean_rays(seed, MIN_RAYS_PER_SHARD * 2);
        let request = TraceRequest::closest_hit(&scene, &stream);

        let mut reference = TraversalEngine::baseline();
        let expected = reference
            .try_trace(&request, &ExecPolicy::scalar())
            .expect("clean scene")
            .into_output();

        let plan = FaultPlan::new(FaultKind::PoisonShard((seed % 2) as usize), seed);

        let mut engine = TraversalEngine::baseline();
        let outcome = while_armed(&plan, || {
            no_panic("poisoned parallel trace", || {
                engine.try_trace(&request, &ExecPolicy::parallel(2))
            })
        })
        .expect("a single poisoned shard must be recovered, not surfaced");
        prop_assert!(outcome.is_complete());
        prop_assert_eq!(outcome.output(), &expected, "recovery must be bit-identical");
        let mut stats = engine.stats();
        prop_assert_eq!(stats.shard_fallbacks, 1, "the fallback leaves an audit trail");
        stats.shard_fallbacks = 0;
        prop_assert_eq!(stats, reference.stats(), "beat counts unchanged by recovery");

        // A non-sharding mode under the same armed plan never reaches a shard checkpoint.
        let mut unsharded = TraversalEngine::baseline();
        let outcome = while_armed(&plan, || {
            no_panic("poisoned wavefront trace", || {
                unsharded.try_trace(&request, &ExecPolicy::wavefront())
            })
        })
        .expect("no shard, no poison");
        prop_assert_eq!(outcome.output(), &expected);
        prop_assert_eq!(unsharded.stats().shard_fallbacks, 0);
    }

    /// FaultKind::PoisonShard deep inside the work-stealing pool: a stream long enough that the
    /// pool cuts more chunks than workers (so chunks migrate between deques), with the poisoned
    /// *chunk* index beyond the initial round-robin deal of worker 0.  Whichever worker ends up
    /// executing the poisoned chunk — owner or thief — the one-shot scalar retry of exactly that
    /// chunk's range recovers bit-identically, `shard_fallbacks` records one event, and the pool
    /// counters prove the run really oversharded.  Swept across SIMD lane widths: the retry path
    /// is the scalar reference regardless of the faulted worker's lane setting.
    #[test]
    fn poisoned_stolen_chunks_recover_bit_identically(
        seed in any::<u64>(),
        lanes_index in 0usize..3,
    ) {
        let lanes = [1usize, 4, 8][lanes_index];
        let triangles = adversarial::valid_scene(seed, 12, 20.0);
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh, triangles.clone());
        // Eight chunk floors across two workers: the pool deals four chunks to each deque, so
        // any load imbalance makes the fast worker steal from the slow one's back.
        let stream = clean_rays(seed, MIN_RAYS_PER_SHARD * 8);
        let request = TraceRequest::closest_hit(&scene, &stream);

        let mut reference = TraversalEngine::baseline();
        let expected = reference
            .try_trace(&request, &ExecPolicy::scalar())
            .expect("clean scene")
            .into_output();

        // Poison a chunk from the *second half* of the plan (global index 4..8): under the
        // round-robin deal these start in the deques' tails, the region stealing drains first.
        let victim = 4 + (seed % 4) as usize;
        let plan = FaultPlan::new(FaultKind::PoisonShard(victim), seed);

        let mut engine = TraversalEngine::baseline();
        let policy = ExecPolicy::parallel(2).with_simd_lanes(lanes);
        let outcome = while_armed(&plan, || {
            no_panic("poisoned stolen chunk", || engine.try_trace(&request, &policy))
        })
        .expect("a single poisoned chunk must be recovered, not surfaced");
        prop_assert!(outcome.is_complete());
        prop_assert_eq!(outcome.output(), &expected, "recovery must be bit-identical");
        let mut stats = engine.stats();
        prop_assert_eq!(stats.shard_fallbacks, 1, "exactly one chunk fell back");
        stats.shard_fallbacks = 0;
        prop_assert_eq!(stats, reference.stats(), "beat counts unchanged by recovery");
        let pool = engine.pool_stats();
        prop_assert_eq!(pool.workers, 2, "two workers");
        prop_assert_eq!(pool.chunks, 8, "adaptive chunking oversharded the stream");
    }
}
