//! The zero-alloc steady-state contract of the wavefront hot path, verified by a counting
//! global allocator: after one warm-up trace has sized the engine's pooled buffers (pass
//! request/response buffers, the admission permutation and its sort keys, the per-ray operand
//! buffer, the pooled per-ray state roster), every further trace of a same-shape workload
//! performs **no allocation inside the pass loop** — the only heap traffic left is the hit
//! vector each call returns to the caller.
//!
//! This file deliberately holds a single `#[test]` (plus the allocator plumbing): the counting
//! allocator tallies process-wide, so a sibling test running on another harness thread would
//! pollute the counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use rayflex_geometry::{Ray, Triangle, Vec3};
use rayflex_rtunit::{CoherenceMode, ExecPolicy, Scene, TraceRequest, TraversalEngine};

/// [`System`] with an on/off allocation counter: `alloc`/`realloc` calls are tallied while
/// armed, `dealloc` is not (returning pooled buffers is free; what the contract bounds is new
/// heap traffic).
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

/// Runs `f` with the counter armed and returns how many allocations it performed.
fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let value = f();
    ARMED.store(false, Ordering::SeqCst);
    (value, ALLOCATIONS.load(Ordering::SeqCst))
}

fn wall(count: usize) -> Vec<Triangle> {
    (0..count)
        .map(|i| {
            let x = (i % 8) as f32 * 2.0 - 8.0;
            let y = (i / 8) as f32 * 2.0 - 6.0;
            let z = 10.0 + (i % 5) as f32;
            Triangle::new(
                Vec3::new(x, y, z),
                Vec3::new(x + 1.8, y, z),
                Vec3::new(x + 0.9, y + 1.8, z),
            )
        })
        .collect()
}

fn camera_rays(count: usize) -> Vec<Ray> {
    (0..count)
        .map(|i| {
            let x = (i % 16) as f32 * 0.8 - 6.4;
            let y = (i / 16) as f32 * 0.8 - 6.4;
            // Alternate direction signs so the octant sorter has real work to do.
            let flip = if i % 2 == 0 { 1.0 } else { -1.0 };
            Ray::new(
                Vec3::new(x, y * flip, 0.0),
                Vec3::new(0.01 * flip, -0.02, 1.0),
            )
        })
        .collect()
}

#[test]
fn a_warm_wavefront_trace_allocates_only_its_output_vector() {
    let scene = Scene::flat(wall(48));
    let rays = camera_rays(96);
    let request = TraceRequest::closest_hit(&scene, &rays);

    for coherence in CoherenceMode::ALL {
        let policy = ExecPolicy::wavefront()
            .with_simd_lanes(8)
            .with_coherence(coherence);
        let mut engine = TraversalEngine::baseline();
        // Two warm-ups: the first sizes the scheduler's pass arena (request/response/owner
        // buffers, admission permutation, sort keys), the operand pool and the per-ray state
        // roster; the second settles the pooled per-ray stacks into their steady pool ordering
        // (states return to the pool in retirement order, which is fixed from here on, so each
        // state's capacity now fits the item it will serve on every later run).
        let expected = engine.trace(&request, &policy);
        let second = engine.trace(&request, &policy);
        assert_eq!(second, expected, "{coherence:?}: warm run changed the hits");

        // Exactly one allocation: the `Vec<Option<TraversalHit>>` collected for the caller
        // (exact-size iterator).  Everything inside the pass loop — requests, responses, owner
        // maps, sort keys, the admission permutation, per-ray stacks — is recycled.
        let (third, steady) = count_allocations(|| engine.trace(&request, &policy));
        assert_eq!(
            third, expected,
            "{coherence:?}: steady run changed the hits"
        );
        assert_eq!(
            steady, 1,
            "{coherence:?}: a steady-state wavefront trace allocated {steady} times; \
             the pass arena must be fully recycled"
        );

        // Steady state is steady: the next run costs exactly the same.
        let (fourth, still) = count_allocations(|| engine.trace(&request, &policy));
        assert_eq!(
            fourth, expected,
            "{coherence:?}: steady run changed the hits"
        );
        assert_eq!(
            still, 1,
            "{coherence:?}: allocation count must not grow across steady runs"
        );
    }
}
