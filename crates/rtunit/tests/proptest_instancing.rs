//! The instancing bit-identity matrix — the correctness anchor of the two-level scene
//! refactor, stated as properties over random BLAS sets, random placements, and random
//! affine transforms:
//!
//! * tracing a two-level instanced scene returns **hits bit-identical** to tracing its
//!   [`Scene::flatten`] twin, for both query kinds, in **every** [`ExecMode`] and at every
//!   SIMD width in {1, 4, 8} (statistics differ only by the documented TLAS counters — the
//!   trees are different, so box/beat totals are not compared across representations);
//! * within the instanced representation, every mode × lane combination is bit-identical to
//!   the scalar reference in **both** hits and statistics — the cross-policy invariant holds
//!   for two-level scenes exactly as it does for flat ones;
//! * after moving instances, [`Scene::refit`] re-traces bit-identical hits to a freshly built
//!   TLAS over the same placements.

use proptest::prelude::*;

use rayflex_geometry::{Affine, Ray, Triangle, Vec3};
use rayflex_rtunit::{
    Blas, CoherenceMode, ExecPolicy, Instance, QueryError, QueryOutcome, Scene, TraceRequest,
    TraversalEngine,
};

fn coordinate() -> impl Strategy<Value = f32> {
    -2.0f32..2.0
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (coordinate(), coordinate(), coordinate()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn triangle() -> impl Strategy<Value = Triangle> {
    (vec3(), vec3(), vec3())
        .prop_map(|(a, b, c)| Triangle::new(a, b, c))
        .prop_filter("non-degenerate", |t| t.area() > 1e-3)
}

fn mesh() -> impl Strategy<Value = Vec<Triangle>> {
    prop::collection::vec(triangle(), 1..8)
}

/// Well-conditioned random placements: a rotation about two axes, a uniform scale bounded away
/// from zero, then a translation that keeps the instance inside the ray volume.
fn transform() -> impl Strategy<Value = Affine> {
    (
        -15.0f32..15.0,
        -15.0f32..15.0,
        -15.0f32..15.0,
        0.0f32..core::f32::consts::TAU,
        0.0f32..core::f32::consts::TAU,
        0.5f32..2.0,
    )
        .prop_map(|(tx, ty, tz, yaw, pitch, scale)| {
            Affine::translation(Vec3::new(tx, ty, tz))
                .then(&Affine::rotate_y(yaw))
                .then(&Affine::rotate_x(pitch))
                .then(&Affine::uniform_scale(scale))
        })
}

/// A random BLAS set and placements over it: 1–3 meshes, 1–8 instances, every instance index
/// valid by construction.
fn instanced_parts() -> impl Strategy<Value = (Vec<Vec<Triangle>>, Vec<(usize, Affine)>)> {
    (
        prop::collection::vec(mesh(), 1..4),
        prop::collection::vec((0..64usize, transform()), 1..9),
    )
        .prop_map(|(meshes, raw)| {
            let kinds = meshes.len();
            let placements = raw.into_iter().map(|(pick, t)| (pick % kinds, t)).collect();
            (meshes, placements)
        })
}

/// Rays with random origins/directions and a mix of infinite and finite (shadow-style) extents,
/// sized to the placement volume.
fn ray() -> impl Strategy<Value = Ray> {
    (
        (-25.0f32..25.0, -25.0f32..25.0, -25.0f32..25.0),
        vec3(),
        any::<bool>(),
        1.0f32..80.0,
    )
        .prop_filter_map(
            "non-zero direction",
            |((ox, oy, oz), direction, finite, extent)| {
                if direction.length() < 1e-3 {
                    return None;
                }
                let origin = Vec3::new(ox, oy, oz);
                Some(if finite {
                    Ray::with_extent(origin, direction, 0.0, extent)
                } else {
                    Ray::new(origin, direction)
                })
            },
        )
}

fn build_scene(meshes: &[Vec<Triangle>], placements: &[(usize, Affine)]) -> Scene {
    Scene::instanced(
        meshes.iter().cloned().map(Blas::new).collect(),
        placements
            .iter()
            .map(|(mesh, transform)| Instance::new(*mesh, *transform))
            .collect(),
    )
}

/// Every ExecMode × simd_lanes ∈ {1, 4, 8} × CoherenceMode ∈ {Off, SortOnly, SortAndCompact} —
/// the full matrix the instanced representation must hold the cross-policy invariant over.  The
/// coherence axis rotates through the lane sweep (every discipline crosses every mode, and every
/// mode × lane pair appears) to keep the case count tractable; the defaulted budgeted entry runs
/// `SortAndCompact`.
fn swept_policies() -> Vec<ExecPolicy> {
    let mut policies = Vec::new();
    for (lanes, coherence) in [
        (1usize, CoherenceMode::Off),
        (4, CoherenceMode::SortOnly),
        (8, CoherenceMode::SortAndCompact),
        (8, CoherenceMode::Off),
        (4, CoherenceMode::SortAndCompact),
        (1, CoherenceMode::SortOnly),
    ] {
        policies.push(
            ExecPolicy::wavefront()
                .with_simd_lanes(lanes)
                .with_coherence(coherence),
        );
        policies.push(
            ExecPolicy::parallel(3)
                .with_simd_lanes(lanes)
                .with_coherence(coherence),
        );
        policies.push(
            ExecPolicy::fused()
                .with_simd_lanes(lanes)
                .with_coherence(coherence),
        );
    }
    policies.push(ExecPolicy::fused().with_beat_budget(1));
    policies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Instanced vs flattened: identical hits for both query kinds under every mode × lane
    /// combination, and — within the instanced representation — statistics identical to the
    /// instanced scalar reference.
    #[test]
    fn instanced_traces_bit_identical_to_the_flattened_scene(
        parts in instanced_parts(),
        closest_rays in prop::collection::vec(ray(), 0..10),
        shadow_rays in prop::collection::vec(ray(), 0..10),
    ) {
        let (meshes, placements) = parts;
        let scene = build_scene(&meshes, &placements);
        let flattened = scene.flatten();
        prop_assert!(scene.is_instanced());
        prop_assert!(!flattened.is_instanced());
        prop_assert_eq!(scene.triangle_count(), flattened.triangle_count());

        let flat_request = TraceRequest::pair(&flattened, &closest_rays, &shadow_rays);
        let expected = TraversalEngine::baseline().trace(&flat_request, &ExecPolicy::scalar());

        let request = TraceRequest::pair(&scene, &closest_rays, &shadow_rays);
        let mut reference = TraversalEngine::baseline();
        let scalar = reference.trace(&request, &ExecPolicy::scalar());
        prop_assert_eq!(&scalar, &expected, "instanced scalar diverged from flattened");

        for policy in swept_policies() {
            let mut engine = TraversalEngine::baseline();
            let got = engine.trace(&request, &policy);
            prop_assert_eq!(&got, &expected, "{} (lanes {}) hits diverged", policy.mode, policy.simd_lanes);
            prop_assert_eq!(
                engine.stats(),
                reference.stats(),
                "{} (lanes {}) stats diverged",
                policy.mode,
                policy.simd_lanes
            );
        }
    }

    /// Moving instances then [`Scene::refit`] re-traces bit-identical hits to building a fresh
    /// TLAS over the moved placements — in the scalar reference and the full policy sweep.
    #[test]
    fn refit_matches_a_fresh_tlas_build_bit_for_bit(
        parts in instanced_parts(),
        moves in prop::collection::vec(transform(), 9..10),
        rays in prop::collection::vec(ray(), 0..10),
    ) {
        let (meshes, placements) = parts;
        let mut refitted = build_scene(&meshes, &placements);
        let moved: Vec<(usize, Affine)> = placements
            .iter()
            .zip(&moves)
            .map(|((mesh, _), movement)| (*mesh, *movement))
            .collect();
        for (index, (_, transform)) in moved.iter().enumerate() {
            refitted.set_instance_transform(index, *transform);
        }
        refitted.refit();

        let fresh = build_scene(&meshes, &moved);

        let refit_request = TraceRequest::closest_hit(&refitted, &rays);
        let fresh_request = TraceRequest::closest_hit(&fresh, &rays);
        let expected =
            TraversalEngine::baseline().trace(&fresh_request, &ExecPolicy::scalar());
        let scalar =
            TraversalEngine::baseline().trace(&refit_request, &ExecPolicy::scalar());
        prop_assert_eq!(&scalar, &expected, "refit scalar diverged from fresh build");

        for policy in swept_policies() {
            let mut engine = TraversalEngine::baseline();
            let got = engine.trace(&refit_request, &policy);
            prop_assert_eq!(&got, &expected, "{} refit hits diverged", policy.mode);
        }
    }

    /// Deadline caps over instanced scenes, across the full mode × lane × coherence sweep: a
    /// budget-capped run completes bit-identically or returns a partial whose completed prefix
    /// is bit-identical to the same prefix of the uncapped scalar reference — octant-sorted
    /// admission must not leak dispatch order into the retired-prefix contract.
    #[test]
    fn capped_instanced_prefixes_match_the_scalar_reference(
        parts in instanced_parts(),
        rays in prop::collection::vec(ray(), 1..10),
        cap in 1u64..250,
    ) {
        let (meshes, placements) = parts;
        let scene = build_scene(&meshes, &placements);
        let request = TraceRequest::closest_hit(&scene, &rays);
        let expected = TraversalEngine::baseline()
            .try_trace(&request, &ExecPolicy::scalar())
            .expect("a generated instanced scene is valid")
            .into_output();

        for policy in swept_policies() {
            let capped = policy.with_max_total_beats(cap);
            let mut engine = TraversalEngine::baseline();
            match engine.try_trace(&request, &capped) {
                Ok(QueryOutcome::Complete(output)) => {
                    prop_assert_eq!(&output, &expected, "{}: complete run diverged", capped.mode);
                }
                Ok(QueryOutcome::Partial(partial)) => {
                    prop_assert!(partial.completed < rays.len());
                    prop_assert_eq!(
                        &partial.output.closest,
                        &expected.closest[..partial.completed].to_vec(),
                        "{}: capped prefix diverged", capped.mode
                    );
                }
                Err(QueryError::BudgetExhausted { max_total_beats }) => {
                    prop_assert_eq!(max_total_beats, cap);
                }
                Err(err) => prop_assert!(false, "unexpected error: {}", err),
            }
        }
    }
}
