//! The cross-policy matrix property test — the tentpole invariant of the `ExecPolicy` API,
//! stated once and enforced everywhere: for arbitrary random workloads of **every** query kind
//! (render frames, closest-hit streams, any-hit streams, k-NN scoring, radius/collect batches),
//! **every** [`ExecMode`] — wavefront, parallel, fused, and fused under beat budgets including
//! the `0` (unlimited) and `1` (strict round-robin) edge values — produces outputs and
//! statistics bit-identical to [`ExecMode::ScalarReference`].
//!
//! A separate property pins the fairness knob itself: `beat_budget_per_stream = 1` must
//! *change* the fused pass structure (more, smaller passes) while changing no stream's outputs.

use proptest::prelude::*;

use rayflex_core::PipelineConfig;
use rayflex_geometry::{Ray, Triangle, Vec3};
use rayflex_rtunit::{
    AdmissionOrder, Bvh4, Camera, CoherenceMode, ExecMode, ExecPolicy, FrameDesc,
    HierarchicalSearch, KnnEngine, KnnMetric, RenderPasses, Renderer, Scene, TraceRequest,
    TraversalEngine,
};

fn coordinate() -> impl Strategy<Value = f32> {
    -30.0f32..30.0
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (coordinate(), coordinate(), coordinate()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn triangle() -> impl Strategy<Value = Triangle> {
    (vec3(), vec3(), vec3())
        .prop_map(|(a, b, c)| Triangle::new(a, b, c))
        .prop_filter("non-degenerate", |t| t.area() > 1e-3)
}

fn scene() -> impl Strategy<Value = Vec<Triangle>> {
    prop::collection::vec(triangle(), 1..20)
}

/// Rays with random origins/directions and a mix of infinite and finite (shadow-style) extents.
fn ray() -> impl Strategy<Value = Ray> {
    (vec3(), vec3(), any::<bool>(), 1.0f32..120.0).prop_filter_map(
        "non-zero direction",
        |(origin, toward, finite, t_end)| {
            let dir = toward - origin;
            if dir.length_squared() <= 1e-6 {
                return None;
            }
            Some(if finite {
                Ray::with_extent(origin, dir, 1e-3, t_end)
            } else {
                Ray::new(origin, dir)
            })
        },
    )
}

fn camera() -> impl Strategy<Value = Camera> {
    (vec3(), vec3()).prop_filter_map("camera must look somewhere", |(position, look_at)| {
        ((look_at - position).length_squared() > 1e-4)
            .then(|| Camera::looking_at(position, look_at))
    })
}

fn passes() -> impl Strategy<Value = RenderPasses> {
    (
        vec3(),
        0usize..3,
        0.5f32..20.0,
        any::<u64>(),
        any::<bool>(),
        0.0f32..1.0,
    )
        .prop_map(|(light, samples, radius, seed, adaptive, bounce)| {
            RenderPasses::shadowed(light)
                .with_ambient_occlusion(samples, radius, seed)
                .with_adaptive_ao(adaptive)
                .with_bounce(bounce)
        })
}

fn vector(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-8.0f32..8.0, dim..dim + 1)
}

fn points() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(vec3(), 1..32)
}

fn radius_queries() -> impl Strategy<Value = Vec<(Vec3, f32)>> {
    prop::collection::vec((vec3(), 1.0f32..25.0), 1..5)
}

/// The non-reference policies of the matrix sweep, including both beat-budget edge values
/// (`0` = unlimited, `1` = strict round-robin), a mid value, the SIMD lane widths of the
/// lane-batched fast path (1 = plain scalar fast path, 4 and 8 engage the lane kernels) and the
/// three coherence disciplines (the defaulted entries already run
/// [`CoherenceMode::SortAndCompact`]; `Off` and `SortOnly` are crossed in explicitly), all over
/// the dispatch modes they feed (wavefront, the work-stealing parallel pool, and fused —
/// including fused under a strict beat budget).
fn swept_policies() -> Vec<ExecPolicy> {
    vec![
        ExecPolicy::wavefront(),
        ExecPolicy::wavefront().with_simd_lanes(4),
        ExecPolicy::wavefront().with_simd_lanes(8),
        ExecPolicy::wavefront().with_coherence(CoherenceMode::Off),
        ExecPolicy::wavefront()
            .with_coherence(CoherenceMode::SortOnly)
            .with_simd_lanes(8),
        ExecPolicy::parallel(3),
        ExecPolicy::parallel(3).with_simd_lanes(8),
        ExecPolicy::parallel(3)
            .with_coherence(CoherenceMode::Off)
            .with_simd_lanes(4),
        ExecPolicy::parallel_auto(),
        ExecPolicy::parallel_auto().with_coherence(CoherenceMode::SortOnly),
        ExecPolicy::fused(),
        ExecPolicy::fused().with_simd_lanes(4),
        ExecPolicy::fused().with_coherence(CoherenceMode::SortOnly),
        ExecPolicy::fused()
            .with_coherence(CoherenceMode::Off)
            .with_simd_lanes(8),
        ExecPolicy::fused().with_beat_budget(1),
        ExecPolicy::fused().with_beat_budget(1).with_simd_lanes(8),
        ExecPolicy::fused()
            .with_beat_budget(1)
            .with_coherence(CoherenceMode::SortOnly),
        ExecPolicy::fused().with_beat_budget(4),
        ExecPolicy::fused()
            .with_beat_budget(4)
            .with_coherence(CoherenceMode::Off),
        ExecPolicy::fused().with_admission_order(AdmissionOrder::EarliestDeadlineFirst),
        ExecPolicy::fused()
            .with_admission_order(AdmissionOrder::EarliestDeadlineFirst)
            .with_beat_budget(1),
        ExecPolicy::fused()
            .with_admission_order(AdmissionOrder::EarliestDeadlineFirst)
            .with_beat_budget(4)
            .with_simd_lanes(8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ExecMode × {closest-hit, any-hit}: hits and stats pinned to the scalar reference.
    #[test]
    fn traversal_outputs_and_stats_are_policy_invariant(
        triangles in scene(),
        closest_rays in prop::collection::vec(ray(), 0..10),
        shadow_rays in prop::collection::vec(ray(), 0..10),
    ) {
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh.clone(), triangles.clone());
        let request = TraceRequest::pair(&scene, &closest_rays, &shadow_rays);

        let mut reference = TraversalEngine::baseline();
        let expected = reference.trace(&request, &ExecPolicy::scalar());

        for policy in swept_policies() {
            let mut engine = TraversalEngine::baseline();
            let got = engine.trace(&request, &policy);
            prop_assert_eq!(&got, &expected, "{} hits diverged", policy.mode);
            prop_assert_eq!(engine.stats(), reference.stats(), "{} stats diverged", policy.mode);
        }
    }

    /// ExecMode × render: frames (primary, deferred, bounce, adaptive AO) pinned pixel-bit and
    /// stat-for-stat to the scalar reference.
    #[test]
    fn rendered_frames_are_policy_invariant(
        triangles in scene(),
        camera in camera(),
        passes in passes(),
        width in 1usize..10,
        height in 1usize..10,
        primary_only in any::<bool>(),
    ) {
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh.clone(), triangles.clone());
        let frame = if primary_only {
            FrameDesc::primary(camera, width, height)
        } else {
            FrameDesc::deferred(camera, width, height, passes)
        };

        let mut reference = Renderer::new();
        let expected = reference.render(&scene, &frame, &ExecPolicy::scalar());

        for policy in swept_policies() {
            let mut renderer = Renderer::new();
            let image = renderer.render(&scene, &frame, &policy);
            prop_assert_eq!(
                image.first_mismatch(&expected), None,
                "{} frame diverged", policy.mode
            );
            prop_assert_eq!(renderer.stats(), reference.stats(), "{} stats diverged", policy.mode);
        }
    }

    /// ExecMode × kNN: distances, neighbours and stats pinned to the scalar reference.
    #[test]
    fn knn_distances_and_neighbours_are_policy_invariant(
        candidates in prop::collection::vec(vector(19), 1..10),
        k in 0usize..6,
        cosine in any::<bool>(),
    ) {
        let metric = if cosine { KnnMetric::Cosine } else { KnnMetric::Euclidean };
        let query = candidates[0].clone();

        let mut reference = KnnEngine::new();
        let expected: Vec<u32> = reference
            .distances(&query, &candidates, metric, &ExecPolicy::scalar())
            .iter()
            .map(|d| d.to_bits())
            .collect();
        let expected_neighbours =
            KnnEngine::new().k_nearest(&query, &candidates, k, metric, &ExecPolicy::scalar());

        for policy in swept_policies() {
            let mut engine = KnnEngine::new();
            let got: Vec<u32> = engine
                .distances(&query, &candidates, metric, &policy)
                .iter()
                .map(|d| d.to_bits())
                .collect();
            prop_assert_eq!(&got, &expected, "{} distances diverged", policy.mode);
            prop_assert_eq!(engine.stats(), reference.stats(), "{} stats diverged", policy.mode);
            let neighbours =
                KnnEngine::new().k_nearest(&query, &candidates, k, metric, &policy);
            prop_assert_eq!(&neighbours, &expected_neighbours, "{} top-k diverged", policy.mode);
        }
    }

    /// ExecMode × radius/collect: neighbour lists and stats pinned to the scalar reference.
    #[test]
    fn radius_queries_are_policy_invariant(
        dataset in points(),
        queries in radius_queries(),
    ) {
        let build = |points: &Vec<Vec3>| {
            HierarchicalSearch::build(points.clone(), 0.05, PipelineConfig::extended_unified())
        };
        let mut reference = build(&dataset);
        let expected = reference.radius_queries(&queries, &ExecPolicy::scalar());

        for policy in swept_policies() {
            let mut search = build(&dataset);
            let got = search.radius_queries(&queries, &policy);
            prop_assert_eq!(&got, &expected, "{} results diverged", policy.mode);
            prop_assert_eq!(search.stats(), reference.stats(), "{} stats diverged", policy.mode);
        }
    }

    /// The work-stealing pool under load: streams long enough to cut into several chunks per
    /// worker run through `ExecMode::Parallel` at every SIMD lane width, and hits and stats stay
    /// bit-identical to the scalar reference while the pool demonstrably engages (the chunk
    /// counter proves the run really sharded; the small-stream properties above all fall back
    /// inline).
    #[test]
    fn the_work_stealing_pool_is_bit_identical_at_every_lane_width(
        triangles in scene(),
        base_rays in prop::collection::vec(ray(), 4..8),
        threads in 2usize..5,
    ) {
        use rayflex_rtunit::MIN_RAYS_PER_SHARD;
        // Tile a handful of generated rays into streams long enough that `threads` workers get
        // several chunks each (adaptive chunking floors at MIN_RAYS_PER_SHARD rays per chunk).
        let closest_rays: Vec<Ray> = base_rays
            .iter()
            .cycle()
            .take(MIN_RAYS_PER_SHARD * threads * 2)
            .copied()
            .collect();
        let shadow_rays: Vec<Ray> = base_rays
            .iter()
            .rev()
            .cycle()
            .take(MIN_RAYS_PER_SHARD * threads)
            .copied()
            .collect();
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh.clone(), triangles.clone());
        let request = TraceRequest::pair(&scene, &closest_rays, &shadow_rays);

        let mut reference = TraversalEngine::baseline();
        let expected = reference.trace(&request, &ExecPolicy::scalar());

        for lanes in [1usize, 4, 8] {
            let policy = ExecPolicy::parallel(threads).with_simd_lanes(lanes);
            let mut engine = TraversalEngine::baseline();
            let got = engine.trace(&request, &policy);
            prop_assert_eq!(&got, &expected, "lanes={} hits diverged", lanes);
            prop_assert_eq!(engine.stats(), reference.stats(), "lanes={} stats diverged", lanes);
            let pool = engine.pool_stats();
            prop_assert!(
                pool.chunks >= threads as u64,
                "lanes={}: expected the pool to engage ({} chunks < {} workers)",
                lanes, pool.chunks, threads
            );
            prop_assert_eq!(pool.workers, threads as u64, "lanes={} worker count", lanes);
        }
    }

    /// The fairness knob itself: a strict round-robin budget reshapes the fused pass structure
    /// (strictly more passes whenever a pass carried more than one beat per stream) without
    /// changing any stream's outputs or statistics.
    #[test]
    fn a_beat_budget_of_one_reshapes_passes_without_changing_outputs(
        triangles in scene(),
        closest_rays in prop::collection::vec(ray(), 2..10),
        shadow_rays in prop::collection::vec(ray(), 2..10),
    ) {
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh.clone(), triangles.clone());
        let request = TraceRequest::pair(&scene, &closest_rays, &shadow_rays);

        let mut unlimited = TraversalEngine::baseline();
        let free = unlimited.trace(&request, &ExecPolicy::fused());
        let free_passes = unlimited.last_fused_passes();

        let mut strict = TraversalEngine::baseline();
        let budgeted = strict.trace(&request, &ExecPolicy::fused().with_beat_budget(1));
        let strict_passes = strict.last_fused_passes();

        prop_assert_eq!(&budgeted, &free, "a beat budget must not change any hit");
        prop_assert_eq!(strict.stats(), unlimited.stats());
        // Each unlimited pass carries one beat per active ray of each stream; with at least two
        // rays per stream the strict budget must split passes.
        prop_assert!(
            strict_passes > free_passes,
            "budget 1 must increase the pass count ({} vs {})", strict_passes, free_passes
        );
        // Total datapath work is identical either way.
        prop_assert_eq!(strict.beat_mix().total(), unlimited.beat_mix().total());
    }

    /// The admission-order knob: earliest-deadline-first admission under arbitrary per-stream
    /// deadlines (including the `0` = "no deadline" sentinel and ties) must be output- and
    /// stat-invariant against FIFO admission in every fused configuration — EDF reorders segment
    /// issue *within* shared passes, it never changes what work runs.  This is the invariant
    /// that lets an online server re-order its admission queue by deadline without perturbing
    /// bit-identity with offline runs.
    #[test]
    fn edf_admission_is_output_invariant_under_arbitrary_deadlines(
        triangles in scene(),
        closest_rays in prop::collection::vec(ray(), 1..10),
        shadow_rays in prop::collection::vec(ray(), 1..10),
        closest_deadline in any::<u64>(),
        any_deadline in any::<u64>(),
        beat_budget in 0usize..5,
    ) {
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh.clone(), triangles.clone());
        let plain = TraceRequest::pair(&scene, &closest_rays, &shadow_rays);
        let dated = plain.with_stream_deadlines(closest_deadline, any_deadline);

        let mut reference = TraversalEngine::baseline();
        let expected = reference.trace(&plain, &ExecPolicy::fused().with_beat_budget(beat_budget));

        for order in AdmissionOrder::ALL {
            let policy = ExecPolicy::fused()
                .with_beat_budget(beat_budget)
                .with_admission_order(order);
            let mut engine = TraversalEngine::baseline();
            let got = engine.trace(&dated, &policy);
            prop_assert_eq!(&got, &expected, "{} hits diverged", order);
            prop_assert_eq!(engine.stats(), reference.stats(), "{} stats diverged", order);
            prop_assert_eq!(
                engine.last_fused_passes(),
                reference.last_fused_passes(),
                "{} pass structure diverged", order
            );

            // The scalar reference honours the same admission order bit-identically.
            let mut scalar = TraversalEngine::baseline();
            let scalar_policy = ExecPolicy::scalar().with_admission_order(order);
            prop_assert_eq!(&scalar.trace(&dated, &scalar_policy), &expected);
        }
    }
}

/// Empty and zero-length inputs are valid requests in every `ExecMode`: a 0-ray `TraceRequest`,
/// a 0×0 `FrameDesc`, k = 0 kNN and a radius-0 query all complete — empty outputs where outputs
/// would be, zero-distance matches only for the zero radius — and agree with the scalar
/// reference exactly.
#[test]
fn empty_and_zero_sized_inputs_are_valid_in_every_mode() {
    let triangles = vec![
        Triangle::new(
            Vec3::new(-2.0, -2.0, 5.0),
            Vec3::new(2.0, -2.0, 5.0),
            Vec3::new(0.0, 2.0, 5.0),
        ),
        Triangle::new(
            Vec3::new(-2.0, 2.0, 7.0),
            Vec3::new(2.0, 2.0, 7.0),
            Vec3::new(0.0, -2.0, 7.0),
        ),
    ];
    let bvh = Bvh4::build(&triangles);
    let scene = Scene::from_parts(bvh.clone(), triangles.clone());
    let no_rays: Vec<Ray> = Vec::new();
    let camera = Camera::looking_at(Vec3::new(0.0, 0.0, -10.0), Vec3::ZERO);
    let candidates = vec![vec![1.0f32; 5], vec![4.0f32; 5]];
    let points = vec![Vec3::ZERO, Vec3::splat(3.0)];

    for mode in ExecMode::ALL {
        let policy = ExecPolicy::with_mode(mode);

        // 0-ray trace: both streams empty in, both streams empty out, no beats spent.
        let mut engine = TraversalEngine::baseline();
        let out = engine.trace(&TraceRequest::pair(&scene, &no_rays, &no_rays), &policy);
        assert!(out.closest.is_empty() && out.any.is_empty(), "{mode}");
        assert_eq!(
            engine.stats().total_ops(),
            0,
            "{mode}: no beats for no rays"
        );

        // 0×0 frame: a legal degenerate viewport.
        let mut renderer = Renderer::new();
        let image = renderer.render(&scene, &FrameDesc::primary(camera, 0, 0), &policy);
        assert_eq!((image.width(), image.height()), (0, 0), "{mode}");

        // k = 0: a valid query with an empty answer, regardless of the candidate set.
        let neighbours = KnnEngine::new().k_nearest(
            &candidates[0],
            &candidates,
            0,
            KnnMetric::Euclidean,
            &policy,
        );
        assert!(neighbours.is_empty(), "{mode}: k = 0 returns nothing");

        // radius = 0: only exact (zero-distance) matches can qualify.
        let mut search =
            HierarchicalSearch::build(points.clone(), 0.05, PipelineConfig::extended_unified());
        let exact = search.radius_query(Vec3::ZERO, 0.0, &policy);
        assert!(
            exact.iter().all(|n| n.distance == 0.0),
            "{mode}: radius 0 admits only exact matches"
        );
        let miss = search.radius_query(Vec3::splat(1.0), 0.0, &policy);
        assert!(miss.is_empty(), "{mode}: radius 0 off-point finds nothing");
    }
}
