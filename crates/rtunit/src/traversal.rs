//! Stack-based BVH traversal issuing beats to the datapath.
//!
//! Two execution frontends share the same per-ray traversal semantics:
//!
//! * the **scalar** path ([`TraversalEngine::closest_hit`] / [`TraversalEngine::any_hit`]) walks
//!   one ray to completion, issuing one datapath beat at a time — simple, and the reference the
//!   others are tested against;
//! * the **wavefront** path ([`TraversalEngine::closest_hits_wavefront`],
//!   [`TraversalEngine::any_hits_wavefront`] and their [`RayPacket`] variants) keeps a whole ray
//!   stream in flight through the generic [`WavefrontScheduler`](crate::WavefrontScheduler):
//!   every pass builds one beat per active ray into a reusable request buffer, dispatches them
//!   through [`RayFlexDatapath::execute_batch_into`](rayflex_core::RayFlexDatapath::execute_batch_into)
//!   in bulk, then applies the responses to the per-ray states.  Per-ray state (traversal stack,
//!   pending-leaf queue) comes from the scheduler's pool, so a steady-state stream performs no
//!   allocation per ray.
//!
//! Because a ray's own beat sequence is identical under both frontends (pending leaf primitives
//! first, then the next stack node, children pushed nearest-first — with best-hit pruning for
//! closest-hit, and first-accepted-hit termination for any-hit), the two paths return
//! bit-identical hits *and* identical [`TraversalStats`] — the wavefront merely interleaves beats
//! of different rays.
//!
//! The traversal queries are two instantiations ([`QueryKind::ClosestHit`] and
//! [`QueryKind::AnyHit`]) of the [`BatchQuery`] state machine; the renderer and the k-NN /
//! hierarchical engines run their own kinds through the same scheduler.

use rayflex_core::{BeatMix, PipelineConfig, RayFlexDatapath, RayFlexRequest, RayFlexResponse};
use rayflex_geometry::{Aabb, Ray, RayPacket, Triangle};

use crate::query::{BatchQuery, FusedScheduler, QueryKind, StreamRunner, WavefrontScheduler};
use crate::{Bvh4, Bvh4Node};

/// The closest hit found by a traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraversalHit {
    /// Index of the hit primitive in the caller's primitive array.
    pub primitive: usize,
    /// Parametric hit distance along the ray.
    pub t: f32,
}

/// Operation counts gathered while traversing (the workload statistics fed to the RT-unit timing
/// model and the benchmark harnesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Ray–box beats issued (each tests up to four children).
    pub box_ops: u64,
    /// Ray–triangle beats issued.
    pub triangle_ops: u64,
    /// Internal nodes visited.
    pub nodes_visited: u64,
    /// Leaf nodes visited.
    pub leaves_visited: u64,
    /// Rays traversed.
    pub rays: u64,
}

impl TraversalStats {
    /// Total datapath beats issued.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.box_ops + self.triangle_ops
    }

    /// Accumulates another counter set into this one (used when merging per-shard statistics of a
    /// parallel run; every field is a sum).
    pub fn merge(&mut self, other: &TraversalStats) {
        self.box_ops += other.box_ops;
        self.triangle_ops += other.triangle_ops;
        self.nodes_visited += other.nodes_visited;
        self.leaves_visited += other.leaves_visited;
        self.rays += other.rays;
    }
}

/// Per-ray wavefront traversal state, shared by the closest-hit and any-hit queries.  The vectors
/// are pooled by the scheduler and reused across rays and calls.
#[derive(Debug, Default)]
pub struct RayWork {
    stack: Vec<usize>,
    /// Leaf primitives awaiting their ray–triangle beat, tested back-to-front (`pop`), so they
    /// are pushed in reverse leaf order to preserve the scalar path's test order.
    pending: Vec<usize>,
    best: Option<TraversalHit>,
}

impl RayWork {
    fn reset(&mut self, root: usize) {
        self.stack.clear();
        self.stack.push(root);
        self.pending.clear();
        self.best = None;
    }
}

/// Both traversal kinds as one [`BatchQuery`]: the scene, the ray stream, the query kind
/// (closest-hit or any-hit) and the statistics the stream accumulates.  The query owns its
/// statistics so several traversal streams can run *fused* in the same passes (each merges into
/// the engine's counters when it finishes).
#[derive(Debug)]
struct TraversalQuery<'a> {
    kind: QueryKind,
    bvh: &'a Bvh4,
    triangles: &'a [Triangle],
    rays: &'a [Ray],
    stats: TraversalStats,
}

impl<'a> TraversalQuery<'a> {
    fn new(kind: QueryKind, bvh: &'a Bvh4, triangles: &'a [Triangle], rays: &'a [Ray]) -> Self {
        debug_assert!(matches!(kind, QueryKind::ClosestHit | QueryKind::AnyHit));
        TraversalQuery {
            kind,
            bvh,
            triangles,
            rays,
            stats: TraversalStats {
                rays: rays.len() as u64,
                ..TraversalStats::default()
            },
        }
    }

    /// Builds the next beat for one ray, advancing its state; `false` retires the ray.
    ///
    /// The per-ray beat order is exactly the scalar path's: all pending leaf primitives (in leaf
    /// order), then the next stack node.  Box beats carry the node index as their tag so the
    /// response can be matched back to the node's child table; triangle beats carry the ray
    /// index.
    fn build_next_beat(
        &mut self,
        item: usize,
        state: &mut RayWork,
        out: &mut Vec<RayFlexRequest>,
    ) -> bool {
        loop {
            if let Some(&prim) = state.pending.last() {
                self.stats.triangle_ops += 1;
                out.push(RayFlexRequest::ray_triangle(
                    item as u64,
                    &self.rays[item],
                    &self.triangles[prim],
                ));
                return true;
            }
            let Some(node_index) = state.stack.pop() else {
                return false;
            };
            match self.bvh.node(node_index) {
                Bvh4Node::Leaf { .. } => {
                    self.stats.leaves_visited += 1;
                    // Reversed so `pop` tests primitives in leaf order, like the scalar path.
                    state
                        .pending
                        .extend(self.bvh.leaf_primitives(node_index).iter().rev());
                }
                Bvh4Node::Internal { child_bounds, .. } => {
                    self.stats.nodes_visited += 1;
                    self.stats.box_ops += 1;
                    let boxes = pad_child_bounds(child_bounds);
                    out.push(RayFlexRequest::ray_box(
                        node_index as u64,
                        &self.rays[item],
                        &boxes,
                    ));
                    return true;
                }
            }
        }
    }

    /// The children table of the internal node a box response belongs to.
    fn box_children(&self, response: &RayFlexResponse) -> &[Option<usize>; 4] {
        match self.bvh.node(response.tag as usize) {
            Bvh4Node::Internal { children, .. } => children,
            Bvh4Node::Leaf { .. } => unreachable!("box beats only test internal nodes"),
        }
    }
}

impl BatchQuery for TraversalQuery<'_> {
    type State = RayWork;
    type Output = Option<TraversalHit>;

    fn kind(&self) -> QueryKind {
        self.kind
    }

    fn items(&self) -> usize {
        self.rays.len()
    }

    fn reset(&mut self, _item: usize, state: &mut RayWork) {
        state.reset(self.bvh.root());
    }

    fn build(&mut self, item: usize, state: &mut RayWork, out: &mut Vec<RayFlexRequest>) -> bool {
        // Any-hit: a recorded hit terminates the ray before any further beat is issued, so the
        // per-ray beat count matches the scalar path, which stops right after the hitting beat.
        if self.kind == QueryKind::AnyHit && state.best.is_some() {
            return false;
        }
        self.build_next_beat(item, state, out)
    }

    fn apply(&mut self, item: usize, state: &mut RayWork, response: &RayFlexResponse) {
        if let Some(result) = response.triangle_result {
            let prim = state
                .pending
                .pop()
                .expect("triangle beat had a pending prim");
            match self.kind {
                // Closest-hit: keep the nearest accepted hit, keep traversing.
                QueryKind::ClosestHit => {
                    record_triangle_hit(&mut state.best, &result, prim, &self.rays[item]);
                }
                // Any-hit: the first accepted hit terminates the ray.
                _ => {
                    if result.hit {
                        let t = result.distance();
                        let ray = &self.rays[item];
                        if t >= ray.t_beg && t <= ray.t_end {
                            state.best = Some(TraversalHit { primitive: prim, t });
                            state.stack.clear();
                            state.pending.clear();
                        }
                    }
                }
            }
        } else if let Some(result) = response.box_result {
            let children = self.box_children(response);
            // Closest-hit prunes children farther than the best hit so far; any-hit never does.
            let prune = if self.kind == QueryKind::ClosestHit {
                state.best.as_ref()
            } else {
                None
            };
            push_hit_children(&mut state.stack, &result, children, prune);
        }
    }

    fn finish(&mut self, _item: usize, state: &mut RayWork) -> Option<TraversalHit> {
        state.best.take()
    }
}

/// A traversal ray stream packaged for **fused** scheduling: a closest-hit or any-hit query over
/// one scene and ray slice, runnable side by side with other
/// [`FusedStream`](crate::FusedStream)s (another traversal
/// stream, distance scoring, candidate collection) in the shared passes of a
/// [`FusedScheduler`].
///
/// Because the per-ray state machine is exactly the one the engine's wavefront frontends run,
/// the hits and [`TraversalStats`] a fused stream yields are bit-identical to
/// [`TraversalEngine::closest_hits_wavefront`] / [`TraversalEngine::any_hits_wavefront`] over
/// the same rays.
#[derive(Debug)]
pub struct TraversalStream<'a> {
    runner: StreamRunner<TraversalQuery<'a>>,
}

impl<'a> TraversalStream<'a> {
    /// A closest-hit stream over `rays` against the indexed scene.
    #[must_use]
    pub fn closest_hit(bvh: &'a Bvh4, triangles: &'a [Triangle], rays: &'a [Ray]) -> Self {
        TraversalStream {
            runner: StreamRunner::new(TraversalQuery::new(
                QueryKind::ClosestHit,
                bvh,
                triangles,
                rays,
            )),
        }
    }

    /// An any-hit (shadow/occlusion) stream over `rays` against the indexed scene.
    #[must_use]
    pub fn any_hit(bvh: &'a Bvh4, triangles: &'a [Triangle], rays: &'a [Ray]) -> Self {
        TraversalStream {
            runner: StreamRunner::new(TraversalQuery::new(QueryKind::AnyHit, bvh, triangles, rays)),
        }
    }

    /// One optional hit per ray (in ray order) plus the stream's traversal statistics, after a
    /// fused run completed.
    ///
    /// # Panics
    ///
    /// Panics if the stream was never run to completion.
    #[must_use]
    pub fn finish(self) -> (Vec<Option<TraversalHit>>, TraversalStats) {
        let (query, hits) = self.runner.finish();
        (hits, query.stats)
    }
}

crate::query::delegate_fused_stream_to_runner!(TraversalStream<'_>);

/// A BVH traversal engine driving a functional RayFlex datapath.
///
/// The engine reproduces the traversal loop the RT unit implements above the datapath (paper
/// Fig. 2 / Fig. 3): internal nodes are tested with one four-wide ray–box beat, children are
/// visited in the order of intersection returned by the datapath's sort network, and leaves issue
/// one ray–triangle beat per primitive.  Closest-hit traversal prunes hit children farther than
/// the best hit found so far; any-hit traversal terminates a ray on its first accepted
/// intersection (the shadow/occlusion query).
#[derive(Debug)]
pub struct TraversalEngine {
    datapath: RayFlexDatapath,
    stats: TraversalStats,
    next_tag: u64,
    /// Pooled traversal stacks for the scalar paths.
    stack_pool: Vec<Vec<usize>>,
    /// The generic wavefront scheduler; both traversal query kinds share its state pool.
    scheduler: WavefrontScheduler<RayWork>,
    /// The fused multi-stream scheduler for passes shared between query kinds.
    fused: FusedScheduler,
    /// Reusable ray buffer for the packet frontends.
    ray_scratch: Vec<Ray>,
}

impl TraversalEngine {
    /// Creates an engine over a baseline-unified datapath (the paper's reference design).
    #[must_use]
    pub fn baseline() -> Self {
        Self::with_config(PipelineConfig::baseline_unified())
    }

    /// Creates an engine over a datapath of the given configuration.
    #[must_use]
    pub fn with_config(config: PipelineConfig) -> Self {
        TraversalEngine {
            datapath: RayFlexDatapath::new(config),
            stats: TraversalStats::default(),
            next_tag: 0,
            stack_pool: Vec::new(),
            scheduler: WavefrontScheduler::new(),
            fused: FusedScheduler::new(),
            ray_scratch: Vec::new(),
        }
    }

    /// The datapath configuration this engine drives.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        self.datapath.config()
    }

    /// The accumulated traversal statistics.
    #[must_use]
    pub fn stats(&self) -> TraversalStats {
        self.stats
    }

    /// Per-opcode breakdown of every beat this engine's datapath has executed (closest-hit and
    /// any-hit passes share the datapath, so this attributes mixed workloads).
    #[must_use]
    pub fn beat_mix(&self) -> BeatMix {
        self.datapath.beat_mix()
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = TraversalStats::default();
    }

    /// Finds the closest front-face hit of `ray` against the triangles indexed by the BVH, or
    /// `None` if the ray escapes the scene.
    pub fn closest_hit(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        ray: &Ray,
    ) -> Option<TraversalHit> {
        self.stats.rays += 1;
        let mut best: Option<TraversalHit> = None;
        let mut stack = self.stack_pool.pop().unwrap_or_default();
        stack.clear();
        stack.push(bvh.root());

        while let Some(node_index) = stack.pop() {
            match bvh.node(node_index) {
                Bvh4Node::Leaf { .. } => {
                    self.stats.leaves_visited += 1;
                    for &prim in bvh.leaf_primitives(node_index) {
                        self.stats.triangle_ops += 1;
                        let request =
                            RayFlexRequest::ray_triangle(self.tag(), ray, &triangles[prim]);
                        let response = self.datapath.execute(&request);
                        let result = response.triangle_result.expect("triangle beat");
                        record_triangle_hit(&mut best, &result, prim, ray);
                    }
                }
                Bvh4Node::Internal {
                    children,
                    child_bounds,
                } => {
                    self.stats.nodes_visited += 1;
                    self.stats.box_ops += 1;
                    let boxes = pad_child_bounds(child_bounds);
                    let request = RayFlexRequest::ray_box(self.tag(), ray, &boxes);
                    let response = self.datapath.execute(&request);
                    let result = response.box_result.expect("box beat");
                    push_hit_children(&mut stack, &result, children, best.as_ref());
                }
            }
        }
        self.stack_pool.push(stack);
        best
    }

    /// Returns the first intersection of `ray` accepted within its extent, or `None` if the ray
    /// reaches its extent unobstructed — the shadow / occlusion query (scalar reference path).
    ///
    /// "First" means first in the deterministic traversal order (nearest-child-first), not
    /// necessarily the geometrically nearest hit; only the hit/no-hit verdict is meaningful to
    /// shadow tests.  Children are never pruned against a best hit, and the traversal stops at
    /// the first accepted triangle beat, so occluded rays cost far fewer beats than a closest-hit
    /// traversal of the same scene.
    pub fn any_hit(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        ray: &Ray,
    ) -> Option<TraversalHit> {
        self.stats.rays += 1;
        let mut found: Option<TraversalHit> = None;
        let mut stack = self.stack_pool.pop().unwrap_or_default();
        stack.clear();
        stack.push(bvh.root());

        'traversal: while let Some(node_index) = stack.pop() {
            match bvh.node(node_index) {
                Bvh4Node::Leaf { .. } => {
                    self.stats.leaves_visited += 1;
                    for &prim in bvh.leaf_primitives(node_index) {
                        self.stats.triangle_ops += 1;
                        let request =
                            RayFlexRequest::ray_triangle(self.tag(), ray, &triangles[prim]);
                        let response = self.datapath.execute(&request);
                        let result = response.triangle_result.expect("triangle beat");
                        if result.hit {
                            let t = result.distance();
                            if t >= ray.t_beg && t <= ray.t_end {
                                found = Some(TraversalHit { primitive: prim, t });
                                break 'traversal;
                            }
                        }
                    }
                }
                Bvh4Node::Internal {
                    children,
                    child_bounds,
                } => {
                    self.stats.nodes_visited += 1;
                    self.stats.box_ops += 1;
                    let boxes = pad_child_bounds(child_bounds);
                    let request = RayFlexRequest::ray_box(self.tag(), ray, &boxes);
                    let response = self.datapath.execute(&request);
                    let result = response.box_result.expect("box beat");
                    push_hit_children(&mut stack, &result, children, None);
                }
            }
        }
        self.stack_pool.push(stack);
        found
    }

    /// Traverses a batch of rays one at a time (the scalar reference path), returning one
    /// optional hit per ray.
    pub fn closest_hits(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &[Ray],
    ) -> Vec<Option<TraversalHit>> {
        rays.iter()
            .map(|ray| self.closest_hit(bvh, triangles, ray))
            .collect()
    }

    /// Runs the any-hit query over a batch of rays one at a time (the scalar reference path).
    pub fn any_hits(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &[Ray],
    ) -> Vec<Option<TraversalHit>> {
        rays.iter()
            .map(|ray| self.any_hit(bvh, triangles, ray))
            .collect()
    }

    /// Traverses a ray stream wavefront-style: every pass builds one beat per active ray and
    /// dispatches them through the datapath's bulk interface.  Hits and statistics are identical
    /// to the scalar path (see the module documentation); wall-clock throughput is substantially
    /// higher because beat dispatch, response collection and per-ray state all amortise across
    /// the stream.
    pub fn closest_hits_wavefront(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &[Ray],
    ) -> Vec<Option<TraversalHit>> {
        let mut query = TraversalQuery::new(QueryKind::ClosestHit, bvh, triangles, rays);
        let hits = self.scheduler.run(&mut self.datapath, &mut query);
        self.stats.merge(&query.stats);
        hits
    }

    /// Runs the any-hit query over a ray stream wavefront-style; verdicts and statistics are
    /// identical to [`TraversalEngine::any_hits`].
    pub fn any_hits_wavefront(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &[Ray],
    ) -> Vec<Option<TraversalHit>> {
        let mut query = TraversalQuery::new(QueryKind::AnyHit, bvh, triangles, rays);
        let hits = self.scheduler.run(&mut self.datapath, &mut query);
        self.stats.merge(&query.stats);
        hits
    }

    /// Traces a closest-hit stream and an any-hit stream **fused in the same bulk passes** over
    /// this engine's single datapath — the unified RT unit of §V-A time-multiplexing two query
    /// kinds instead of giving each an exclusive pass sequence.
    ///
    /// Per-stream hits and the merged [`TraversalStats`] are bit-identical to tracing the two
    /// streams sequentially ([`TraversalEngine::closest_hits_wavefront`] then
    /// [`TraversalEngine::any_hits_wavefront`]); the fusion is observable in the datapath's
    /// per-kind [`BeatMix`] counters and its `fused_passes` count.
    pub fn trace_fused(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        closest_rays: &[Ray],
        any_rays: &[Ray],
    ) -> (Vec<Option<TraversalHit>>, Vec<Option<TraversalHit>>) {
        let mut closest = TraversalStream::closest_hit(bvh, triangles, closest_rays);
        let mut any = TraversalStream::any_hit(bvh, triangles, any_rays);
        self.fused
            .run(&mut self.datapath, &mut [&mut closest, &mut any]);
        let (closest_hits, closest_stats) = closest.finish();
        let (any_hits, any_stats) = any.finish();
        self.stats.merge(&closest_stats);
        self.stats.merge(&any_stats);
        (closest_hits, any_hits)
    }

    /// [`TraversalEngine::closest_hits_wavefront`] over a structure-of-arrays
    /// [`RayPacket`] stream.
    pub fn closest_hits_stream(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &RayPacket,
    ) -> Vec<Option<TraversalHit>> {
        // Materialise into a pooled buffer: the wavefront hot loop reads each ray many times
        // (once per beat), so a one-off sequential unpack into reused storage beats per-beat
        // SoA gathers, and after the first call the packet frontend allocates nothing.
        let mut unpacked = core::mem::take(&mut self.ray_scratch);
        unpacked.clear();
        unpacked.extend(rays.iter());
        let hits = self.closest_hits_wavefront(bvh, triangles, &unpacked);
        self.ray_scratch = unpacked;
        hits
    }

    /// [`TraversalEngine::any_hits_wavefront`] over a structure-of-arrays [`RayPacket`] stream.
    pub fn any_hits_stream(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &RayPacket,
    ) -> Vec<Option<TraversalHit>> {
        let mut unpacked = core::mem::take(&mut self.ray_scratch);
        unpacked.clear();
        unpacked.extend(rays.iter());
        let hits = self.any_hits_wavefront(bvh, triangles, &unpacked);
        self.ray_scratch = unpacked;
        hits
    }

    fn tag(&mut self) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        tag
    }

    #[cfg(test)]
    fn work_pool_len(&self) -> usize {
        self.scheduler.pooled_states()
    }
}

/// Applies one triangle-beat result to a ray's best hit, honouring the ray extent and the
/// closest-so-far tie-breaking (strictly closer wins, so the first-tested primitive keeps ties).
pub(crate) fn record_triangle_hit(
    best: &mut Option<TraversalHit>,
    result: &rayflex_core::TriangleResult,
    prim: usize,
    ray: &Ray,
) {
    if result.hit {
        let t = result.distance();
        if t >= ray.t_beg && t <= ray.t_end && best.is_none_or(|b| t < b.t) {
            *best = Some(TraversalHit { primitive: prim, t });
        }
    }
}

/// Pushes the hit children of one box-beat result onto a traversal stack in reverse traversal
/// order (so the closest child pops first), pruning children farther than the best hit so far
/// (pass `None` for query kinds that never prune).
pub(crate) fn push_hit_children(
    stack: &mut Vec<usize>,
    result: &rayflex_core::BoxResult,
    children: &[Option<usize>; 4],
    best: Option<&TraversalHit>,
) {
    for &slot in result.traversal_order.iter().rev() {
        if !result.hit[slot] {
            continue;
        }
        if let Some(best_hit) = best {
            if result.t_entry[slot] > best_hit.t {
                continue;
            }
        }
        if let Some(child) = children[slot] {
            stack.push(child);
        }
    }
}

/// Pads the four child-bound slots of an internal node into the datapath's box operands; empty
/// slots become degenerate boxes that can never be hit.
pub(crate) fn pad_child_bounds(child_bounds: &[Aabb; 4]) -> [Aabb; 4] {
    core::array::from_fn(|i| {
        if child_bounds[i].is_empty() {
            Aabb::new(
                rayflex_geometry::Vec3::splat(f32::MAX),
                rayflex_geometry::Vec3::splat(f32::MAX),
            )
        } else {
            child_bounds[i]
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::{golden, Vec3};

    /// A little wall of front-facing triangles at varying depths.
    fn wall() -> Vec<Triangle> {
        (0..32)
            .map(|i| {
                let x = (i % 8) as f32 * 2.0 - 8.0;
                let y = (i / 8) as f32 * 2.0 - 4.0;
                let z = 10.0 + (i % 3) as f32;
                Triangle::new(
                    Vec3::new(x, y, z),
                    Vec3::new(x + 1.8, y, z),
                    Vec3::new(x + 0.9, y + 1.8, z),
                )
            })
            .collect()
    }

    fn wall_rays(n: usize) -> Vec<Ray> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f32 - 5.0;
                let y = (i / 10) as f32 - 3.0;
                Ray::new(Vec3::new(x, y, 0.0), Vec3::new(0.03, -0.01, 1.0))
            })
            .collect()
    }

    /// Brute-force reference: closest golden hit over all triangles.
    fn brute_force(triangles: &[Triangle], ray: &Ray) -> Option<TraversalHit> {
        let mut best: Option<TraversalHit> = None;
        for (i, tri) in triangles.iter().enumerate() {
            let hit = golden::watertight::ray_triangle(ray, tri);
            if hit.hit {
                let t = hit.distance();
                if t >= ray.t_beg && t <= ray.t_end && best.is_none_or(|b| t < b.t) {
                    best = Some(TraversalHit { primitive: i, t });
                }
            }
        }
        best
    }

    #[test]
    fn traversal_agrees_with_brute_force() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let mut engine = TraversalEngine::baseline();
        for (i, ray) in wall_rays(60).iter().enumerate() {
            let expected = brute_force(&triangles, ray);
            let got = engine.closest_hit(&bvh, &triangles, ray);
            match (expected, got) {
                (None, None) => {}
                (Some(e), Some(g)) => {
                    assert_eq!(e.primitive, g.primitive, "ray {i}");
                    assert_eq!(e.t.to_bits(), g.t.to_bits(), "ray {i}");
                }
                other => panic!("ray {i}: mismatch {other:?}"),
            }
        }
        let stats = engine.stats();
        assert!(stats.box_ops > 0);
        assert!(stats.triangle_ops > 0);
        assert_eq!(stats.rays, 60);
    }

    #[test]
    fn pruning_keeps_the_traversal_cheaper_than_brute_force() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let mut engine = TraversalEngine::baseline();
        let ray = Ray::new(Vec3::new(0.5, 0.5, 0.0), Vec3::new(0.0, 0.0, 1.0));
        let _ = engine.closest_hit(&bvh, &triangles, &ray);
        // A single ray should not have to test every triangle in the scene.
        assert!(engine.stats().triangle_ops < triangles.len() as u64);
    }

    #[test]
    fn missing_rays_return_none() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let mut engine = TraversalEngine::baseline();
        let ray = Ray::new(Vec3::new(100.0, 100.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(engine.closest_hit(&bvh, &triangles, &ray).is_none());
        assert!(engine.any_hit(&bvh, &triangles, &ray).is_none());
        engine.reset_stats();
        assert_eq!(engine.stats().rays, 0);
    }

    #[test]
    fn batch_traversal_matches_individual_calls() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let rays: Vec<Ray> = (0..10)
            .map(|i| {
                Ray::new(
                    Vec3::new(i as f32 - 5.0, 0.2, 0.0),
                    Vec3::new(0.0, 0.0, 1.0),
                )
            })
            .collect();
        let mut batch_engine = TraversalEngine::baseline();
        let batch = batch_engine.closest_hits(&bvh, &triangles, &rays);
        let mut single_engine = TraversalEngine::baseline();
        for (ray, expected) in rays.iter().zip(&batch) {
            assert_eq!(single_engine.closest_hit(&bvh, &triangles, ray), *expected);
        }
    }

    #[test]
    fn wavefront_traversal_matches_the_scalar_path_bit_for_bit() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let rays = wall_rays(60);
        let mut scalar = TraversalEngine::baseline();
        let expected = scalar.closest_hits(&bvh, &triangles, &rays);
        let mut wavefront = TraversalEngine::baseline();
        let got = wavefront.closest_hits_wavefront(&bvh, &triangles, &rays);
        assert_eq!(expected.len(), got.len());
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            match (e, g) {
                (None, None) => {}
                (Some(e), Some(g)) => {
                    assert_eq!(e.primitive, g.primitive, "ray {i}");
                    assert_eq!(e.t.to_bits(), g.t.to_bits(), "ray {i}");
                }
                other => panic!("ray {i}: {other:?}"),
            }
        }
        // Same per-ray beat sequences means identical statistics, not just identical hits.
        assert_eq!(scalar.stats(), wavefront.stats());
    }

    #[test]
    fn any_hit_wavefront_matches_the_scalar_path_and_its_stats() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        // Shadow-style rays: finite extents, some reaching the wall, some stopping short.
        let rays: Vec<Ray> = wall_rays(40)
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let t_end = if i % 3 == 0 { 5.0 } else { 40.0 };
                Ray::with_extent(r.origin, r.dir, 1e-3, t_end)
            })
            .collect();
        let mut scalar = TraversalEngine::baseline();
        let expected = scalar.any_hits(&bvh, &triangles, &rays);
        let mut wavefront = TraversalEngine::baseline();
        let got = wavefront.any_hits_wavefront(&bvh, &triangles, &rays);
        assert_eq!(expected, got);
        assert_eq!(scalar.stats(), wavefront.stats());
        // The short rays must not report occlusion.
        for (i, hit) in got.iter().enumerate() {
            if i % 3 == 0 {
                assert!(hit.is_none(), "short ray {i} cannot reach the wall");
            }
        }
        assert!(got.iter().any(Option::is_some), "some rays are occluded");
    }

    #[test]
    fn any_hit_terminates_early_compared_to_closest_hit() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let rays = wall_rays(40);
        let mut closest = TraversalEngine::baseline();
        let closest_hits = closest.closest_hits_wavefront(&bvh, &triangles, &rays);
        let mut any = TraversalEngine::baseline();
        let any_hits = any.any_hits_wavefront(&bvh, &triangles, &rays);
        // The verdicts agree even though the reported hit may differ.
        for (i, (c, a)) in closest_hits.iter().zip(&any_hits).enumerate() {
            assert_eq!(c.is_some(), a.is_some(), "ray {i}");
        }
        assert!(
            any.stats().total_ops() <= closest.stats().total_ops(),
            "first-hit termination can only reduce the beat count"
        );
    }

    #[test]
    fn packet_streams_match_slice_streams() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let rays = wall_rays(30);
        let packet = RayPacket::from_rays(&rays);
        let mut a = TraversalEngine::baseline();
        let mut b = TraversalEngine::baseline();
        assert_eq!(
            a.closest_hits_stream(&bvh, &triangles, &packet),
            b.closest_hits_wavefront(&bvh, &triangles, &rays),
        );
        assert_eq!(
            a.any_hits_stream(&bvh, &triangles, &packet),
            b.any_hits_wavefront(&bvh, &triangles, &rays),
        );
    }

    #[test]
    fn wavefront_state_pools_are_reused_across_calls() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let rays = wall_rays(20);
        let mut engine = TraversalEngine::baseline();
        let first = engine.closest_hits_wavefront(&bvh, &triangles, &rays);
        assert_eq!(engine.work_pool_len(), rays.len());
        let second = engine.closest_hits_wavefront(&bvh, &triangles, &rays);
        assert_eq!(first, second);
        assert_eq!(
            engine.work_pool_len(),
            rays.len(),
            "states returned to the pool"
        );
        // The any-hit query shares the same pool.
        let _ = engine.any_hits_wavefront(&bvh, &triangles, &rays);
        assert_eq!(engine.work_pool_len(), rays.len());
    }

    #[test]
    fn fused_closest_and_any_hit_streams_match_sequential_scheduling() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let closest_rays = wall_rays(40);
        let any_rays: Vec<Ray> = wall_rays(25)
            .into_iter()
            .map(|r| Ray::with_extent(r.origin, r.dir, 1e-3, 40.0))
            .collect();

        let mut sequential = TraversalEngine::baseline();
        let expected_closest = sequential.closest_hits_wavefront(&bvh, &triangles, &closest_rays);
        let expected_any = sequential.any_hits_wavefront(&bvh, &triangles, &any_rays);

        let mut fused = TraversalEngine::baseline();
        let (closest, any) = fused.trace_fused(&bvh, &triangles, &closest_rays, &any_rays);
        assert_eq!(closest, expected_closest);
        assert_eq!(any, expected_any);
        assert_eq!(fused.stats(), sequential.stats(), "identical merged stats");

        // The fusion is observable: both kinds appear in the per-kind mix, and at least one
        // bulk pass carried beats of both.
        let mix = fused.beat_mix();
        assert!(mix.kind_total(rayflex_core::QueryKind::ClosestHit) > 0);
        assert!(mix.kind_total(rayflex_core::QueryKind::AnyHit) > 0);
        assert!(mix.fused_passes() > 0, "streams shared at least one pass");
        assert_eq!(mix.total(), sequential.beat_mix().total());
    }

    #[test]
    fn beat_mix_reflects_the_traversal_workload() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let rays = wall_rays(10);
        let mut engine = TraversalEngine::baseline();
        let _ = engine.closest_hits_wavefront(&bvh, &triangles, &rays);
        let mix = engine.beat_mix();
        assert_eq!(
            mix.count(rayflex_core::Opcode::RayBox),
            engine.stats().box_ops
        );
        assert_eq!(
            mix.count(rayflex_core::Opcode::RayTriangle),
            engine.stats().triangle_ops
        );
        assert_eq!(mix.total(), engine.stats().total_ops());
    }
}
