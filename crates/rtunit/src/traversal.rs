//! Stack-based closest-hit BVH traversal issuing beats to the datapath.

use rayflex_core::{PipelineConfig, RayFlexDatapath, RayFlexRequest};
use rayflex_geometry::{Aabb, Ray, Triangle};

use crate::{Bvh4, Bvh4Node};

/// The closest hit found by a traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraversalHit {
    /// Index of the hit primitive in the caller's primitive array.
    pub primitive: usize,
    /// Parametric hit distance along the ray.
    pub t: f32,
}

/// Operation counts gathered while traversing (the workload statistics fed to the RT-unit timing
/// model and the benchmark harnesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Ray–box beats issued (each tests up to four children).
    pub box_ops: u64,
    /// Ray–triangle beats issued.
    pub triangle_ops: u64,
    /// Internal nodes visited.
    pub nodes_visited: u64,
    /// Leaf nodes visited.
    pub leaves_visited: u64,
    /// Rays traversed.
    pub rays: u64,
}

impl TraversalStats {
    /// Total datapath beats issued.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.box_ops + self.triangle_ops
    }
}

/// A closest-hit traversal engine driving a functional RayFlex datapath.
///
/// The engine reproduces the traversal loop the RT unit implements above the datapath (paper
/// Fig. 2 / Fig. 3): internal nodes are tested with one four-wide ray–box beat, children are
/// visited in the order of intersection returned by the datapath's sort network, hit children
/// farther than the best hit found so far are pruned, and leaves issue one ray–triangle beat per
/// primitive.
#[derive(Debug)]
pub struct TraversalEngine {
    datapath: RayFlexDatapath,
    stats: TraversalStats,
    next_tag: u64,
}

impl TraversalEngine {
    /// Creates an engine over a baseline-unified datapath (the paper's reference design).
    #[must_use]
    pub fn baseline() -> Self {
        Self::with_config(PipelineConfig::baseline_unified())
    }

    /// Creates an engine over a datapath of the given configuration.
    #[must_use]
    pub fn with_config(config: PipelineConfig) -> Self {
        TraversalEngine {
            datapath: RayFlexDatapath::new(config),
            stats: TraversalStats::default(),
            next_tag: 0,
        }
    }

    /// The accumulated traversal statistics.
    #[must_use]
    pub fn stats(&self) -> TraversalStats {
        self.stats
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = TraversalStats::default();
    }

    /// Finds the closest front-face hit of `ray` against the triangles indexed by the BVH, or
    /// `None` if the ray escapes the scene.
    pub fn closest_hit(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        ray: &Ray,
    ) -> Option<TraversalHit> {
        self.stats.rays += 1;
        let mut best: Option<TraversalHit> = None;
        let mut stack: Vec<usize> = vec![bvh.root()];

        while let Some(node_index) = stack.pop() {
            match bvh.node(node_index) {
                Bvh4Node::Leaf { .. } => {
                    self.stats.leaves_visited += 1;
                    for &prim in bvh.leaf_primitives(node_index) {
                        self.stats.triangle_ops += 1;
                        let request =
                            RayFlexRequest::ray_triangle(self.tag(), ray, &triangles[prim]);
                        let response = self.datapath.execute(&request);
                        let result = response.triangle_result.expect("triangle beat");
                        if result.hit {
                            let t = result.distance();
                            if t >= ray.t_beg
                                && t <= ray.t_end
                                && best.map_or(true, |b| t < b.t)
                            {
                                best = Some(TraversalHit { primitive: prim, t });
                            }
                        }
                    }
                }
                Bvh4Node::Internal { children, child_bounds } => {
                    self.stats.nodes_visited += 1;
                    self.stats.box_ops += 1;
                    let boxes = pad_child_bounds(child_bounds);
                    let request = RayFlexRequest::ray_box(self.tag(), ray, &boxes);
                    let response = self.datapath.execute(&request);
                    let result = response.box_result.expect("box beat");
                    // Visit children nearest-first: push onto the stack in reverse traversal
                    // order so the closest child is popped first.
                    for &slot in result.traversal_order.iter().rev() {
                        if !result.hit[slot] {
                            continue;
                        }
                        if let Some(best_hit) = best {
                            if result.t_entry[slot] > best_hit.t {
                                continue;
                            }
                        }
                        if let Some(child) = children[slot] {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        best
    }

    /// Traverses a batch of rays, returning one optional hit per ray.
    pub fn closest_hits(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &[Ray],
    ) -> Vec<Option<TraversalHit>> {
        rays.iter()
            .map(|ray| self.closest_hit(bvh, triangles, ray))
            .collect()
    }

    fn tag(&mut self) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        tag
    }
}

/// Pads the four child-bound slots of an internal node into the datapath's box operands; empty
/// slots become degenerate boxes that can never be hit.
pub(crate) fn pad_child_bounds(child_bounds: &[Aabb; 4]) -> [Aabb; 4] {
    core::array::from_fn(|i| {
        if child_bounds[i].is_empty() {
            Aabb::new(
                rayflex_geometry::Vec3::splat(f32::MAX),
                rayflex_geometry::Vec3::splat(f32::MAX),
            )
        } else {
            child_bounds[i]
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::{golden, Vec3};

    /// A little wall of front-facing triangles at varying depths.
    fn wall() -> Vec<Triangle> {
        (0..32)
            .map(|i| {
                let x = (i % 8) as f32 * 2.0 - 8.0;
                let y = (i / 8) as f32 * 2.0 - 4.0;
                let z = 10.0 + (i % 3) as f32;
                Triangle::new(
                    Vec3::new(x, y, z),
                    Vec3::new(x + 1.8, y, z),
                    Vec3::new(x + 0.9, y + 1.8, z),
                )
            })
            .collect()
    }

    /// Brute-force reference: closest golden hit over all triangles.
    fn brute_force(triangles: &[Triangle], ray: &Ray) -> Option<TraversalHit> {
        let mut best: Option<TraversalHit> = None;
        for (i, tri) in triangles.iter().enumerate() {
            let hit = golden::watertight::ray_triangle(ray, tri);
            if hit.hit {
                let t = hit.distance();
                if t >= ray.t_beg && t <= ray.t_end && best.map_or(true, |b| t < b.t) {
                    best = Some(TraversalHit { primitive: i, t });
                }
            }
        }
        best
    }

    #[test]
    fn traversal_agrees_with_brute_force() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let mut engine = TraversalEngine::baseline();
        for i in 0..60 {
            let x = (i % 10) as f32 - 5.0;
            let y = (i / 10) as f32 - 3.0;
            let ray = Ray::new(Vec3::new(x, y, 0.0), Vec3::new(0.03, -0.01, 1.0));
            let expected = brute_force(&triangles, &ray);
            let got = engine.closest_hit(&bvh, &triangles, &ray);
            match (expected, got) {
                (None, None) => {}
                (Some(e), Some(g)) => {
                    assert_eq!(e.primitive, g.primitive, "ray {i}");
                    assert_eq!(e.t.to_bits(), g.t.to_bits(), "ray {i}");
                }
                other => panic!("ray {i}: mismatch {other:?}"),
            }
        }
        let stats = engine.stats();
        assert!(stats.box_ops > 0);
        assert!(stats.triangle_ops > 0);
        assert_eq!(stats.rays, 60);
    }

    #[test]
    fn pruning_keeps_the_traversal_cheaper_than_brute_force() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let mut engine = TraversalEngine::baseline();
        let ray = Ray::new(Vec3::new(0.5, 0.5, 0.0), Vec3::new(0.0, 0.0, 1.0));
        let _ = engine.closest_hit(&bvh, &triangles, &ray);
        // A single ray should not have to test every triangle in the scene.
        assert!(engine.stats().triangle_ops < triangles.len() as u64);
    }

    #[test]
    fn missing_rays_return_none() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let mut engine = TraversalEngine::baseline();
        let ray = Ray::new(Vec3::new(100.0, 100.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(engine.closest_hit(&bvh, &triangles, &ray).is_none());
        engine.reset_stats();
        assert_eq!(engine.stats().rays, 0);
    }

    #[test]
    fn batch_traversal_matches_individual_calls() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let rays: Vec<Ray> = (0..10)
            .map(|i| Ray::new(Vec3::new(i as f32 - 5.0, 0.2, 0.0), Vec3::new(0.0, 0.0, 1.0)))
            .collect();
        let mut batch_engine = TraversalEngine::baseline();
        let batch = batch_engine.closest_hits(&bvh, &triangles, &rays);
        let mut single_engine = TraversalEngine::baseline();
        for (ray, expected) in rays.iter().zip(&batch) {
            assert_eq!(single_engine.closest_hit(&bvh, &triangles, ray), *expected);
        }
    }
}
