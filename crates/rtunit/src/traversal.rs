//! Stack-based BVH traversal issuing beats to the datapath.
//!
//! The public face is **one policy-driven entry point**: [`TraversalEngine::trace`] takes a
//! [`TraceRequest`] — the indexed scene plus a closest-hit ray slice and/or an any-hit ray slice
//! — and an [`ExecPolicy`](crate::ExecPolicy) selecting the execution mode:
//!
//! * [`ExecMode::ScalarReference`](crate::ExecMode::ScalarReference) walks one ray to
//!   completion, issuing one register-accurate emulated beat at a time — the reference every
//!   other mode is tested against;
//! * [`ExecMode::Wavefront`](crate::ExecMode::Wavefront) keeps each whole ray stream in flight
//!   through the generic [`WavefrontScheduler`](crate::WavefrontScheduler): every pass builds
//!   one beat per active ray into a reusable request buffer, dispatches them through
//!   [`RayFlexDatapath::execute_batch_into`](rayflex_core::RayFlexDatapath::execute_batch_into)
//!   in bulk, then applies the responses to the per-ray states.  Per-ray state (traversal stack,
//!   pending-leaf queue) comes from the scheduler's pool, so a steady-state stream performs no
//!   allocation per ray;
//! * [`ExecMode::Fused`](crate::ExecMode::Fused) traces the request's closest-hit and any-hit
//!   streams in **shared mixed-kind bulk passes** over the engine's single datapath (the
//!   unified RT unit of §V-A), honouring the policy's per-stream beat budget;
//! * [`ExecMode::Parallel`](crate::ExecMode::Parallel) shards the streams contiguously across
//!   worker threads, each worker a private datapath running the fused discipline over its slice.
//!
//! Because a ray's own beat sequence is identical under every mode (pending leaf primitives
//! first, then the next stack node, children pushed nearest-first — with best-hit pruning for
//! closest-hit, and first-accepted-hit termination for any-hit), all modes return bit-identical
//! hits *and* identical [`TraversalStats`] — the batched modes merely interleave beats of
//! different rays (and, fused, of different query kinds).
//!
//! The traversal queries are two instantiations ([`QueryKind::ClosestHit`] and
//! [`QueryKind::AnyHit`]) of the [`BatchQuery`] state machine; the renderer and the k-NN /
//! hierarchical engines run their own kinds through the same scheduler under the same policies.
//! The pre-policy named method variants (`closest_hits_wavefront`, `trace_fused`, …) survive as
//! deprecated shims delegating to [`TraversalEngine::trace`].

use rayflex_core::{
    BeatMix, PipelineConfig, RayFlexDatapath, RayFlexRequest, RayFlexResponse, RayOperand,
};
use rayflex_geometry::{Ray, RayPacket, Triangle};

use crate::error::{validate_rays, PartialResult, QueryError, QueryOutcome, SceneValidator};
use crate::policy::{CoherenceMode, ExecMode, ExecPolicy};
use crate::query::{BatchQuery, FusedScheduler, QueryKind, StreamRunner, WavefrontScheduler};
use crate::scene::{handle, handle_index, NodeStep, Scene, SceneView};
use crate::Bvh4;

/// The closest hit found by a traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraversalHit {
    /// Index of the hit primitive in the caller's primitive array.
    pub primitive: usize,
    /// Parametric hit distance along the ray.
    pub t: f32,
}

/// Operation counts gathered while traversing (the workload statistics fed to the RT-unit timing
/// model and the benchmark harnesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Ray–box beats issued (each tests up to four children).
    pub box_ops: u64,
    /// Ray–triangle beats issued.
    pub triangle_ops: u64,
    /// Internal nodes visited.
    pub nodes_visited: u64,
    /// Geometry leaf nodes visited (flat BVH or BLAS leaves — TLAS leaves are counted in
    /// [`TraversalStats::instances_visited`] instead).
    pub leaves_visited: u64,
    /// Rays traversed.
    pub rays: u64,
    /// The TLAS-phase share of [`TraversalStats::box_ops`]: ray–box beats testing top-level
    /// (instance-bounds) nodes of a two-level scene.  Always zero for flat scenes — this is the
    /// structural cost instancing adds, reported separately so the flat-vs-instanced beat
    /// comparison is one subtraction.
    pub tlas_box_ops: u64,
    /// Instance descents: TLAS leaf entries expanded into BLAS-root stack pushes.  Always zero
    /// for flat scenes.
    pub instances_visited: u64,
    /// Parallel shards whose worker panicked and were recovered by the one-shot scalar retry
    /// (see `crate::parallel`).  Always zero in a healthy run, so the cross-policy
    /// stats-equality invariant is unaffected; a non-zero count is the audit trail of a
    /// tolerated fault.
    pub shard_fallbacks: u64,
}

impl TraversalStats {
    /// Total datapath beats issued.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.box_ops + self.triangle_ops
    }

    /// Accumulates another counter set into this one — the reduction used when the per-shard
    /// statistics of a parallel run (or the per-stream statistics of a fused run) fold into an
    /// engine's totals.
    ///
    /// **Merge semantics:** every field is a plain `u64` sum — neither saturating nor
    /// explicitly wrapping, so an overflow panics in debug builds and wraps in release builds,
    /// per standard Rust integer arithmetic.  That is deliberate: the counters tally datapath
    /// beats and node visits, which sit tens of orders of magnitude below `u64::MAX` for any
    /// representable workload, so a saturating add would only hide an accounting bug.  Merging
    /// is commutative and associative, and merging a default (all-zero) set is the identity, so
    /// shard totals are independent of merge order — which is what makes parallel statistics
    /// bit-identical to single-threaded runs.
    pub fn merge(&mut self, other: &TraversalStats) {
        self.box_ops += other.box_ops;
        self.triangle_ops += other.triangle_ops;
        self.nodes_visited += other.nodes_visited;
        self.leaves_visited += other.leaves_visited;
        self.rays += other.rays;
        self.tlas_box_ops += other.tlas_box_ops;
        self.instances_visited += other.instances_visited;
        self.shard_fallbacks += other.shard_fallbacks;
    }

    /// [`TraversalStats::merge`] as a value-returning combinator, for fold-style reductions
    /// (`shards.iter().fold(TraversalStats::default(), |acc, s| acc.merged(s))`).  Marked
    /// `#[must_use]` because dropping the result silently discards the merge.
    #[must_use]
    pub fn merged(mut self, other: &TraversalStats) -> Self {
        self.merge(other);
        self
    }
}

/// One traversal request: a [`Scene`] plus up to two ray streams — a **closest-hit** stream and
/// an **any-hit** (shadow/occlusion) stream.  Either stream may be empty; a request carrying
/// both is the fused pair the unified RT unit time-multiplexes.
///
/// This is the single argument of [`TraversalEngine::trace`], the one policy-taking entry point
/// both traversal query kinds share.  The scene may be flat or two-level instanced — every
/// execution mode traverses either representation, and an instanced scene yields bit-identical
/// hits to its [`Scene::flatten`] twin.
#[derive(Debug, Clone, Copy)]
pub struct TraceRequest<'a> {
    view: SceneView<'a>,
    closest: &'a [Ray],
    any: &'a [Ray],
    deadlines: [u64; 2],
}

impl<'a> TraceRequest<'a> {
    /// A closest-hit request over `rays` against `scene`.
    #[must_use]
    pub fn closest_hit(scene: &'a Scene, rays: &'a [Ray]) -> Self {
        TraceRequest {
            view: scene.view(),
            closest: rays,
            any: &[],
            deadlines: [0, 0],
        }
    }

    /// An any-hit (shadow/occlusion) request over `rays` against `scene`.
    #[must_use]
    pub fn any_hit(scene: &'a Scene, rays: &'a [Ray]) -> Self {
        TraceRequest {
            view: scene.view(),
            closest: &[],
            any: rays,
            deadlines: [0, 0],
        }
    }

    /// A request carrying both streams — the heterogeneous pair
    /// [`ExecMode::Fused`](crate::ExecMode::Fused) merges into shared passes (the other modes
    /// trace the two streams closest-first).
    #[must_use]
    pub fn pair(scene: &'a Scene, closest: &'a [Ray], any: &'a [Ray]) -> Self {
        TraceRequest {
            view: scene.view(),
            closest,
            any,
            deadlines: [0, 0],
        }
    }

    /// A closest-hit request over a loose `(bvh, triangles)` pair — the pre-[`Scene`]
    /// signature.
    #[deprecated(note = "wrap the geometry in a Scene (Scene::from_parts) and use \
                         TraceRequest::closest_hit(&scene, rays)")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    #[must_use]
    pub fn closest_hit_flat(bvh: &'a Bvh4, triangles: &'a [Triangle], rays: &'a [Ray]) -> Self {
        TraceRequest {
            view: SceneView::Flat { bvh, triangles },
            closest: rays,
            any: &[],
            deadlines: [0, 0],
        }
    }

    /// An any-hit request over a loose `(bvh, triangles)` pair — the pre-[`Scene`] signature.
    #[deprecated(note = "wrap the geometry in a Scene (Scene::from_parts) and use \
                         TraceRequest::any_hit(&scene, rays)")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    #[must_use]
    pub fn any_hit_flat(bvh: &'a Bvh4, triangles: &'a [Triangle], rays: &'a [Ray]) -> Self {
        TraceRequest {
            view: SceneView::Flat { bvh, triangles },
            closest: &[],
            any: rays,
            deadlines: [0, 0],
        }
    }

    /// A both-streams request over a loose `(bvh, triangles)` pair — the pre-[`Scene`]
    /// signature.
    #[deprecated(note = "wrap the geometry in a Scene (Scene::from_parts) and use \
                         TraceRequest::pair(&scene, closest, any)")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    #[must_use]
    pub fn pair_flat(
        bvh: &'a Bvh4,
        triangles: &'a [Triangle],
        closest: &'a [Ray],
        any: &'a [Ray],
    ) -> Self {
        TraceRequest {
            view: SceneView::Flat { bvh, triangles },
            closest,
            any,
            deadlines: [0, 0],
        }
    }

    /// The scene view the request traverses.
    pub(crate) fn view(&self) -> SceneView<'a> {
        self.view
    }

    /// A both-streams request straight over a borrowed view (the parallel backend's retry path).
    pub(crate) fn pair_view(view: SceneView<'a>, closest: &'a [Ray], any: &'a [Ray]) -> Self {
        TraceRequest {
            view,
            closest,
            any,
            deadlines: [0, 0],
        }
    }

    /// Attaches per-stream deadlines, in whatever monotone unit the caller measures urgency in
    /// (a server uses microseconds-until-flush).  `0` means "no deadline" and always sorts
    /// last.  Deadlines only matter under
    /// [`AdmissionOrder::EarliestDeadlineFirst`](crate::AdmissionOrder::EarliestDeadlineFirst):
    /// the fused scheduler then builds and issues the tighter-deadline stream's segment first
    /// within every shared pass.  Outputs and statistics are unaffected — the knob reorders
    /// work inside passes, it does not change what work runs.
    #[must_use]
    pub fn with_stream_deadlines(mut self, closest: u64, any: u64) -> Self {
        self.deadlines = [closest, any];
        self
    }

    /// The per-stream `[closest, any]` deadlines (`0` = none) set by
    /// [`TraceRequest::with_stream_deadlines`].
    #[must_use]
    pub fn stream_deadlines(&self) -> [u64; 2] {
        self.deadlines
    }

    /// Total primitives the request's scene addresses by global id (a flat scene's triangle
    /// count, or the sum over every placed instance of a two-level scene).
    #[must_use]
    pub fn triangle_count(&self) -> usize {
        self.view.triangle_count()
    }

    /// The closest-hit ray stream (possibly empty).
    #[must_use]
    pub fn closest_rays(&self) -> &'a [Ray] {
        self.closest
    }

    /// The any-hit ray stream (possibly empty).
    #[must_use]
    pub fn any_rays(&self) -> &'a [Ray] {
        self.any
    }
}

/// The outputs of one [`TraversalEngine::trace`] call: one optional hit per ray of each stream,
/// in the request's ray order (empty where the request's stream was empty).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOutput {
    /// Closest-hit results, parallel to [`TraceRequest::closest_rays`].
    pub closest: Vec<Option<TraversalHit>>,
    /// Any-hit results, parallel to [`TraceRequest::any_rays`] (`Some` means occluded).
    pub any: Vec<Option<TraversalHit>>,
}

impl TraceOutput {
    /// Consumes the output of a closest-hit-only request.
    #[must_use]
    pub fn into_closest(self) -> Vec<Option<TraversalHit>> {
        self.closest
    }

    /// Consumes the output of an any-hit-only request.
    #[must_use]
    pub fn into_any(self) -> Vec<Option<TraversalHit>> {
        self.any
    }
}

/// Per-ray wavefront traversal state, shared by the closest-hit and any-hit queries.  The vectors
/// are pooled by the scheduler and reused across rays and calls.
///
/// Stack and pending entries are traversal *handles* (see `crate::scene`): a context id in the
/// high bits — the top-level structure, or one instance's BLAS — and a node / mesh-local
/// primitive index in the low bits, so one stack walks a flat BVH and a two-level TLAS/BLAS
/// hierarchy with the same machinery.
#[derive(Debug, Default)]
pub struct RayWork {
    stack: Vec<u64>,
    /// Leaf primitives awaiting their ray–triangle beat, tested back-to-front (`pop`), so they
    /// are pushed in reverse leaf order to preserve the scalar path's test order.
    pending: Vec<u64>,
    best: Option<TraversalHit>,
}

impl RayWork {
    fn reset(&mut self, root: u64) {
        self.stack.clear();
        self.stack.push(root);
        self.pending.clear();
        self.best = None;
    }
}

/// Both traversal kinds as one [`BatchQuery`]: the scene, the ray stream, the query kind
/// (closest-hit or any-hit) and the statistics the stream accumulates.  The query owns its
/// statistics so several traversal streams can run *fused* in the same passes (each merges into
/// the engine's counters when it finishes).
#[derive(Debug)]
struct TraversalQuery<'a> {
    kind: QueryKind,
    view: SceneView<'a>,
    rays: &'a [Ray],
    /// One prebuilt datapath operand per ray: the operand is constant across every beat of a
    /// ray's traversal, so converting it once here keeps the per-beat build path to two copies
    /// (operand + geometry) instead of a full [`Ray`] → operand conversion per beat.  Indexed
    /// by item until [`BatchQuery::reorder`] gathers it into admission order, after which the
    /// scheduler addresses the query by admission slot and every access here is sequential.
    operands: Vec<RayOperand>,
    /// Scratch for the [`BatchQuery::reorder`] gather, pooled alongside `operands`.
    scratch: Vec<RayOperand>,
    stats: TraversalStats,
}

impl<'a> TraversalQuery<'a> {
    fn new(kind: QueryKind, view: SceneView<'a>, rays: &'a [Ray]) -> Self {
        Self::with_operand_buffer(kind, view, rays, Vec::new(), Vec::new())
    }

    /// [`TraversalQuery::new`] recycling caller-pooled operand buffers: the buffers are cleared
    /// and refilled, so warm buffers make query construction allocation-free — the engine
    /// reclaims them via [`TraversalQuery::into_buffers`] after the run (the zero-alloc
    /// steady-state contract of the wavefront hot path).
    fn with_operand_buffer(
        kind: QueryKind,
        view: SceneView<'a>,
        rays: &'a [Ray],
        mut operands: Vec<RayOperand>,
        scratch: Vec<RayOperand>,
    ) -> Self {
        debug_assert!(matches!(kind, QueryKind::ClosestHit | QueryKind::AnyHit));
        operands.clear();
        operands.extend(rays.iter().map(RayOperand::from_ray));
        TraversalQuery {
            kind,
            view,
            rays,
            operands,
            scratch,
            stats: TraversalStats {
                rays: rays.len() as u64,
                ..TraversalStats::default()
            },
        }
    }

    /// Consumes the query, handing its operand and scratch buffers back to the owner's pool.
    fn into_buffers(self) -> (Vec<RayOperand>, Vec<RayOperand>) {
        (self.operands, self.scratch)
    }

    /// Builds the next beat for one ray, advancing its state; `false` retires the ray.
    ///
    /// The per-ray beat order is exactly the scalar path's: all pending leaf primitives (in leaf
    /// order), then the next stack node — with TLAS leaves of an instanced scene expanded
    /// beat-free into BLAS-root pushes, exactly as the scalar walk expands them.  Box beats
    /// carry the node's traversal handle as their tag so the response can be matched back to
    /// the node's child table (TLAS-phase beats additionally carry
    /// [`TLAS_PHASE_TAG`](rayflex_core::TLAS_PHASE_TAG) for the datapath's beat attribution);
    /// triangle beats carry the ray index.
    fn build_next_beat(
        &mut self,
        item: usize,
        state: &mut RayWork,
        out: &mut Vec<RayFlexRequest>,
    ) -> bool {
        loop {
            if !state.pending.is_empty() {
                if self.kind == QueryKind::ClosestHit {
                    // Closest-hit tests every primitive of the leaf unconditionally (exactly as
                    // the scalar walk does), so the whole pending run is emitted as one beat
                    // train: same beats, same order, but contiguous in the pass buffer — which
                    // is what lets the lane-batched triangle kernel engage across them.  The
                    // train is the hottest emission loop in the engine, so it is written as one
                    // `extend` (a single capacity reservation, requests constructed in place)
                    // with the scene-view dispatch hoisted out of the per-beat body.
                    self.stats.triangle_ops += state.pending.len() as u64;
                    let operand = &self.operands[item];
                    match &self.view {
                        SceneView::Flat { triangles, .. } => {
                            out.extend(state.pending.iter().rev().map(|&entry| {
                                RayFlexRequest::ray_triangle_operand(
                                    item as u64,
                                    operand,
                                    &triangles[handle_index(entry)],
                                )
                            }));
                        }
                        view => {
                            out.extend(state.pending.iter().rev().map(|&entry| {
                                let (triangle, _) = view.pending_triangle(entry);
                                RayFlexRequest::ray_triangle_operand(
                                    item as u64,
                                    operand,
                                    &triangle,
                                )
                            }));
                        }
                    }
                } else {
                    // Any-hit stops at the first accepted hit, so beats past it must never
                    // issue: one beat per pass keeps the count identical to the scalar walk.
                    let Some(&entry) = state.pending.last() else {
                        unreachable!("pending is non-empty");
                    };
                    self.stats.triangle_ops += 1;
                    let (triangle, _) = self.view.pending_triangle(entry);
                    out.push(RayFlexRequest::ray_triangle_operand(
                        item as u64,
                        &self.operands[item],
                        &triangle,
                    ));
                }
                return true;
            }
            let Some(popped) = state.stack.pop() else {
                return false;
            };
            match self.view.step(popped) {
                NodeStep::Leaf { prims, ctx } => {
                    self.stats.leaves_visited += 1;
                    // Reversed so `pop` tests primitives in leaf order, like the scalar path.
                    state
                        .pending
                        .extend(prims.iter().rev().map(|&prim| handle(ctx, prim)));
                }
                NodeStep::Instances { prims } => {
                    // A TLAS leaf costs no beat: each instance descends straight to its BLAS
                    // root, reversed so the first instance in leaf order pops first.
                    self.stats.instances_visited += prims.len() as u64;
                    state.stack.extend(
                        prims
                            .iter()
                            .rev()
                            .map(|&inst| self.view.instance_root(inst)),
                    );
                }
                NodeStep::BoxBeat {
                    tag, bounds, tlas, ..
                } => {
                    self.stats.nodes_visited += 1;
                    self.stats.box_ops += 1;
                    if tlas {
                        self.stats.tlas_box_ops += 1;
                    }
                    out.push(RayFlexRequest::ray_box_operand(
                        tag,
                        &self.operands[item],
                        bounds.as_array(),
                    ));
                    return true;
                }
            }
        }
    }
}

impl BatchQuery for TraversalQuery<'_> {
    type State = RayWork;
    type Output = Option<TraversalHit>;

    fn kind(&self) -> QueryKind {
        self.kind
    }

    fn items(&self) -> usize {
        self.rays.len()
    }

    /// Coherence key for octant-sorted admission: rays sharing a direction octant and an
    /// origin-Morton neighbourhood dispatch adjacently, so their box/triangle beat trains land
    /// contiguously in the pass buffer where the SIMD fast path can batch them.
    fn sort_key(&self, item: usize) -> u64 {
        self.operands[item].coherence_key()
    }

    /// Gathers the operand table into admission order, switching the query to admission-slot
    /// addressing: a sorted run's build/apply loops then walk `operands` sequentially instead of
    /// striding through it in item order.  Everything else the query touches is either shared
    /// and read-only (the scene view), owned by the addressed state (stack, pending, best hit),
    /// or an order-insensitive aggregate (the statistics), so slot addressing is output-exact.
    fn reorder(&mut self, order: &[usize]) -> bool {
        self.scratch.clear();
        self.scratch
            .extend(order.iter().map(|&item| self.operands[item]));
        core::mem::swap(&mut self.operands, &mut self.scratch);
        true
    }

    fn reset(&mut self, _item: usize, state: &mut RayWork) {
        state.reset(self.view.root_handle());
    }

    fn build(&mut self, item: usize, state: &mut RayWork, out: &mut Vec<RayFlexRequest>) -> bool {
        // Any-hit: a recorded hit terminates the ray before any further beat is issued, so the
        // per-ray beat count matches the scalar path, which stops right after the hitting beat.
        if self.kind == QueryKind::AnyHit && state.best.is_some() {
            return false;
        }
        self.build_next_beat(item, state, out)
    }

    fn apply(&mut self, item: usize, state: &mut RayWork, response: &RayFlexResponse) {
        if let Some(result) = response.triangle_result {
            let Some(entry) = state.pending.pop() else {
                unreachable!("a triangle beat always has a pending primitive");
            };
            // The parametric extent comes from the operand table (same values as the source
            // ray's), so apply works under both item and admission-slot addressing.  The
            // global-primitive decode happens only on an accepted hit — most triangle tests
            // miss, and this is the hottest apply path in the engine (the accept logic is
            // `record_triangle_hit`'s, with the decode moved past the accept checks).
            let operand = &self.operands[item];
            match self.kind {
                // Closest-hit: keep the nearest accepted hit, keep traversing.
                QueryKind::ClosestHit => {
                    if result.hit {
                        let t = result.distance();
                        if t >= operand.t_beg
                            && t <= operand.t_end
                            && state.best.is_none_or(|b| t < b.t)
                        {
                            state.best = Some(TraversalHit {
                                primitive: self.view.global_primitive(entry),
                                t,
                            });
                        }
                    }
                }
                // Any-hit: the first accepted hit terminates the ray.
                _ => {
                    if result.hit {
                        let t = result.distance();
                        if t >= operand.t_beg && t <= operand.t_end {
                            state.best = Some(TraversalHit {
                                primitive: self.view.global_primitive(entry),
                                t,
                            });
                            state.stack.clear();
                            state.pending.clear();
                        }
                    }
                }
            }
        } else if let Some(result) = response.box_result {
            let (children, ctx) = self.view.children_for_tag(response.tag);
            // Closest-hit prunes children farther than the best hit so far; any-hit never does.
            let prune = if self.kind == QueryKind::ClosestHit {
                state.best.as_ref()
            } else {
                None
            };
            push_hit_children(&mut state.stack, &result, children, ctx, prune);
        }
    }

    fn finish(&mut self, _item: usize, state: &mut RayWork) -> Option<TraversalHit> {
        state.best.take()
    }
}

/// A traversal ray stream packaged for **fused** scheduling: a closest-hit or any-hit query over
/// one scene and ray slice, runnable side by side with other
/// [`FusedStream`](crate::FusedStream)s (another traversal
/// stream, distance scoring, candidate collection) in the shared passes of a
/// [`FusedScheduler`].
///
/// Because the per-ray state machine is exactly the one the engine's wavefront frontend runs,
/// the hits and [`TraversalStats`] a fused stream yields are bit-identical to
/// [`TraversalEngine::trace`] under any [`ExecPolicy`](crate::ExecPolicy) over the same rays.
#[derive(Debug)]
pub struct TraversalStream<'a> {
    runner: StreamRunner<TraversalQuery<'a>>,
}

impl<'a> TraversalStream<'a> {
    /// A closest-hit stream over `rays` against `scene`.
    #[must_use]
    pub fn closest_hit(scene: &'a Scene, rays: &'a [Ray]) -> Self {
        Self::closest_hit_view(scene.view(), rays)
    }

    /// An any-hit (shadow/occlusion) stream over `rays` against `scene`.
    #[must_use]
    pub fn any_hit(scene: &'a Scene, rays: &'a [Ray]) -> Self {
        Self::any_hit_view(scene.view(), rays)
    }

    /// A closest-hit stream over a loose `(bvh, triangles)` pair — the pre-[`Scene`] signature.
    #[deprecated(note = "wrap the geometry in a Scene (Scene::from_parts) and use \
                         TraversalStream::closest_hit(&scene, rays)")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    #[must_use]
    pub fn closest_hit_flat(bvh: &'a Bvh4, triangles: &'a [Triangle], rays: &'a [Ray]) -> Self {
        Self::closest_hit_view(SceneView::Flat { bvh, triangles }, rays)
    }

    /// An any-hit stream over a loose `(bvh, triangles)` pair — the pre-[`Scene`] signature.
    #[deprecated(note = "wrap the geometry in a Scene (Scene::from_parts) and use \
                         TraversalStream::any_hit(&scene, rays)")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    #[must_use]
    pub fn any_hit_flat(bvh: &'a Bvh4, triangles: &'a [Triangle], rays: &'a [Ray]) -> Self {
        Self::any_hit_view(SceneView::Flat { bvh, triangles }, rays)
    }

    pub(crate) fn closest_hit_view(view: SceneView<'a>, rays: &'a [Ray]) -> Self {
        TraversalStream {
            runner: StreamRunner::new(TraversalQuery::new(QueryKind::ClosestHit, view, rays)),
        }
    }

    pub(crate) fn any_hit_view(view: SceneView<'a>, rays: &'a [Ray]) -> Self {
        TraversalStream {
            runner: StreamRunner::new(TraversalQuery::new(QueryKind::AnyHit, view, rays)),
        }
    }

    /// Selects the coherence mode for this stream's admission ordering (must be called before
    /// the stream starts; the policy entry points do this automatically, so this only matters
    /// when driving a [`FusedScheduler`](crate::FusedScheduler) by hand).
    pub fn set_coherence(&mut self, coherence: CoherenceMode) {
        self.runner.set_coherence(coherence);
    }

    /// Builder form of [`TraversalStream::set_coherence`].
    #[must_use]
    pub fn with_coherence(mut self, coherence: CoherenceMode) -> Self {
        self.set_coherence(coherence);
        self
    }

    /// One optional hit per ray (in ray order) plus the stream's traversal statistics, after a
    /// fused run completed.
    ///
    /// # Panics
    ///
    /// Panics if the stream was never run to completion.
    #[must_use]
    pub fn finish(self) -> (Vec<Option<TraversalHit>>, TraversalStats) {
        let (query, hits) = self.runner.finish();
        (hits, query.stats)
    }

    /// Like [`TraversalStream::finish`], but tolerant of a budget-cancelled run: yields the
    /// hits of the longest fully-retired item prefix (everything, if the run completed), the
    /// prefix length, and the stream's statistics.  Rays cancelled mid-flight surface nothing —
    /// a premature best-hit would be silently wrong.  A server mapping
    /// [`CappedFusedRun::Incomplete`](crate::CappedFusedRun) onto a partial protocol response
    /// calls this to salvage the completed prefix.
    #[must_use]
    pub fn finish_partial(self) -> (Vec<Option<TraversalHit>>, usize, TraversalStats) {
        let (query, hits, prefix) = self.runner.finish_partial();
        (hits, prefix, query.stats)
    }
}

crate::query::delegate_fused_stream_to_runner!(TraversalStream<'_>);

/// A BVH traversal engine driving a functional RayFlex datapath.
///
/// The engine reproduces the traversal loop the RT unit implements above the datapath (paper
/// Fig. 2 / Fig. 3): internal nodes are tested with one four-wide ray–box beat, children are
/// visited in the order of intersection returned by the datapath's sort network, and leaves issue
/// one ray–triangle beat per primitive.  Closest-hit traversal prunes hit children farther than
/// the best hit found so far; any-hit traversal terminates a ray on its first accepted
/// intersection (the shadow/occlusion query).
#[derive(Debug)]
pub struct TraversalEngine {
    datapath: RayFlexDatapath,
    stats: TraversalStats,
    /// Work-stealing pool counters accumulated across parallel runs (see
    /// [`TraversalEngine::pool_stats`]); kept apart from [`TraversalStats`] because steal counts
    /// are scheduling artefacts, not mode-invariant workload facts.
    pool: crate::parallel::PoolStats,
    next_tag: u64,
    /// Pooled traversal stacks (of handles) for the scalar paths.
    stack_pool: Vec<Vec<u64>>,
    /// The generic wavefront scheduler; both traversal query kinds share its state pool.
    scheduler: WavefrontScheduler<RayWork>,
    /// The fused multi-stream scheduler for passes shared between query kinds.
    fused: FusedScheduler,
    /// Reusable ray buffer for the packet frontends.
    ray_scratch: Vec<Ray>,
    /// Coherence mode applied to batched admissions (octant-sorted wavefronts); the policy
    /// entry points overwrite it per call, [`ExecMode::ScalarReference`] forces it off.
    coherence: CoherenceMode,
    /// Pooled per-ray operand buffer recycled across wavefront runs, so a steady-state trace
    /// call builds its query without allocating.
    operand_pool: Vec<RayOperand>,
    /// Pooled scratch for the coherence reorder gather (see [`BatchQuery::reorder`]), recycled
    /// like [`TraversalEngine::operand_pool`].
    operand_scratch: Vec<RayOperand>,
}

impl TraversalEngine {
    /// Creates an engine over a baseline-unified datapath (the paper's reference design).
    #[must_use]
    pub fn baseline() -> Self {
        Self::with_config(PipelineConfig::baseline_unified())
    }

    /// Creates an engine over a datapath of the given configuration.
    #[must_use]
    pub fn with_config(config: PipelineConfig) -> Self {
        TraversalEngine {
            datapath: RayFlexDatapath::new(config),
            stats: TraversalStats::default(),
            pool: crate::parallel::PoolStats::default(),
            next_tag: 0,
            stack_pool: Vec::new(),
            scheduler: WavefrontScheduler::new(),
            fused: FusedScheduler::new(),
            ray_scratch: Vec::new(),
            coherence: CoherenceMode::default(),
            operand_pool: Vec::new(),
            operand_scratch: Vec::new(),
        }
    }

    /// The datapath configuration this engine drives.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        self.datapath.config()
    }

    /// The accumulated traversal statistics.
    #[must_use]
    pub fn stats(&self) -> TraversalStats {
        self.stats
    }

    /// Per-opcode breakdown of every beat this engine's datapath has executed (closest-hit and
    /// any-hit passes share the datapath, so this attributes mixed workloads).
    #[must_use]
    pub fn beat_mix(&self) -> BeatMix {
        self.datapath.beat_mix()
    }

    /// Resets the accumulated statistics (including the pool counters).
    pub fn reset_stats(&mut self) {
        self.stats = TraversalStats::default();
        self.pool = crate::parallel::PoolStats::default();
    }

    /// Work-stealing pool counters accumulated across every parallel run this engine has
    /// dispatched.  Unlike [`TraversalEngine::stats`] these are **not** mode-invariant: steal
    /// counts depend on runtime scheduling, and non-parallel modes leave them untouched.
    #[must_use]
    pub fn pool_stats(&self) -> crate::parallel::PoolStats {
        self.pool
    }

    /// Sets the SIMD lane width of this engine's datapath fast path (clamped to
    /// `[1, rayflex_core::MAX_SIMD_LANES]`).  [`ExecPolicy::simd_lanes`] applies this
    /// automatically at every `trace`/`try_trace` entry; the setter is public for callers
    /// driving the engine's wavefront frontends directly.
    pub fn set_simd_lanes(&mut self, lanes: usize) {
        self.datapath.set_simd_lanes(lanes);
    }

    /// Selects the coherence mode the engine's batched frontends admit work under (octant-sorted
    /// wavefronts, active-lane compaction — see [`CoherenceMode`]).
    /// [`ExecPolicy::coherence`](crate::ExecPolicy) applies this automatically at every
    /// `trace`/`try_trace` entry; the setter is public for callers driving the engine's
    /// wavefront frontends directly.  Hits and [`TraversalStats`] are coherence-invariant —
    /// the knob only reorders dispatch.
    pub fn set_coherence(&mut self, coherence: CoherenceMode) {
        self.coherence = coherence;
    }

    /// The coherence mode the engine's batched frontends currently admit work under.
    #[must_use]
    pub fn coherence(&self) -> CoherenceMode {
        self.coherence
    }

    /// The effective (clamped) SIMD lane width of this engine's datapath fast path.
    #[must_use]
    pub fn simd_lanes(&self) -> usize {
        self.datapath.simd_lanes()
    }

    /// Traces a [`TraceRequest`] under an execution policy — **the** traversal entry point, for
    /// both query kinds and every [`ExecMode`]:
    ///
    /// * [`ExecMode::ScalarReference`] — every ray walks to completion one register-accurate
    ///   emulated beat at a time (closest-hit stream first, then any-hit);
    /// * [`ExecMode::Wavefront`] — each stream runs as one bulk-dispatch wavefront through the
    ///   shared scheduler;
    /// * [`ExecMode::Fused`] — both streams merge into shared mixed-kind passes over this
    ///   engine's single datapath, with at most
    ///   [`beat_budget_per_stream`](ExecPolicy::beat_budget_per_stream) beats per stream per
    ///   pass;
    /// * [`ExecMode::Parallel`] — the streams shard contiguously across worker threads, each
    ///   worker a private datapath running the fused discipline over its slice; per-shard
    ///   statistics merge into this engine's totals.
    ///
    /// Hits and accumulated [`TraversalStats`] are **bit-identical across all four modes** (and
    /// all beat budgets) — the cross-policy invariant `rtunit/tests/proptest_policy.rs` pins.
    ///
    /// # Example
    ///
    /// ```
    /// use rayflex_geometry::{Ray, Triangle, Vec3};
    /// use rayflex_rtunit::{ExecPolicy, Scene, TraceRequest, TraversalEngine};
    ///
    /// let scene = Scene::flat(vec![Triangle::new(
    ///     Vec3::new(-1.0, -1.0, 3.0),
    ///     Vec3::new(1.0, -1.0, 3.0),
    ///     Vec3::new(0.0, 1.0, 3.0),
    /// )]);
    /// let rays = [Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0))];
    /// let mut engine = TraversalEngine::baseline();
    /// let hits = engine
    ///     .trace(&TraceRequest::closest_hit(&scene, &rays), &ExecPolicy::wavefront())
    ///     .into_closest();
    /// assert!(hits[0].is_some());
    /// ```
    pub fn trace(&mut self, request: &TraceRequest<'_>, policy: &ExecPolicy) -> TraceOutput {
        self.datapath.set_simd_lanes(policy.effective_simd_lanes());
        self.coherence = policy.effective_coherence();
        let view = request.view();
        match policy.mode {
            ExecMode::ScalarReference => TraceOutput {
                closest: request
                    .closest
                    .iter()
                    .map(|ray| self.scalar_closest_hit(view, ray))
                    .collect(),
                any: request
                    .any
                    .iter()
                    .map(|ray| self.scalar_any_hit(view, ray))
                    .collect(),
            },
            ExecMode::Wavefront => TraceOutput {
                closest: self.wavefront_closest_hits(view, request.closest),
                any: self.wavefront_any_hits(view, request.any),
            },
            ExecMode::Fused => {
                let (closest, any) = self.fused_pair(
                    view,
                    request.closest,
                    request.any,
                    policy.beat_budget_per_stream,
                    policy.admission_order,
                    request.deadlines,
                );
                TraceOutput { closest, any }
            }
            ExecMode::Parallel { shards } => {
                let threads = shards.requested_threads();
                let auto_tuned = crate::parallel::pair_effective_threads(
                    request.closest.len(),
                    request.any.len(),
                    threads,
                );
                if auto_tuned <= 1 {
                    // Too small to shard profitably: run inline on this engine (keeping its
                    // pools and beat attribution) rather than spinning up a throwaway worker.
                    if request.any.is_empty() {
                        return TraceOutput {
                            closest: self.wavefront_closest_hits(view, request.closest),
                            any: Vec::new(),
                        };
                    }
                    if request.closest.is_empty() {
                        return TraceOutput {
                            closest: Vec::new(),
                            any: self.wavefront_any_hits(view, request.any),
                        };
                    }
                    let (closest, any) = self.fused_pair(
                        view,
                        request.closest,
                        request.any,
                        0,
                        policy.admission_order,
                        request.deadlines,
                    );
                    return TraceOutput { closest, any };
                }
                let out = crate::parallel::fused_pair_sharded(
                    *self.config(),
                    view,
                    request.closest,
                    request.any,
                    threads,
                    policy.effective_simd_lanes(),
                    policy.coherence,
                    matches!(shards, crate::policy::ShardHint::Auto),
                );
                self.stats.merge(&out.stats);
                self.pool.merge(&out.pool);
                TraceOutput {
                    closest: out.closest,
                    any: out.any,
                }
            }
        }
    }

    /// [`TraversalEngine::trace`] with the hardened failure contract: structured errors instead
    /// of garbage or panics, and cooperative deadline cancellation.
    ///
    /// * The scene is checked up front by the [`SceneValidator`] (finite non-degenerate
    ///   triangles, consistent BVH topology and bounds) and both ray streams by the datapath
    ///   guards — malformed input fails [`QueryError::InvalidScene`] /
    ///   [`QueryError::InvalidRequest`] before any beat is issued.
    /// * Under [`ExecMode::Parallel`], a worker shard that panics is retried once through the
    ///   scalar reference path (bit-identical, counted in
    ///   [`TraversalStats::shard_fallbacks`]); a shard whose retry also dies fails
    ///   [`QueryError::ShardPanicked`] instead of unwinding through the caller.
    /// * With [`ExecPolicy::max_total_beats`] set, the run cancels cooperatively at a pass
    ///   boundary once the budget is spent and returns [`QueryOutcome::Partial`]: the hits of
    ///   the longest fully-retired item prefix — bit-identical to the same prefix of the
    ///   uncapped run — plus progress counters.  A cap too small to retire a single item fails
    ///   [`QueryError::BudgetExhausted`].
    ///
    /// A run that completes within its budget (or with no budget) returns
    /// [`QueryOutcome::Complete`] carrying exactly what [`TraversalEngine::trace`] would have
    /// — the plain entry point stays the fast path; this one adds O(scene + rays) validation.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidScene`], [`QueryError::InvalidRequest`],
    /// [`QueryError::ShardPanicked`] or [`QueryError::BudgetExhausted`], as above.
    ///
    /// # Example
    ///
    /// ```
    /// use rayflex_geometry::{Ray, Triangle, Vec3};
    /// use rayflex_rtunit::{ExecPolicy, QueryError, Scene, TraceRequest, TraversalEngine};
    ///
    /// let scene = Scene::flat(vec![Triangle::new(
    ///     Vec3::new(-1.0, -1.0, 3.0),
    ///     Vec3::new(1.0, -1.0, 3.0),
    ///     Vec3::new(0.0, 1.0, 3.0),
    /// )]);
    /// let mut rays = [Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0))];
    /// let mut engine = TraversalEngine::baseline();
    /// let outcome = engine
    ///     .try_trace(&TraceRequest::closest_hit(&scene, &rays), &ExecPolicy::wavefront())
    ///     .unwrap();
    /// assert!(outcome.is_complete());
    ///
    /// rays[0].origin.x = f32::NAN;
    /// let err = engine
    ///     .try_trace(&TraceRequest::closest_hit(&scene, &rays), &ExecPolicy::wavefront())
    ///     .unwrap_err();
    /// assert!(matches!(err, QueryError::InvalidRequest { .. }));
    /// ```
    pub fn try_trace(
        &mut self,
        request: &TraceRequest<'_>,
        policy: &ExecPolicy,
    ) -> Result<QueryOutcome<TraceOutput>, QueryError> {
        SceneValidator::validate_view(request.view())?;
        validate_rays(request.closest, "closest-hit")?;
        validate_rays(request.any, "any-hit")?;
        if policy.max_total_beats == 0 {
            return self
                .trace_isolated(request, policy)
                .map(QueryOutcome::Complete);
        }
        self.trace_capped(request, policy)
    }

    /// The uncapped `try_trace` body: [`TraversalEngine::trace`], except that parallel worker
    /// panics surface as [`QueryError::ShardPanicked`] instead of unwinding.
    fn trace_isolated(
        &mut self,
        request: &TraceRequest<'_>,
        policy: &ExecPolicy,
    ) -> Result<TraceOutput, QueryError> {
        if let ExecMode::Parallel { shards } = policy.mode {
            let threads = shards.requested_threads();
            let auto_tuned = crate::parallel::pair_effective_threads(
                request.closest.len(),
                request.any.len(),
                threads,
            );
            if auto_tuned > 1 {
                let out = crate::parallel::fused_pair_sharded_checked(
                    *self.config(),
                    request.view(),
                    request.closest,
                    request.any,
                    threads,
                    policy.effective_simd_lanes(),
                    policy.coherence,
                    matches!(shards, crate::policy::ShardHint::Auto),
                )
                .map_err(|shard| QueryError::ShardPanicked { shard })?;
                self.stats.merge(&out.stats);
                self.pool.merge(&out.pool);
                return Ok(TraceOutput {
                    closest: out.closest,
                    any: out.any,
                });
            }
        }
        Ok(self.trace(request, policy))
    }

    /// The deadline-capped `try_trace` body: runs the request under
    /// [`ExecPolicy::max_total_beats`] and maps the capped machinery's progress onto the
    /// [`QueryOutcome`] contract.
    ///
    /// Capped runs always execute inline on this engine's datapath — cooperative cancellation
    /// is a single-unit admission policy, so [`ExecMode::Parallel`] does not shard here (hits
    /// of the completed prefix are bit-identical in every mode regardless).  The wavefront mode
    /// runs its streams closest-first, threading the remaining budget into the second stream;
    /// the other modes run both streams through the fused machinery (scalar via the
    /// register-accurate reference walk).
    pub(crate) fn trace_capped(
        &mut self,
        request: &TraceRequest<'_>,
        policy: &ExecPolicy,
    ) -> Result<QueryOutcome<TraceOutput>, QueryError> {
        self.datapath.set_simd_lanes(policy.effective_simd_lanes());
        self.coherence = policy.effective_coherence();
        self.scheduler.set_coherence(self.coherence);
        let cap = policy.max_total_beats;
        let total = request.closest.len() + request.any.len();
        let (output, complete, beats) = if policy.mode == ExecMode::Wavefront {
            let mut closest_query = TraversalQuery::with_operand_buffer(
                QueryKind::ClosestHit,
                request.view(),
                request.closest,
                core::mem::take(&mut self.operand_pool),
                core::mem::take(&mut self.operand_scratch),
            );
            let closest = self
                .scheduler
                .run_capped(&mut self.datapath, &mut closest_query, cap);
            self.stats.merge(&closest_query.stats);
            (self.operand_pool, self.operand_scratch) = closest_query.into_buffers();
            let mut beats = closest.beats;
            let mut any_hits = Vec::new();
            let mut any_complete = request.any.is_empty();
            let remaining = cap.saturating_sub(beats);
            if closest.complete && !request.any.is_empty() && remaining > 0 {
                let mut any_query = TraversalQuery::with_operand_buffer(
                    QueryKind::AnyHit,
                    request.view(),
                    request.any,
                    core::mem::take(&mut self.operand_pool),
                    core::mem::take(&mut self.operand_scratch),
                );
                let any = self
                    .scheduler
                    .run_capped(&mut self.datapath, &mut any_query, remaining);
                self.stats.merge(&any_query.stats);
                (self.operand_pool, self.operand_scratch) = any_query.into_buffers();
                beats += any.beats;
                any_hits = any.outputs;
                any_complete = any.complete;
            }
            (
                TraceOutput {
                    closest: closest.outputs,
                    any: any_hits,
                },
                closest.complete && any_complete,
                beats,
            )
        } else {
            let mut closest = TraversalStream::closest_hit_view(request.view(), request.closest);
            let mut any = TraversalStream::any_hit_view(request.view(), request.any);
            closest.set_coherence(self.coherence);
            any.set_coherence(self.coherence);
            let budget = if policy.mode == ExecMode::Fused {
                policy.beat_budget_per_stream
            } else {
                0
            };
            self.fused.set_beat_budget(budget);
            self.fused.set_admission_order(policy.admission_order);
            self.fused.set_stream_deadlines(&request.deadlines);
            let streams: &mut [&mut dyn crate::query::FusedStream] = &mut [&mut closest, &mut any];
            let progress = if policy.mode == ExecMode::ScalarReference {
                self.fused
                    .run_reference_capped(&mut self.datapath, streams, cap)
            } else {
                self.fused.run_capped(&mut self.datapath, streams, cap)
            };
            let (closest_hits, _, closest_stats) = closest.finish_partial();
            let (any_hits, _, any_stats) = any.finish_partial();
            self.stats.merge(&closest_stats);
            self.stats.merge(&any_stats);
            (
                TraceOutput {
                    closest: closest_hits,
                    any: any_hits,
                },
                progress.complete,
                progress.beats,
            )
        };
        if complete {
            return Ok(QueryOutcome::Complete(output));
        }
        let completed = output.closest.len() + output.any.len();
        if completed == 0 {
            return Err(QueryError::BudgetExhausted {
                max_total_beats: cap,
            });
        }
        Ok(QueryOutcome::Partial(PartialResult {
            output,
            completed,
            total,
            beats_spent: beats,
            progress: self.beat_mix(),
        }))
    }

    /// The scalar register-accurate walk of one closest-hit ray (the
    /// [`ExecMode::ScalarReference`] per-ray loop).
    ///
    /// Box beats are tagged with the node's traversal handle (TLAS-phase bit included), exactly
    /// like the batched modes' beats, so the datapath's beat attribution sees the same tags in
    /// every mode; triangle beats use the engine's running tag counter.
    fn scalar_closest_hit(&mut self, view: SceneView<'_>, ray: &Ray) -> Option<TraversalHit> {
        self.stats.rays += 1;
        let mut best: Option<TraversalHit> = None;
        let mut stack = self.stack_pool.pop().unwrap_or_default();
        stack.clear();
        stack.push(view.root_handle());

        while let Some(popped) = stack.pop() {
            match view.step(popped) {
                NodeStep::Leaf { prims, ctx } => {
                    self.stats.leaves_visited += 1;
                    for &local in prims {
                        self.stats.triangle_ops += 1;
                        let (triangle, prim) = view.pending_triangle(handle(ctx, local));
                        let request = RayFlexRequest::ray_triangle(self.tag(), ray, &triangle);
                        let response = self.datapath.execute(&request);
                        let Some(result) = response.triangle_result else {
                            unreachable!("a triangle beat always returns a triangle result");
                        };
                        record_triangle_hit(&mut best, &result, prim, ray.t_beg, ray.t_end);
                    }
                }
                NodeStep::Instances { prims } => {
                    self.stats.instances_visited += prims.len() as u64;
                    stack.extend(prims.iter().rev().map(|&inst| view.instance_root(inst)));
                }
                NodeStep::BoxBeat {
                    tag,
                    bounds,
                    children,
                    ctx,
                    tlas,
                } => {
                    self.stats.nodes_visited += 1;
                    self.stats.box_ops += 1;
                    if tlas {
                        self.stats.tlas_box_ops += 1;
                    }
                    let request = RayFlexRequest::ray_box(tag, ray, bounds.as_array());
                    let response = self.datapath.execute(&request);
                    let Some(result) = response.box_result else {
                        unreachable!("a box beat always returns a box result");
                    };
                    push_hit_children(&mut stack, &result, children, ctx, best.as_ref());
                }
            }
        }
        self.stack_pool.push(stack);
        best
    }

    /// The scalar register-accurate walk of one any-hit ray.
    ///
    /// "First" means first in the deterministic traversal order (nearest-child-first), not
    /// necessarily the geometrically nearest hit; only the hit/no-hit verdict is meaningful to
    /// shadow tests.  Children are never pruned against a best hit, and the traversal stops at
    /// the first accepted triangle beat, so occluded rays cost far fewer beats than a closest-hit
    /// traversal of the same scene.
    fn scalar_any_hit(&mut self, view: SceneView<'_>, ray: &Ray) -> Option<TraversalHit> {
        self.stats.rays += 1;
        let mut found: Option<TraversalHit> = None;
        let mut stack = self.stack_pool.pop().unwrap_or_default();
        stack.clear();
        stack.push(view.root_handle());

        'traversal: while let Some(popped) = stack.pop() {
            match view.step(popped) {
                NodeStep::Leaf { prims, ctx } => {
                    self.stats.leaves_visited += 1;
                    for &local in prims {
                        self.stats.triangle_ops += 1;
                        let (triangle, prim) = view.pending_triangle(handle(ctx, local));
                        let request = RayFlexRequest::ray_triangle(self.tag(), ray, &triangle);
                        let response = self.datapath.execute(&request);
                        let Some(result) = response.triangle_result else {
                            unreachable!("a triangle beat always returns a triangle result");
                        };
                        if result.hit {
                            let t = result.distance();
                            if t >= ray.t_beg && t <= ray.t_end {
                                found = Some(TraversalHit { primitive: prim, t });
                                break 'traversal;
                            }
                        }
                    }
                }
                NodeStep::Instances { prims } => {
                    self.stats.instances_visited += prims.len() as u64;
                    stack.extend(prims.iter().rev().map(|&inst| view.instance_root(inst)));
                }
                NodeStep::BoxBeat {
                    tag,
                    bounds,
                    children,
                    ctx,
                    tlas,
                } => {
                    self.stats.nodes_visited += 1;
                    self.stats.box_ops += 1;
                    if tlas {
                        self.stats.tlas_box_ops += 1;
                    }
                    let request = RayFlexRequest::ray_box(tag, ray, bounds.as_array());
                    let response = self.datapath.execute(&request);
                    let Some(result) = response.box_result else {
                        unreachable!("a box beat always returns a box result");
                    };
                    push_hit_children(&mut stack, &result, children, ctx, None);
                }
            }
        }
        self.stack_pool.push(stack);
        found
    }

    /// One wavefront run of the closest-hit stream through the shared scheduler (the
    /// [`ExecMode::Wavefront`] workhorse, also used per shard by the parallel mode's workers).
    pub(crate) fn wavefront_closest_hits(
        &mut self,
        view: SceneView<'_>,
        rays: &[Ray],
    ) -> Vec<Option<TraversalHit>> {
        self.wavefront_hits(QueryKind::ClosestHit, view, rays)
    }

    /// One wavefront run of the any-hit stream through the shared scheduler.
    pub(crate) fn wavefront_any_hits(
        &mut self,
        view: SceneView<'_>,
        rays: &[Ray],
    ) -> Vec<Option<TraversalHit>> {
        self.wavefront_hits(QueryKind::AnyHit, view, rays)
    }

    /// The shared wavefront frontend body: build the query over pooled operand storage, run it
    /// under the engine's coherence mode, merge its statistics and reclaim the buffer — in
    /// steady state the only allocation left is the returned hit vector.
    fn wavefront_hits(
        &mut self,
        kind: QueryKind,
        view: SceneView<'_>,
        rays: &[Ray],
    ) -> Vec<Option<TraversalHit>> {
        let operands = core::mem::take(&mut self.operand_pool);
        let scratch = core::mem::take(&mut self.operand_scratch);
        let mut query = TraversalQuery::with_operand_buffer(kind, view, rays, operands, scratch);
        self.scheduler.set_coherence(self.coherence);
        let hits = self.scheduler.run(&mut self.datapath, &mut query);
        self.stats.merge(&query.stats);
        (self.operand_pool, self.operand_scratch) = query.into_buffers();
        hits
    }

    /// The fused pair: the closest-hit and any-hit streams merged into shared mixed-kind bulk
    /// passes over this engine's datapath, under the given per-stream beat budget (`0` =
    /// unlimited).  The fusion is observable in the datapath's per-kind [`BeatMix`] counters and
    /// its `fused_passes` count; hits and merged [`TraversalStats`] equal sequential wavefront
    /// scheduling exactly.
    pub(crate) fn fused_pair(
        &mut self,
        view: SceneView<'_>,
        closest_rays: &[Ray],
        any_rays: &[Ray],
        beat_budget_per_stream: usize,
        admission_order: crate::policy::AdmissionOrder,
        deadlines: [u64; 2],
    ) -> (Vec<Option<TraversalHit>>, Vec<Option<TraversalHit>>) {
        let mut closest = TraversalStream::closest_hit_view(view, closest_rays);
        let mut any = TraversalStream::any_hit_view(view, any_rays);
        closest.set_coherence(self.coherence);
        any.set_coherence(self.coherence);
        self.fused.set_beat_budget(beat_budget_per_stream);
        self.fused.set_admission_order(admission_order);
        self.fused.set_stream_deadlines(&deadlines);
        self.fused
            .run(&mut self.datapath, &mut [&mut closest, &mut any]);
        let (closest_hits, closest_stats) = closest.finish();
        let (any_hits, any_stats) = any.finish();
        self.stats.merge(&closest_stats);
        self.stats.merge(&any_stats);
        (closest_hits, any_hits)
    }

    /// Number of bulk passes the engine's most recent fused run dispatched (how a beat budget
    /// reshapes the pass structure — diagnostics for the fairness knob).
    #[must_use]
    pub fn last_fused_passes(&self) -> u64 {
        self.fused.last_run_passes()
    }

    // --- Deprecated pre-policy method variants, kept as thin shims over `trace`. -------------

    /// Finds the closest front-face hit of `ray`, or `None` if the ray escapes the scene.
    #[deprecated(note = "use TraversalEngine::trace(&TraceRequest::closest_hit(..), \
                         &ExecPolicy::scalar())")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    pub fn closest_hit(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        ray: &Ray,
    ) -> Option<TraversalHit> {
        self.trace(
            &TraceRequest::closest_hit_flat(bvh, triangles, core::slice::from_ref(ray)),
            &ExecPolicy::scalar(),
        )
        .closest
        .pop()
        .flatten()
    }

    /// Returns the first intersection of `ray` accepted within its extent (the shadow query).
    #[deprecated(note = "use TraversalEngine::trace(&TraceRequest::any_hit(..), \
                         &ExecPolicy::scalar())")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    pub fn any_hit(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        ray: &Ray,
    ) -> Option<TraversalHit> {
        self.trace(
            &TraceRequest::any_hit_flat(bvh, triangles, core::slice::from_ref(ray)),
            &ExecPolicy::scalar(),
        )
        .any
        .pop()
        .flatten()
    }

    /// Traverses a batch of closest-hit rays one at a time through the scalar reference path.
    #[deprecated(note = "use TraversalEngine::trace(&TraceRequest::closest_hit(..), \
                         &ExecPolicy::scalar())")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    pub fn closest_hits(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &[Ray],
    ) -> Vec<Option<TraversalHit>> {
        self.trace(
            &TraceRequest::closest_hit_flat(bvh, triangles, rays),
            &ExecPolicy::scalar(),
        )
        .into_closest()
    }

    /// Runs the any-hit query over a batch of rays one at a time through the scalar reference
    /// path.
    #[deprecated(note = "use TraversalEngine::trace(&TraceRequest::any_hit(..), \
                         &ExecPolicy::scalar())")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    pub fn any_hits(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &[Ray],
    ) -> Vec<Option<TraversalHit>> {
        self.trace(
            &TraceRequest::any_hit_flat(bvh, triangles, rays),
            &ExecPolicy::scalar(),
        )
        .into_any()
    }

    /// Traces a closest-hit ray stream wavefront-style.
    #[deprecated(note = "use TraversalEngine::trace(&TraceRequest::closest_hit(..), \
                         &ExecPolicy::wavefront())")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    pub fn closest_hits_wavefront(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &[Ray],
    ) -> Vec<Option<TraversalHit>> {
        self.trace(
            &TraceRequest::closest_hit_flat(bvh, triangles, rays),
            &ExecPolicy::wavefront(),
        )
        .into_closest()
    }

    /// Runs the any-hit query over a ray stream wavefront-style.
    #[deprecated(note = "use TraversalEngine::trace(&TraceRequest::any_hit(..), \
                         &ExecPolicy::wavefront())")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    pub fn any_hits_wavefront(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &[Ray],
    ) -> Vec<Option<TraversalHit>> {
        self.trace(
            &TraceRequest::any_hit_flat(bvh, triangles, rays),
            &ExecPolicy::wavefront(),
        )
        .into_any()
    }

    /// Traces a closest-hit stream and an any-hit stream fused in the same bulk passes.
    #[deprecated(note = "use TraversalEngine::trace(&TraceRequest::pair(..), \
                         &ExecPolicy::fused())")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    pub fn trace_fused(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        closest_rays: &[Ray],
        any_rays: &[Ray],
    ) -> (Vec<Option<TraversalHit>>, Vec<Option<TraversalHit>>) {
        let output = self.trace(
            &TraceRequest::pair_flat(bvh, triangles, closest_rays, any_rays),
            &ExecPolicy::fused(),
        );
        (output.closest, output.any)
    }

    /// Traces a structure-of-arrays [`RayPacket`] closest-hit stream wavefront-style.
    #[deprecated(note = "unpack the packet (RayPacket::to_rays) and use \
                         TraversalEngine::trace(&TraceRequest::closest_hit(..), ..)")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    pub fn closest_hits_stream(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &RayPacket,
    ) -> Vec<Option<TraversalHit>> {
        // Materialise into a pooled buffer: the wavefront hot loop reads each ray many times
        // (once per beat), so a one-off sequential unpack into reused storage beats per-beat
        // SoA gathers, and after the first call the packet frontend allocates nothing.
        let mut unpacked = core::mem::take(&mut self.ray_scratch);
        unpacked.clear();
        unpacked.extend(rays.iter());
        let hits = self.wavefront_closest_hits(SceneView::Flat { bvh, triangles }, &unpacked);
        self.ray_scratch = unpacked;
        hits
    }

    /// Traces a structure-of-arrays [`RayPacket`] any-hit stream wavefront-style.
    #[deprecated(note = "unpack the packet (RayPacket::to_rays) and use \
                         TraversalEngine::trace(&TraceRequest::any_hit(..), ..)")]
    #[allow(deprecated)] // the shim body calls sibling deprecated constructors
    pub fn any_hits_stream(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &RayPacket,
    ) -> Vec<Option<TraversalHit>> {
        let mut unpacked = core::mem::take(&mut self.ray_scratch);
        unpacked.clear();
        unpacked.extend(rays.iter());
        let hits = self.wavefront_any_hits(SceneView::Flat { bvh, triangles }, &unpacked);
        self.ray_scratch = unpacked;
        hits
    }

    fn tag(&mut self) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        tag
    }

    #[cfg(test)]
    fn work_pool_len(&self) -> usize {
        self.scheduler.pooled_states()
    }
}

/// Applies one triangle-beat result to a ray's best hit, honouring the ray extent and the
/// closest-so-far tie-breaking (strictly closer wins, so the first-tested primitive keeps ties).
pub(crate) fn record_triangle_hit(
    best: &mut Option<TraversalHit>,
    result: &rayflex_core::TriangleResult,
    prim: usize,
    t_beg: f32,
    t_end: f32,
) {
    if result.hit {
        let t = result.distance();
        if t >= t_beg && t <= t_end && best.is_none_or(|b| t < b.t) {
            *best = Some(TraversalHit { primitive: prim, t });
        }
    }
}

/// Pushes the hit children of one box-beat result onto a traversal stack in reverse traversal
/// order (so the closest child pops first), pruning children farther than the best hit so far
/// (pass `None` for query kinds that never prune).  Children are encoded as handles in `ctx` —
/// the context the tested node lives in (children never cross a structure boundary; TLAS leaves
/// do the descent instead).
pub(crate) fn push_hit_children(
    stack: &mut Vec<u64>,
    result: &rayflex_core::BoxResult,
    children: &[Option<usize>; 4],
    ctx: u32,
    best: Option<&TraversalHit>,
) {
    for &slot in result.traversal_order.iter().rev() {
        let slot = usize::from(slot);
        if !result.hit[slot] {
            continue;
        }
        if let Some(best_hit) = best {
            if result.t_entry[slot] > best_hit.t {
                continue;
            }
        }
        if let Some(child) = children[slot] {
            stack.push(handle(ctx, child));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::{golden, Vec3};

    /// A little wall of front-facing triangles at varying depths.
    fn wall() -> Vec<Triangle> {
        (0..32)
            .map(|i| {
                let x = (i % 8) as f32 * 2.0 - 8.0;
                let y = (i / 8) as f32 * 2.0 - 4.0;
                let z = 10.0 + (i % 3) as f32;
                Triangle::new(
                    Vec3::new(x, y, z),
                    Vec3::new(x + 1.8, y, z),
                    Vec3::new(x + 0.9, y + 1.8, z),
                )
            })
            .collect()
    }

    fn wall_rays(n: usize) -> Vec<Ray> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f32 - 5.0;
                let y = (i / 10) as f32 - 3.0;
                Ray::new(Vec3::new(x, y, 0.0), Vec3::new(0.03, -0.01, 1.0))
            })
            .collect()
    }

    /// Brute-force reference: closest golden hit over all triangles.
    fn brute_force(triangles: &[Triangle], ray: &Ray) -> Option<TraversalHit> {
        let mut best: Option<TraversalHit> = None;
        for (i, tri) in triangles.iter().enumerate() {
            let hit = golden::watertight::ray_triangle(ray, tri);
            if hit.hit {
                let t = hit.distance();
                if t >= ray.t_beg && t <= ray.t_end && best.is_none_or(|b| t < b.t) {
                    best = Some(TraversalHit { primitive: i, t });
                }
            }
        }
        best
    }

    #[test]
    fn traversal_agrees_with_brute_force() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let rays = wall_rays(60);
        let mut engine = TraversalEngine::baseline();
        let hits = engine
            .trace(
                &TraceRequest::closest_hit(&scene, &rays),
                &ExecPolicy::scalar(),
            )
            .into_closest();
        for (i, (ray, got)) in rays.iter().zip(&hits).enumerate() {
            let expected = brute_force(&triangles, ray);
            match (expected, got) {
                (None, None) => {}
                (Some(e), Some(g)) => {
                    assert_eq!(e.primitive, g.primitive, "ray {i}");
                    assert_eq!(e.t.to_bits(), g.t.to_bits(), "ray {i}");
                }
                other => panic!("ray {i}: mismatch {other:?}"),
            }
        }
        let stats = engine.stats();
        assert!(stats.box_ops > 0);
        assert!(stats.triangle_ops > 0);
        assert_eq!(stats.rays, 60);
    }

    #[test]
    fn pruning_keeps_the_traversal_cheaper_than_brute_force() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let mut engine = TraversalEngine::baseline();
        let rays = [Ray::new(Vec3::new(0.5, 0.5, 0.0), Vec3::new(0.0, 0.0, 1.0))];
        let _ = engine.trace(
            &TraceRequest::closest_hit(&scene, &rays),
            &ExecPolicy::scalar(),
        );
        // A single ray should not have to test every triangle in the scene.
        assert!(engine.stats().triangle_ops < triangles.len() as u64);
    }

    #[test]
    fn missing_rays_return_none() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let mut engine = TraversalEngine::baseline();
        let rays = [Ray::new(
            Vec3::new(100.0, 100.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        )];
        let output = engine.trace(
            &TraceRequest::pair(&scene, &rays, &rays),
            &ExecPolicy::scalar(),
        );
        assert!(output.closest[0].is_none());
        assert!(output.any[0].is_none());
        engine.reset_stats();
        assert_eq!(engine.stats().rays, 0);
    }

    #[test]
    fn batch_traversal_matches_individual_calls() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let rays: Vec<Ray> = (0..10)
            .map(|i| {
                Ray::new(
                    Vec3::new(i as f32 - 5.0, 0.2, 0.0),
                    Vec3::new(0.0, 0.0, 1.0),
                )
            })
            .collect();
        let mut batch_engine = TraversalEngine::baseline();
        let batch = batch_engine
            .trace(
                &TraceRequest::closest_hit(&scene, &rays),
                &ExecPolicy::scalar(),
            )
            .into_closest();
        let mut single_engine = TraversalEngine::baseline();
        for (ray, expected) in rays.iter().zip(&batch) {
            let got = single_engine
                .trace(
                    &TraceRequest::closest_hit(&scene, core::slice::from_ref(ray)),
                    &ExecPolicy::scalar(),
                )
                .into_closest();
            assert_eq!(got[0], *expected);
        }
    }

    #[test]
    fn every_exec_mode_matches_the_scalar_reference_bit_for_bit() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let closest_rays = wall_rays(60);
        let any_rays: Vec<Ray> = wall_rays(40)
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let t_end = if i % 3 == 0 { 5.0 } else { 40.0 };
                Ray::with_extent(r.origin, r.dir, 1e-3, t_end)
            })
            .collect();
        let request = TraceRequest::pair(&scene, &closest_rays, &any_rays);

        let mut reference = TraversalEngine::baseline();
        let expected = reference.trace(&request, &ExecPolicy::scalar());

        for policy in [
            ExecPolicy::wavefront(),
            ExecPolicy::parallel(3),
            ExecPolicy::fused(),
            ExecPolicy::fused().with_beat_budget(1),
            ExecPolicy::fused().with_beat_budget(4),
        ] {
            let mut engine = TraversalEngine::baseline();
            let got = engine.trace(&request, &policy);
            assert_eq!(got, expected, "{} diverged", policy.mode);
            assert_eq!(
                engine.stats(),
                reference.stats(),
                "{} stats diverged",
                policy.mode
            );
        }
    }

    #[test]
    fn a_beat_budget_changes_fused_pass_counts_but_not_hits() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let closest_rays = wall_rays(40);
        let any_rays = wall_rays(25);
        let request = TraceRequest::pair(&scene, &closest_rays, &any_rays);

        let mut unlimited = TraversalEngine::baseline();
        let free = unlimited.trace(&request, &ExecPolicy::fused());
        let free_passes = unlimited.last_fused_passes();

        let mut strict = TraversalEngine::baseline();
        let budgeted = strict.trace(&request, &ExecPolicy::fused().with_beat_budget(1));
        let strict_passes = strict.last_fused_passes();

        assert_eq!(free, budgeted, "a beat budget must not change any hit");
        assert_eq!(unlimited.stats(), strict.stats());
        assert!(
            strict_passes > free_passes,
            "strict round-robin admission needs more passes ({strict_passes} vs {free_passes})"
        );
    }

    #[test]
    fn any_hit_short_rays_cannot_be_occluded() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        // Shadow-style rays: finite extents, some reaching the wall, some stopping short.
        let rays: Vec<Ray> = wall_rays(40)
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let t_end = if i % 3 == 0 { 5.0 } else { 40.0 };
                Ray::with_extent(r.origin, r.dir, 1e-3, t_end)
            })
            .collect();
        let mut engine = TraversalEngine::baseline();
        let got = engine
            .trace(
                &TraceRequest::any_hit(&scene, &rays),
                &ExecPolicy::wavefront(),
            )
            .into_any();
        for (i, hit) in got.iter().enumerate() {
            if i % 3 == 0 {
                assert!(hit.is_none(), "short ray {i} cannot reach the wall");
            }
        }
        assert!(got.iter().any(Option::is_some), "some rays are occluded");
    }

    #[test]
    fn any_hit_terminates_early_compared_to_closest_hit() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let rays = wall_rays(40);
        let mut closest = TraversalEngine::baseline();
        let closest_hits = closest
            .trace(
                &TraceRequest::closest_hit(&scene, &rays),
                &ExecPolicy::wavefront(),
            )
            .into_closest();
        let mut any = TraversalEngine::baseline();
        let any_hits = any
            .trace(
                &TraceRequest::any_hit(&scene, &rays),
                &ExecPolicy::wavefront(),
            )
            .into_any();
        // The verdicts agree even though the reported hit may differ.
        for (i, (c, a)) in closest_hits.iter().zip(&any_hits).enumerate() {
            assert_eq!(c.is_some(), a.is_some(), "ray {i}");
        }
        assert!(
            any.stats().total_ops() <= closest.stats().total_ops(),
            "first-hit termination can only reduce the beat count"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_the_policy_entry_point() {
        let triangles = wall();
        let bvh = Bvh4::build(&triangles);
        let scene = Scene::from_parts(bvh.clone(), triangles.clone());
        let rays = wall_rays(30);
        let packet = RayPacket::from_rays(&rays);

        let mut policy_engine = TraversalEngine::baseline();
        let expected = policy_engine.trace(
            &TraceRequest::pair(&scene, &rays, &rays),
            &ExecPolicy::wavefront(),
        );

        let mut shim_engine = TraversalEngine::baseline();
        assert_eq!(
            shim_engine.closest_hits_wavefront(&bvh, &triangles, &rays),
            expected.closest
        );
        assert_eq!(
            shim_engine.any_hits_wavefront(&bvh, &triangles, &rays),
            expected.any
        );
        assert_eq!(policy_engine.stats(), shim_engine.stats());

        // The packet shims unpack and delegate too.
        let mut packet_engine = TraversalEngine::baseline();
        assert_eq!(
            packet_engine.closest_hits_stream(&bvh, &triangles, &packet),
            expected.closest
        );
        assert_eq!(
            packet_engine.any_hits_stream(&bvh, &triangles, &packet),
            expected.any
        );

        // Scalar and fused shims agree with their policies as well.
        let mut scalar_shim = TraversalEngine::baseline();
        assert_eq!(
            scalar_shim.closest_hits(&bvh, &triangles, &rays),
            expected.closest
        );
        assert_eq!(
            scalar_shim.closest_hit(&bvh, &triangles, &rays[0]),
            expected.closest[0]
        );
        assert_eq!(
            scalar_shim.any_hit(&bvh, &triangles, &rays[0]),
            expected.any[0]
        );
        let mut fused_shim = TraversalEngine::baseline();
        let (fc, fa) = fused_shim.trace_fused(&bvh, &triangles, &rays, &rays);
        assert_eq!(fc, expected.closest);
        assert_eq!(fa, expected.any);

        // The flat request constructors trace identically to the Scene-backed ones.
        let mut flat_engine = TraversalEngine::baseline();
        let flat = flat_engine.trace(
            &TraceRequest::pair_flat(&bvh, &triangles, &rays, &rays),
            &ExecPolicy::wavefront(),
        );
        assert_eq!(flat, expected);
        assert_eq!(flat_engine.stats(), policy_engine.stats());
    }

    #[test]
    fn wavefront_state_pools_are_reused_across_calls() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let rays = wall_rays(20);
        let request = TraceRequest::closest_hit(&scene, &rays);
        let mut engine = TraversalEngine::baseline();
        let first = engine.trace(&request, &ExecPolicy::wavefront());
        assert_eq!(engine.work_pool_len(), rays.len());
        let second = engine.trace(&request, &ExecPolicy::wavefront());
        assert_eq!(first, second);
        assert_eq!(
            engine.work_pool_len(),
            rays.len(),
            "states returned to the pool"
        );
        // The any-hit query shares the same pool.
        let _ = engine.trace(
            &TraceRequest::any_hit(&scene, &rays),
            &ExecPolicy::wavefront(),
        );
        assert_eq!(engine.work_pool_len(), rays.len());
    }

    #[test]
    fn fused_closest_and_any_hit_streams_match_sequential_scheduling() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let closest_rays = wall_rays(40);
        let any_rays: Vec<Ray> = wall_rays(25)
            .into_iter()
            .map(|r| Ray::with_extent(r.origin, r.dir, 1e-3, 40.0))
            .collect();

        let mut sequential = TraversalEngine::baseline();
        let expected = sequential.trace(
            &TraceRequest::pair(&scene, &closest_rays, &any_rays),
            &ExecPolicy::wavefront(),
        );

        let mut fused = TraversalEngine::baseline();
        let got = fused.trace(
            &TraceRequest::pair(&scene, &closest_rays, &any_rays),
            &ExecPolicy::fused(),
        );
        assert_eq!(got, expected);
        assert_eq!(fused.stats(), sequential.stats(), "identical merged stats");

        // The fusion is observable: both kinds appear in the per-kind mix, and at least one
        // bulk pass carried beats of both.
        let mix = fused.beat_mix();
        assert!(mix.kind_total(rayflex_core::QueryKind::ClosestHit) > 0);
        assert!(mix.kind_total(rayflex_core::QueryKind::AnyHit) > 0);
        assert!(mix.fused_passes() > 0, "streams shared at least one pass");
        assert_eq!(mix.total(), sequential.beat_mix().total());
    }

    #[test]
    fn traversal_stats_merge_sums_every_field() {
        // The parallel mode's reduction: shard totals merge by plain summation, order-free,
        // with the all-zero set as identity.
        let a = TraversalStats {
            box_ops: 3,
            triangle_ops: 5,
            nodes_visited: 7,
            leaves_visited: 2,
            rays: 11,
            shard_fallbacks: 1,
            tlas_box_ops: 2,
            instances_visited: 1,
        };
        let b = TraversalStats {
            box_ops: 10,
            triangle_ops: 20,
            nodes_visited: 30,
            leaves_visited: 40,
            rays: 50,
            shard_fallbacks: 0,
            tlas_box_ops: 5,
            instances_visited: 9,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(
            ab,
            TraversalStats {
                box_ops: 13,
                triangle_ops: 25,
                nodes_visited: 37,
                leaves_visited: 42,
                rays: 61,
                shard_fallbacks: 1,
                tlas_box_ops: 7,
                instances_visited: 10,
            }
        );
        let mut identity = ab;
        identity.merge(&TraversalStats::default());
        assert_eq!(identity, ab, "the zero set is the merge identity");
        assert_eq!(ab.merged(&TraversalStats::default()), ab);
        assert_eq!(ab.total_ops(), 13 + 25);
    }

    #[test]
    fn parallel_shard_stats_merge_to_the_single_engine_totals() {
        // Trace one stream whole, then in two halves on separate engines, and merge the halves:
        // the merged statistics must equal the whole-stream run exactly (the invariant the
        // Parallel mode's per-shard reduction relies on).
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let rays = wall_rays(48);

        let mut whole = TraversalEngine::baseline();
        let _ = whole.trace(
            &TraceRequest::closest_hit(&scene, &rays),
            &ExecPolicy::wavefront(),
        );

        let mut merged = TraversalStats::default();
        for shard in rays.chunks(rays.len() / 2) {
            let mut engine = TraversalEngine::baseline();
            let _ = engine.trace(
                &TraceRequest::closest_hit(&scene, shard),
                &ExecPolicy::wavefront(),
            );
            merged.merge(&engine.stats());
        }
        assert_eq!(merged, whole.stats());
    }

    #[test]
    fn beat_mix_reflects_the_traversal_workload() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let rays = wall_rays(10);
        let mut engine = TraversalEngine::baseline();
        let _ = engine.trace(
            &TraceRequest::closest_hit(&scene, &rays),
            &ExecPolicy::wavefront(),
        );
        let mix = engine.beat_mix();
        assert_eq!(
            mix.count(rayflex_core::Opcode::RayBox),
            engine.stats().box_ops
        );
        assert_eq!(
            mix.count(rayflex_core::Opcode::RayTriangle),
            engine.stats().triangle_ops
        );
        assert_eq!(mix.total(), engine.stats().total_ops());
    }

    #[test]
    fn try_trace_rejects_bad_scenes_and_rays_before_any_beat() {
        use crate::QueryError;
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let mut engine = TraversalEngine::baseline();

        // A NaN vertex in the scene: InvalidScene, no beats issued.
        let mut bad_triangles = triangles.clone();
        bad_triangles[3].v1.y = f32::NAN;
        let bad_scene = Scene::from_parts(Bvh4::build(&triangles), bad_triangles);
        let err = engine
            .try_trace(
                &TraceRequest::closest_hit(&bad_scene, &wall_rays(4)),
                &ExecPolicy::wavefront(),
            )
            .unwrap_err();
        assert!(matches!(err, QueryError::InvalidScene { .. }), "{err}");
        assert_eq!(engine.stats(), TraversalStats::default());

        // A corrupt ray: InvalidRequest naming the stream.
        let mut rays = wall_rays(4);
        rays[2].dir = Vec3::new(0.0, 0.0, 0.0);
        let err = engine
            .try_trace(
                &TraceRequest::any_hit(&scene, &rays),
                &ExecPolicy::wavefront(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("any-hit"), "{err}");
        assert_eq!(engine.stats(), TraversalStats::default());
    }

    #[test]
    fn try_trace_without_a_cap_matches_trace_in_every_mode() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let closest = wall_rays(40);
        let any = wall_rays(25);
        let request = TraceRequest::pair(&scene, &closest, &any);
        for policy in [
            ExecPolicy::scalar(),
            ExecPolicy::wavefront(),
            ExecPolicy::fused(),
            ExecPolicy::parallel(3),
        ] {
            let mut plain = TraversalEngine::baseline();
            let expected = plain.trace(&request, &policy);
            let mut hardened = TraversalEngine::baseline();
            let outcome = hardened.try_trace(&request, &policy).unwrap();
            assert!(outcome.is_complete(), "{}", policy.mode);
            assert_eq!(outcome.into_output(), expected, "{}", policy.mode);
            assert_eq!(hardened.stats(), plain.stats(), "{}", policy.mode);
        }
    }

    #[test]
    fn a_capped_trace_returns_a_bit_identical_completed_prefix() {
        use crate::{QueryError, QueryOutcome};
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let closest = wall_rays(40);
        let any = wall_rays(25);
        let request = TraceRequest::pair(&scene, &closest, &any);
        let mut reference = TraversalEngine::baseline();
        let expected = reference.trace(&request, &ExecPolicy::scalar());

        for base in [
            ExecPolicy::scalar(),
            ExecPolicy::wavefront(),
            ExecPolicy::fused(),
            ExecPolicy::parallel(3),
        ] {
            // A one-beat budget cannot retire a single ray of this scene.
            let starved = base.with_max_total_beats(1);
            let mut engine = TraversalEngine::baseline();
            let err = engine.try_trace(&request, &starved).unwrap_err();
            assert!(
                matches!(err, QueryError::BudgetExhausted { max_total_beats: 1 }),
                "{}: {err}",
                base.mode
            );

            // A mid-sized budget yields a partial whose prefix matches the uncapped run.  The
            // first ten rays miss the scene entirely (one root-box beat each, retiring in the
            // first pass); the rest keep traversing, so a 45-beat cap cancels after the second
            // pass with exactly that ten-ray prefix retired — in every mode, since all modes
            // issue one beat per active ray per pass.
            let mut mixed = wall_rays(40);
            for ray in mixed.iter_mut().take(10) {
                *ray = Ray::new(Vec3::new(100.0, 100.0, 0.0), Vec3::new(0.0, 0.0, -1.0));
            }
            let mixed_request = TraceRequest::closest_hit(&scene, &mixed);
            let mut mixed_reference = TraversalEngine::baseline();
            let mixed_expected = mixed_reference.trace(&mixed_request, &ExecPolicy::scalar());
            let capped = base.with_max_total_beats(45);
            let mut engine = TraversalEngine::baseline();
            match engine.try_trace(&mixed_request, &capped).unwrap() {
                QueryOutcome::Partial(partial) => {
                    let got = &partial.output;
                    assert_eq!(partial.completed, 10, "{}", base.mode);
                    assert_eq!(partial.total, mixed.len());
                    assert!(partial.beats_spent >= 45, "cap fires only once exceeded");
                    assert_eq!(
                        got.closest[..],
                        mixed_expected.closest[..got.closest.len()],
                        "{}: closest prefix diverged",
                        base.mode
                    );
                }
                QueryOutcome::Complete(_) => {
                    panic!("{}: 45 beats must not finish this request", base.mode)
                }
            }

            // A generous budget completes and matches the plain path exactly.
            let generous = base.with_max_total_beats(u64::MAX);
            let mut engine = TraversalEngine::baseline();
            let outcome = engine.try_trace(&request, &generous).unwrap();
            assert!(outcome.is_complete(), "{}", base.mode);
            assert_eq!(outcome.into_output(), expected, "{}", base.mode);
        }
    }

    #[test]
    fn request_accessors_expose_the_streams() {
        let triangles = wall();
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles.clone());
        let closest = wall_rays(3);
        let any = wall_rays(2);
        let request = TraceRequest::pair(&scene, &closest, &any);
        assert_eq!(request.closest_rays().len(), 3);
        assert_eq!(request.any_rays().len(), 2);
        assert_eq!(request.triangle_count(), triangles.len());
        assert!(TraceRequest::closest_hit(&scene, &closest)
            .any_rays()
            .is_empty());
        assert!(TraceRequest::any_hit(&scene, &any)
            .closest_rays()
            .is_empty());
    }
}
