//! Structured errors, scene validation and typed partial results — the failure model of the
//! hardened execution layer.
//!
//! Every engine's plain entry point ([`TraversalEngine::trace`](crate::TraversalEngine::trace),
//! [`Renderer::render`](crate::Renderer::render), …) keeps its original contract: well-formed
//! input in, completed output out, panics on programmer error.  The `try_*` variants added
//! alongside them fail *structured* instead:
//!
//! * malformed scenes and requests are rejected up front by the [`SceneValidator`] and the
//!   per-request guards ([`QueryError::InvalidScene`], [`QueryError::InvalidRequest`]);
//! * a run capped by [`ExecPolicy::max_total_beats`](crate::ExecPolicy::max_total_beats)
//!   cancels cooperatively at a pass boundary and returns a typed partial result
//!   ([`QueryOutcome::Partial`]) whose completed prefix is bit-identical to the uncapped run —
//!   or [`QueryError::DeadlineExceeded`] where the query's output is a global reduction that
//!   has no meaningful prefix (a frame, a top-k set);
//! * a capped run that completes *nothing* fails with [`QueryError::BudgetExhausted`];
//! * a worker shard that panics twice — once on the parallel path and once on its one-shot
//!   [`ScalarReference`](crate::ExecMode::ScalarReference) retry — surfaces as
//!   [`QueryError::ShardPanicked`] instead of a propagated panic.
//!
//! The whole taxonomy is exercised by the chaos harness (`rtunit/tests/proptest_chaos.rs`),
//! which injects deterministic faults ([`crate::fault`]) and asserts that every `try_*` entry
//! point returns either a structured error or a bit-identical recovered result — never a panic,
//! never a silently wrong answer.

use std::fmt;

use rayflex_core::{guard, BeatMix};
use rayflex_geometry::{Aabb, Ray, Triangle};

use crate::bvh::{Bvh4, Bvh4Node};
use crate::scene::{InstancedScene, Scene, SceneView};

/// A structured failure of a `try_*` query entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The indexed scene is malformed: a NaN/Inf vertex, a degenerate triangle, or a BVH whose
    /// topology or bounds are inconsistent (see [`SceneValidator`]).
    InvalidScene {
        /// What the validator found.
        reason: String,
    },
    /// The request itself is malformed: a NaN/Inf or zero-direction ray, mismatched vector
    /// dimensions, a non-finite query point or radius.
    InvalidRequest {
        /// What the request guard found.
        reason: String,
    },
    /// The run crossed [`ExecPolicy::max_total_beats`](crate::ExecPolicy::max_total_beats) and
    /// the query's output is a global reduction with no meaningful completed prefix (a rendered
    /// frame, a top-k set, a nearest-neighbour search).
    DeadlineExceeded {
        /// Beats the run had spent when it cancelled.
        beats_spent: u64,
        /// The configured deadline.
        max_total_beats: u64,
    },
    /// A parallel worker shard panicked, and so did its one-shot scalar-reference retry.  The
    /// single-panic case never surfaces: it is recovered transparently (recorded in
    /// [`TraversalStats::shard_fallbacks`](crate::TraversalStats::shard_fallbacks)).
    ShardPanicked {
        /// Index of the shard that failed twice.
        shard: usize,
    },
    /// A capped run cancelled before completing even one item — the deadline is too small for
    /// this workload to make observable progress.
    BudgetExhausted {
        /// The configured deadline.
        max_total_beats: u64,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidScene { reason } => write!(f, "invalid scene: {reason}"),
            QueryError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            QueryError::DeadlineExceeded {
                beats_spent,
                max_total_beats,
            } => write!(
                f,
                "deadline exceeded: {beats_spent} beats spent against a budget of \
                 {max_total_beats}"
            ),
            QueryError::ShardPanicked { shard } => write!(
                f,
                "shard {shard} panicked and its scalar-reference retry failed"
            ),
            QueryError::BudgetExhausted { max_total_beats } => write!(
                f,
                "budget exhausted: no item completed within {max_total_beats} beats"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// The typed partial result of a deadline-capped run: the outputs of the longest
/// fully-completed item prefix, plus how far the run got.
///
/// The prefix discipline is what makes partial results safe to consume: an item either appears
/// with its **complete, bit-identical** output (equal to what the uncapped run would return for
/// it — pinned by the chaos harness) or it does not appear at all.  Items that happened to
/// finish beyond the first still-in-flight item are discarded rather than surfaced out of
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialResult<T> {
    /// The completed prefix of the output (for a paired request, each stream's own prefix).
    pub output: T,
    /// Total items completed across all streams of the request.
    pub completed: usize,
    /// Total items the request carried.
    pub total: usize,
    /// Datapath beats the run spent before cancelling (may overshoot the deadline by the pass
    /// in flight when it crossed the line — cancellation is cooperative, at pass boundaries).
    pub beats_spent: u64,
    /// The engine's per-kind × per-opcode beat attribution at cancellation — the per-stream
    /// progress report of the cancelled run.
    pub progress: BeatMix,
}

/// Either a complete output or a typed partial result — what a `try_*` entry point yields when
/// the request is valid but a deadline may have fired.
// The size skew against `Complete(())` is accepted: boxing `PartialResult` would put the
// common cancelled-run path behind an allocation for no measurable win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome<T> {
    /// The run finished every item; the output equals the plain entry point's.
    Complete(T),
    /// The run was cancelled at a pass boundary by
    /// [`ExecPolicy::max_total_beats`](crate::ExecPolicy::max_total_beats).
    Partial(PartialResult<T>),
}

impl<T> QueryOutcome<T> {
    /// `true` for [`QueryOutcome::Complete`].
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, QueryOutcome::Complete(_))
    }

    /// The output — complete, or the completed prefix of a partial run.
    #[must_use]
    pub fn output(&self) -> &T {
        match self {
            QueryOutcome::Complete(output) => output,
            QueryOutcome::Partial(partial) => &partial.output,
        }
    }

    /// Consumes the outcome into its output (the completed prefix when partial).
    #[must_use]
    pub fn into_output(self) -> T {
        match self {
            QueryOutcome::Complete(output) => output,
            QueryOutcome::Partial(partial) => partial.output,
        }
    }

    /// The partial-result report, if the run was cancelled.
    #[must_use]
    pub fn partial(&self) -> Option<&PartialResult<T>> {
        match self {
            QueryOutcome::Complete(_) => None,
            QueryOutcome::Partial(partial) => Some(partial),
        }
    }
}

/// Validates an indexed scene — triangles plus the [`Bvh4`] built over them — before a `try_*`
/// run accepts it.
///
/// Three families of checks, in order:
///
/// 1. **Vertices** — every triangle vertex finite (no NaN/Inf) and no triangle degenerate
///    (zero area);
/// 2. **BVH topology** — child indices in range, every non-root node referenced exactly once
///    (no cycles, no sharing, no orphans), leaf ranges inside the primitive-index table, and
///    the table a permutation of the primitive set;
/// 3. **BVH bounds** — every internal node's stored child bounds contain the child subtree's
///    primitives, and the scene bounds contain everything (the invariant traversal pruning
///    relies on: a hit can never hide outside the bounds that prune it).
///
/// The plain entry points skip validation entirely — it costs O(scene) per call, which the
/// hot paths must not pay — so a server validates once at scene admission and traces with the
/// plain methods thereafter, or uses `try_*` end to end.
#[derive(Debug, Clone, Copy, Default)]
pub struct SceneValidator;

impl SceneValidator {
    /// Runs every check against the scene.  The first failure is returned.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidScene`] naming the first malformed vertex, triangle, node or bound.
    pub fn validate(bvh: &Bvh4, triangles: &[Triangle]) -> Result<(), QueryError> {
        Self::validate_triangles(triangles)?;
        Self::validate_bvh(bvh, triangles)
    }

    /// Runs every check against a [`Scene`], either representation.  Flat scenes get exactly
    /// [`SceneValidator::validate`]'s checks.  Instanced scenes are checked level by level:
    ///
    /// 1. the scene must carry at least one instance (an empty TLAS indexes nothing);
    /// 2. every BLAS passes [`SceneValidator::validate`] over its own mesh (failures are
    ///    prefixed with the BLAS index);
    /// 3. every instance placement is sound — its BLAS index in range, its transform finite
    ///    and non-singular — with the offending instance named;
    /// 4. the TLAS topology indexes the instance set exactly once each, and its stored bounds
    ///    contain the instances' recomputed world bounds (the invariant TLAS pruning relies
    ///    on).
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidScene`] naming the first malformed triangle, node, BLAS or
    /// instance.
    pub fn validate_scene(scene: &Scene) -> Result<(), QueryError> {
        Self::validate_view(scene.view())
    }

    /// Validates a ray batch up front — every component of every origin, direction and extent
    /// must be finite and no direction may be zero-length.  The `stream` label names the batch
    /// in the error (`"closest-hit"`, `"any-hit"`, …) so a server admitting requests from the
    /// wire can report which stream was malformed without tracing anything.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidRequest`] naming the first malformed ray.
    pub fn validate_rays(rays: &[Ray], stream: &str) -> Result<(), QueryError> {
        validate_rays(rays, stream)
    }

    /// [`SceneValidator::validate_scene`] over a borrowed traversal view — what the engines'
    /// `try_*` entry points call.
    pub(crate) fn validate_view(view: SceneView<'_>) -> Result<(), QueryError> {
        match view {
            SceneView::Flat { bvh, triangles } => Self::validate(bvh, triangles),
            SceneView::Instanced(scene) => Self::validate_instanced(scene),
        }
    }

    /// The instanced-representation checks behind [`SceneValidator::validate_scene`].
    fn validate_instanced(scene: &InstancedScene) -> Result<(), QueryError> {
        if scene.instances.is_empty() {
            return Err(invalid_scene(
                "instanced scene has no instances (the TLAS is empty)".into(),
            ));
        }
        for (index, mesh) in scene.blas.iter().enumerate() {
            if let Err(QueryError::InvalidScene { reason }) =
                Self::validate(mesh.bvh(), mesh.triangles())
            {
                return Err(invalid_scene(format!("BLAS {index}: {reason}")));
            }
        }
        for (index, instance) in scene.instances.iter().enumerate() {
            if instance.blas >= scene.blas.len() {
                return Err(invalid_scene(format!(
                    "instance {index} references BLAS {} outside the {}-entry BLAS list",
                    instance.blas,
                    scene.blas.len()
                )));
            }
            if !instance.transform.is_finite() {
                return Err(invalid_scene(format!(
                    "instance {index} has a non-finite transform"
                )));
            }
            if instance.transform.determinant() == 0.0 {
                return Err(invalid_scene(format!(
                    "instance {index} has a singular transform (zero determinant)"
                )));
            }
        }
        Self::validate_topology(&scene.tlas, scene.instances.len(), "instance")?;
        let world = InstancedScene::instance_bounds(&scene.blas, &scene.instances);
        let content = subtree_bounds(&scene.tlas, &|instance| world[instance]);
        Self::validate_containment(&scene.tlas, &content)
    }

    /// Checks every triangle for NaN/Inf vertices and zero area.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidScene`] naming the first offending triangle.
    pub fn validate_triangles(triangles: &[Triangle]) -> Result<(), QueryError> {
        for (index, triangle) in triangles.iter().enumerate() {
            if !guard::finite_triangle(triangle) {
                return Err(invalid_scene(format!(
                    "triangle {index} has a non-finite vertex"
                )));
            }
            if guard::degenerate_triangle(triangle) {
                return Err(invalid_scene(format!(
                    "triangle {index} is degenerate (zero area)"
                )));
            }
        }
        Ok(())
    }

    /// Checks the BVH's child-index topology and bounds containment against the primitive set.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidScene`] naming the first inconsistent node.
    pub fn validate_bvh(bvh: &Bvh4, triangles: &[Triangle]) -> Result<(), QueryError> {
        Self::validate_topology(bvh, triangles.len(), "primitive")?;
        let content = subtree_bounds(bvh, &|primitive| {
            let triangle = &triangles[primitive];
            Aabb::empty()
                .union_point(triangle.v0)
                .union_point(triangle.v1)
                .union_point(triangle.v2)
        });
        Self::validate_containment(bvh, &content)
    }

    /// The structural half of the BVH checks, shared by the flat scene check (over triangles)
    /// and the TLAS check (over instances): child indices in range, every non-root node
    /// referenced exactly once, leaf ranges inside the index table, and the table a permutation
    /// of `0..primitive_count` (`entity` names what a "primitive" is in error messages).
    fn validate_topology(
        bvh: &Bvh4,
        primitive_count: usize,
        entity: &str,
    ) -> Result<(), QueryError> {
        let nodes = bvh.nodes();
        if nodes.is_empty() {
            return Err(invalid_scene("BVH has no nodes".to_string()));
        }

        // Topology: every child index in range, every non-root node referenced exactly once.
        let mut referenced = vec![0usize; nodes.len()];
        for (index, node) in nodes.iter().enumerate() {
            if let Bvh4Node::Internal { children, .. } = node {
                for child in children.iter().flatten() {
                    if *child >= nodes.len() {
                        return Err(invalid_scene(format!(
                            "node {index} references child {child} outside the {}-node table",
                            nodes.len()
                        )));
                    }
                    referenced[*child] += 1;
                }
            }
        }
        if referenced[bvh.root()] != 0 {
            return Err(invalid_scene(
                "the root node is referenced as a child".into(),
            ));
        }
        for (index, &count) in referenced.iter().enumerate() {
            if index != bvh.root() && count != 1 {
                return Err(invalid_scene(format!(
                    "node {index} is referenced {count} times (expected exactly once)"
                )));
            }
        }

        // Leaves: ranges inside the index table, the table a permutation of the primitives.
        let mut seen = vec![0usize; primitive_count];
        for (index, node) in nodes.iter().enumerate() {
            if let Bvh4Node::Leaf { first, count } = node {
                if first + count > bvh.primitive_indices().len() {
                    return Err(invalid_scene(format!(
                        "leaf {index} spans [{first}, {}) outside the index table",
                        first + count
                    )));
                }
                for &primitive in bvh.leaf_primitives(index) {
                    if primitive >= primitive_count {
                        return Err(invalid_scene(format!(
                            "leaf {index} references {entity} {primitive} outside the scene"
                        )));
                    }
                    seen[primitive] += 1;
                }
            }
        }
        for (primitive, &count) in seen.iter().enumerate() {
            if count != 1 {
                return Err(invalid_scene(format!(
                    "{entity} {primitive} appears {count} times across leaves (expected once)"
                )));
            }
        }
        Ok(())
    }

    /// The bounds half of the BVH checks: each stored child bound contains its child subtree's
    /// content, and the scene bounds contain the root's.  `content` comes from
    /// [`subtree_bounds`]; call only after [`SceneValidator::validate_topology`] passed (the
    /// topology checks guarantee the reachable structure is a tree).
    fn validate_containment(bvh: &Bvh4, content: &[Aabb]) -> Result<(), QueryError> {
        for (index, node) in bvh.nodes().iter().enumerate() {
            if let Bvh4Node::Internal {
                children,
                child_bounds,
            } = node
            {
                for (slot, child) in children.iter().enumerate() {
                    let Some(child) = child else { continue };
                    if !guard::aabb_contains_aabb(&child_bounds[slot], &content[*child]) {
                        return Err(invalid_scene(format!(
                            "node {index} slot {slot}: stored child bounds do not contain \
                             child {child}'s subtree"
                        )));
                    }
                }
            }
        }
        if !guard::aabb_contains_aabb(&bvh.scene_bounds(), &content[bvh.root()]) {
            return Err(invalid_scene(
                "scene bounds do not contain the root subtree".into(),
            ));
        }
        Ok(())
    }
}

/// Content bounds of every node's subtree (the union of its primitives' bounds, where
/// `primitive_bounds` supplies one primitive's bounds — a triangle's vertices for a mesh BVH,
/// an instance's world box for a TLAS), computed with an explicit post-order stack.  Call only
/// after the topology checks passed.
fn subtree_bounds(bvh: &Bvh4, primitive_bounds: &dyn Fn(usize) -> Aabb) -> Vec<Aabb> {
    let nodes = bvh.nodes();
    let mut content = vec![Aabb::empty(); nodes.len()];
    // Post-order: push (node, false) to expand, (node, true) to reduce.
    let mut stack = vec![(bvh.root(), false)];
    while let Some((index, expanded)) = stack.pop() {
        match &nodes[index] {
            Bvh4Node::Leaf { .. } => {
                let mut bounds = Aabb::empty();
                for &primitive in bvh.leaf_primitives(index) {
                    bounds = bounds.union(&primitive_bounds(primitive));
                }
                content[index] = bounds;
            }
            Bvh4Node::Internal { children, .. } => {
                if expanded {
                    let mut bounds = Aabb::empty();
                    for child in children.iter().flatten() {
                        bounds = bounds.union(&content[*child]);
                    }
                    content[index] = bounds;
                } else {
                    stack.push((index, true));
                    for child in children.iter().flatten() {
                        stack.push((*child, false));
                    }
                }
            }
        }
    }
    content
}

fn invalid_scene(reason: String) -> QueryError {
    QueryError::InvalidScene { reason }
}

/// Validates one ray stream of a request.
///
/// # Errors
///
/// [`QueryError::InvalidRequest`] naming the first untraceable ray (NaN/Inf components, zero
/// direction, NaN extent).
pub(crate) fn validate_rays(rays: &[Ray], stream: &str) -> Result<(), QueryError> {
    for (index, ray) in rays.iter().enumerate() {
        if !guard::finite_ray(ray) {
            return Err(QueryError::InvalidRequest {
                reason: format!(
                    "{stream} ray {index} is not traceable (non-finite component, zero \
                     direction or NaN extent)"
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::Vec3;

    fn quad() -> Vec<Triangle> {
        vec![
            Triangle::new(
                Vec3::new(-1.0, 0.0, -1.0),
                Vec3::new(1.0, 0.0, -1.0),
                Vec3::new(1.0, 0.0, 1.0),
            ),
            Triangle::new(
                Vec3::new(-1.0, 0.0, -1.0),
                Vec3::new(1.0, 0.0, 1.0),
                Vec3::new(-1.0, 0.0, 1.0),
            ),
        ]
    }

    #[test]
    fn a_well_formed_scene_validates() {
        let triangles = quad();
        let bvh = Bvh4::build(&triangles);
        assert_eq!(SceneValidator::validate(&bvh, &triangles), Ok(()));
    }

    #[test]
    fn the_empty_scene_validates() {
        let triangles: Vec<Triangle> = Vec::new();
        let bvh = Bvh4::build(&triangles);
        assert_eq!(SceneValidator::validate(&bvh, &triangles), Ok(()));
    }

    #[test]
    fn nan_vertices_and_degenerate_triangles_are_rejected() {
        let mut triangles = quad();
        triangles[1].v2.x = f32::NAN;
        let err = SceneValidator::validate_triangles(&triangles).unwrap_err();
        assert!(matches!(err, QueryError::InvalidScene { ref reason } if reason.contains('1')));

        let mut collinear = quad();
        collinear[0] = Triangle::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
        );
        let err = SceneValidator::validate_triangles(&collinear).unwrap_err();
        assert!(err.to_string().contains("degenerate"), "{err}");
    }

    #[test]
    fn a_mismatched_bvh_is_rejected() {
        let triangles = quad();
        let other = vec![triangles[0]];
        let bvh = Bvh4::build(&other);
        // The BVH indexes one primitive; the scene claims two.
        assert!(SceneValidator::validate_bvh(&bvh, &triangles).is_err());
    }

    #[test]
    fn ray_validation_names_the_offending_stream() {
        let good = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(validate_rays(&[good], "closest-hit"), Ok(()));
        let mut bad = good;
        bad.origin.y = f32::INFINITY;
        let err = validate_rays(&[good, bad], "any-hit").unwrap_err();
        assert!(err.to_string().contains("any-hit ray 1"), "{err}");
    }

    #[test]
    fn errors_display_their_taxonomy() {
        let deadline = QueryError::DeadlineExceeded {
            beats_spent: 17,
            max_total_beats: 16,
        };
        assert!(deadline.to_string().contains("17"));
        let shard = QueryError::ShardPanicked { shard: 2 };
        assert!(shard.to_string().contains("shard 2"));
        let budget = QueryError::BudgetExhausted { max_total_beats: 1 };
        assert!(budget.to_string().contains("budget exhausted"));
        let source: &dyn std::error::Error = &budget;
        assert!(source.source().is_none());
    }

    #[test]
    fn outcomes_expose_their_output_either_way() {
        let complete: QueryOutcome<Vec<u32>> = QueryOutcome::Complete(vec![1, 2, 3]);
        assert!(complete.is_complete());
        assert!(complete.partial().is_none());
        assert_eq!(complete.output(), &vec![1, 2, 3]);
        assert_eq!(complete.into_output(), vec![1, 2, 3]);

        let partial = QueryOutcome::Partial(PartialResult {
            output: vec![1u32],
            completed: 1,
            total: 3,
            beats_spent: 9,
            progress: BeatMix::default(),
        });
        assert!(!partial.is_complete());
        let report = partial.partial().expect("partial report");
        assert_eq!(
            (report.completed, report.total, report.beats_spent),
            (1, 3, 9)
        );
        assert_eq!(partial.into_output(), vec![1u32]);
    }
}
