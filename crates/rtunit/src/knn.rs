//! k-nearest-neighbour search on the extended datapath (case study §V-A).

use rayflex_core::{Opcode, PipelineConfig, RayFlexDatapath, RayFlexRequest};
use rayflex_geometry::golden::distance::{COSINE_LANES, EUCLIDEAN_LANES};

/// The distance metric used by a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnMetric {
    /// Squared Euclidean distance (smaller is closer), computed with the extended datapath's
    /// Euclidean operation.
    Euclidean,
    /// Cosine distance `1 - cos(a, b)` (smaller is closer), computed from the extended datapath's
    /// dot-product and candidate-norm accumulators.
    Cosine,
}

/// One search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the dataset vector.
    pub index: usize,
    /// Distance to the query under the chosen metric.
    pub distance: f32,
}

/// Statistics of a search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KnnStats {
    /// Datapath beats issued.
    pub beats: u64,
    /// Candidate vectors scored.
    pub candidates: u64,
}

/// A k-nearest-neighbour engine that streams candidate vectors through the extended RayFlex
/// datapath, exactly as the hierarchical-search accelerators the paper cites would: each
/// candidate is consumed in 16-lane (Euclidean) or 8-lane (cosine) beats with the accumulator
/// reset asserted on the last beat, and any number of unrelated beats may be interleaved between
/// two candidates.
#[derive(Debug)]
pub struct KnnEngine {
    datapath: RayFlexDatapath,
    stats: KnnStats,
}

impl KnnEngine {
    /// Creates an engine over an extended-unified datapath.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(PipelineConfig::extended_unified())
    }

    /// Creates an engine over a datapath of the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not support the distance operations.
    #[must_use]
    pub fn with_config(config: PipelineConfig) -> Self {
        assert!(
            config.supports(Opcode::Euclidean),
            "k-nearest-neighbour search needs the extended datapath"
        );
        KnnEngine {
            datapath: RayFlexDatapath::new(config),
            stats: KnnStats::default(),
        }
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> KnnStats {
        self.stats
    }

    /// Issues an arbitrary beat on the engine's datapath.
    ///
    /// The extended RT unit runs ray–box, ray–triangle and distance beats through the *same*
    /// pipeline, freely interleaved (§V-A); the hierarchical-search engine uses this to mix its
    /// BVH-filter ray–box beats with its exact-scoring Euclidean beats on one unit.
    ///
    /// # Panics
    ///
    /// Panics if the beat's opcode is not supported by the engine's configuration.
    pub fn execute_raw(
        &mut self,
        request: &rayflex_core::RayFlexRequest,
    ) -> rayflex_core::RayFlexResponse {
        self.stats.beats += 1;
        self.datapath.execute(request)
    }

    /// Squared Euclidean distance between two vectors of arbitrary equal dimension, computed on
    /// the datapath.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different dimensions.
    pub fn euclidean_distance_squared(&mut self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "vector dimensions must match");
        self.stats.candidates += 1;
        let mut result = 0.0;
        let mut offset = 0;
        while offset < a.len() || offset == 0 {
            let lanes = (a.len() - offset).min(EUCLIDEAN_LANES);
            let mut beat_a = [0.0f32; EUCLIDEAN_LANES];
            let mut beat_b = [0.0f32; EUCLIDEAN_LANES];
            beat_a[..lanes].copy_from_slice(&a[offset..offset + lanes]);
            beat_b[..lanes].copy_from_slice(&b[offset..offset + lanes]);
            let mask = if lanes == EUCLIDEAN_LANES {
                u16::MAX
            } else {
                (1u16 << lanes) - 1
            };
            let last = offset + lanes >= a.len();
            let request = RayFlexRequest::euclidean(self.stats.beats, beat_a, beat_b, mask, last);
            self.stats.beats += 1;
            let response = self.datapath.execute(&request);
            let distance = response.distance_result.expect("euclidean beat");
            if last {
                result = distance.euclidean_accumulator;
                break;
            }
            offset += lanes;
        }
        result
    }

    /// Cosine distance (`1 - cosine similarity`) between two vectors of arbitrary equal
    /// dimension, computed on the datapath.  Returns 1.0 when either vector has zero norm.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different dimensions.
    pub fn cosine_distance(&mut self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "vector dimensions must match");
        self.stats.candidates += 1;
        let mut dot = 0.0f32;
        let mut norm_sq = 0.0f32;
        let mut offset = 0;
        while offset < a.len() || offset == 0 {
            let lanes = (a.len() - offset).min(COSINE_LANES);
            let mut beat_a = [0.0f32; COSINE_LANES];
            let mut beat_b = [0.0f32; COSINE_LANES];
            beat_a[..lanes].copy_from_slice(&a[offset..offset + lanes]);
            beat_b[..lanes].copy_from_slice(&b[offset..offset + lanes]);
            let mask = if lanes == COSINE_LANES {
                u8::MAX
            } else {
                (1u8 << lanes) - 1
            };
            let last = offset + lanes >= a.len();
            let request = RayFlexRequest::cosine(self.stats.beats, beat_a, beat_b, mask, last);
            self.stats.beats += 1;
            let response = self.datapath.execute(&request);
            let result = response.distance_result.expect("cosine beat");
            if last {
                dot = result.angular_dot_product;
                norm_sq = result.angular_norm;
                break;
            }
            offset += lanes;
        }
        // The query norm is a property of the query alone; like the ray shear constants it is
        // pre-computed outside the datapath.
        let query_norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let candidate_norm = norm_sq.sqrt();
        if query_norm == 0.0 || candidate_norm == 0.0 {
            return 1.0;
        }
        1.0 - dot / (query_norm * candidate_norm)
    }

    /// Finds the `k` nearest dataset vectors to `query` under the chosen metric, sorted from
    /// nearest to farthest (ties broken by index).
    ///
    /// # Panics
    ///
    /// Panics if any dataset vector has a different dimension from the query.
    pub fn k_nearest(
        &mut self,
        query: &[f32],
        dataset: &[Vec<f32>],
        k: usize,
        metric: KnnMetric,
    ) -> Vec<Neighbor> {
        let mut scored: Vec<Neighbor> = dataset
            .iter()
            .enumerate()
            .map(|(index, candidate)| {
                let distance = match metric {
                    KnnMetric::Euclidean => self.euclidean_distance_squared(query, candidate),
                    KnnMetric::Cosine => self.cosine_distance(query, candidate),
                };
                Neighbor { index, distance }
            })
            .collect();
        scored.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(core::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        scored.truncate(k);
        scored
    }
}

impl Default for KnnEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::golden;

    fn dataset(dim: usize, count: usize) -> Vec<Vec<f32>> {
        (0..count)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * 31 + d * 7) % 17) as f32 * 0.25 - 2.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn euclidean_distances_match_the_golden_model_for_any_dimension() {
        let mut engine = KnnEngine::new();
        for dim in [1usize, 3, 16, 17, 40, 64] {
            let data = dataset(dim, 4);
            let d = engine.euclidean_distance_squared(&data[0], &data[1]);
            let gold = golden::distance::euclidean_distance_squared(&data[0], &data[1]);
            assert_eq!(d.to_bits(), gold.to_bits(), "dim {dim}");
        }
        assert!(engine.stats().beats > 0);
    }

    #[test]
    fn cosine_distance_matches_a_software_reference() {
        let mut engine = KnnEngine::new();
        for dim in [2usize, 8, 9, 24] {
            let data = dataset(dim, 4);
            let got = engine.cosine_distance(&data[2], &data[3]);
            let dot: f32 = data[2].iter().zip(&data[3]).map(|(a, b)| a * b).sum();
            let na: f32 = data[2].iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = data[3].iter().map(|x| x * x).sum::<f32>().sqrt();
            let expect = 1.0 - dot / (na * nb);
            assert!((got - expect).abs() < 1e-4, "dim {dim}: {got} vs {expect}");
        }
    }

    #[test]
    fn k_nearest_matches_brute_force_ordering() {
        let data = dataset(24, 50);
        let query = data[7].clone();
        let mut engine = KnnEngine::new();
        let neighbors = engine.k_nearest(&query, &data, 5, KnnMetric::Euclidean);
        assert_eq!(neighbors.len(), 5);
        // The query itself is in the dataset, so the nearest neighbour is itself at distance 0.
        assert_eq!(neighbors[0].index, 7);
        assert_eq!(neighbors[0].distance, 0.0);
        // Distances are non-decreasing.
        for pair in neighbors.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
        // Compare against a full software sort.
        let mut reference: Vec<(usize, f32)> = data
            .iter()
            .enumerate()
            .map(|(i, v)| (i, golden::distance::euclidean_distance_squared(&query, v)))
            .collect();
        reference.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        for (n, (ri, rd)) in neighbors.iter().zip(reference.iter()) {
            assert_eq!(n.index, *ri);
            assert_eq!(n.distance.to_bits(), rd.to_bits());
        }
    }

    #[test]
    fn cosine_metric_prefers_aligned_vectors() {
        let dataset = vec![
            vec![1.0, 0.0, 0.0, 0.0],
            vec![10.0, 0.1, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![-1.0, 0.0, 0.0, 0.0],
        ];
        let query = vec![2.0, 0.0, 0.0, 0.0];
        let mut engine = KnnEngine::new();
        let neighbors = engine.k_nearest(&query, &dataset, 4, KnnMetric::Cosine);
        assert_eq!(neighbors[0].index, 0, "exactly aligned vector is nearest");
        assert_eq!(neighbors[3].index, 3, "opposite vector is farthest");
    }

    #[test]
    #[should_panic(expected = "extended datapath")]
    fn baseline_configurations_are_rejected() {
        let _ = KnnEngine::with_config(PipelineConfig::baseline_unified());
    }

    #[test]
    fn zero_norm_candidates_get_maximum_cosine_distance() {
        let mut engine = KnnEngine::new();
        let d = engine.cosine_distance(&[1.0, 2.0], &[0.0, 0.0]);
        assert_eq!(d, 1.0);
    }
}
