//! k-nearest-neighbour search on the extended datapath (case study §V-A).
//!
//! Candidate scoring is a batched query: every candidate vector is one item of a
//! [`QueryKind::Distance`] run through the generic wavefront scheduler.  A candidate appends its
//! whole beat train (16-lane Euclidean or 8-lane cosine beats, accumulator reset asserted on the
//! last) in a single build call, so the beats stay adjacent in the dispatched batch and the
//! datapath's shared accumulator sees each candidate contiguously — which is what lets any number
//! of candidates (and unrelated beats) share one bulk pass.  The single-pair distance methods are
//! one-candidate instantiations of the same query; there is no separate scalar drive loop.
//!
//! The public entry points ([`KnnEngine::distances`], [`KnnEngine::k_nearest`]) take an
//! [`ExecPolicy`](crate::ExecPolicy): the same candidate beat trains dispatch one emulated beat
//! at a time (scalar reference), in bulk wavefront passes, in fused shared passes, or sharded
//! across worker threads — distances and [`KnnStats`] bit-identical in every mode.

use rayflex_core::{
    quad_sort, BeatMix, Opcode, PipelineConfig, RayFlexDatapath, RayFlexRequest, RayFlexResponse,
};
use rayflex_geometry::golden::distance::{COSINE_LANES, EUCLIDEAN_LANES};

use crate::error::{PartialResult, QueryError, QueryOutcome};
use crate::policy::{ExecMode, ExecPolicy};
use crate::query::{BatchQuery, FusedScheduler, QueryKind, StreamRunner, WavefrontScheduler};
use crate::scene::Scene;

/// The distance metric used by a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnMetric {
    /// Squared Euclidean distance (smaller is closer), computed with the extended datapath's
    /// Euclidean operation.
    Euclidean,
    /// Cosine distance `1 - cos(a, b)` (smaller is closer), computed from the extended datapath's
    /// dot-product and candidate-norm accumulators.
    Cosine,
}

/// One search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the dataset vector.
    pub index: usize,
    /// Distance to the query under the chosen metric.
    pub distance: f32,
}

/// Statistics of a search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KnnStats {
    /// Datapath beats issued.
    pub beats: u64,
    /// Candidate vectors scored.
    pub candidates: u64,
}

impl KnnStats {
    /// Accumulates another counter set into this one (used when merging the statistics of a
    /// finished distance stream — or a parallel run's shards — into an engine's totals).
    ///
    /// Same merge semantics as
    /// [`TraversalStats::merge`](crate::TraversalStats::merge): plain `u64` sums, commutative
    /// and associative with the zero set as identity, so shard totals equal single-threaded
    /// accounting exactly.
    pub fn merge(&mut self, other: &KnnStats) {
        self.beats += other.beats;
        self.candidates += other.candidates;
    }

    /// [`KnnStats::merge`] as a value-returning combinator, for fold-style reductions.  Marked
    /// `#[must_use]` because dropping the result silently discards the merge.
    #[must_use]
    pub fn merged(mut self, other: &KnnStats) -> Self {
        self.merge(other);
        self
    }
}

/// Per-candidate state of a batched distance query.
#[derive(Debug, Default)]
pub struct DistanceWork {
    issued: bool,
    euclidean: f32,
    dot: f32,
    norm_sq: f32,
}

/// A batched distance query: one item per candidate vector, all beats of a candidate appended in
/// one build call (see the module documentation for why adjacency matters).  The query owns its
/// statistics so distance streams can run fused alongside other query kinds; consumers merge
/// them when the stream finishes.
#[derive(Debug)]
struct DistanceQuery<'a, C: AsRef<[f32]>> {
    query: &'a [f32],
    candidates: &'a [C],
    metric: KnnMetric,
    /// Pre-computed query norm for the cosine metric (a property of the query alone; like the
    /// ray shear constants it is computed outside the datapath).
    query_norm: f32,
    stats: KnnStats,
}

impl<'a, C: AsRef<[f32]>> DistanceQuery<'a, C> {
    fn new(query: &'a [f32], candidates: &'a [C], metric: KnnMetric) -> Self {
        let query_norm = match metric {
            KnnMetric::Euclidean => 0.0,
            KnnMetric::Cosine => query.iter().map(|x| x * x).sum::<f32>().sqrt(),
        };
        DistanceQuery {
            query,
            candidates,
            metric,
            query_norm,
            stats: KnnStats::default(),
        }
    }
}

impl<C: AsRef<[f32]>> BatchQuery for DistanceQuery<'_, C> {
    type State = DistanceWork;
    type Output = f32;

    fn kind(&self) -> QueryKind {
        QueryKind::Distance
    }

    fn items(&self) -> usize {
        self.candidates.len()
    }

    fn reset(&mut self, _item: usize, state: &mut DistanceWork) {
        *state = DistanceWork::default();
    }

    fn build(
        &mut self,
        item: usize,
        state: &mut DistanceWork,
        out: &mut Vec<RayFlexRequest>,
    ) -> bool {
        if state.issued {
            return false;
        }
        state.issued = true;
        let candidate = self.candidates[item].as_ref();
        assert_eq!(
            self.query.len(),
            candidate.len(),
            "vector dimensions must match"
        );
        self.stats.candidates += 1;
        self.stats.beats += match self.metric {
            KnnMetric::Euclidean => append_euclidean_beats(item as u64, self.query, candidate, out),
            KnnMetric::Cosine => append_cosine_beats(item as u64, self.query, candidate, out),
        };
        true
    }

    fn apply(&mut self, _item: usize, state: &mut DistanceWork, response: &RayFlexResponse) {
        let Some(result) = response.distance_result else {
            unreachable!("a distance beat always carries a distance result");
        };
        // Only the last beat of the candidate (the one echoing the accumulator reset) carries
        // the completed reduction.
        match self.metric {
            KnnMetric::Euclidean => {
                if result.euclidean_reset {
                    state.euclidean = result.euclidean_accumulator;
                }
            }
            KnnMetric::Cosine => {
                if result.angular_reset {
                    state.dot = result.angular_dot_product;
                    state.norm_sq = result.angular_norm;
                }
            }
        }
    }

    fn finish(&mut self, _item: usize, state: &mut DistanceWork) -> f32 {
        match self.metric {
            KnnMetric::Euclidean => state.euclidean,
            KnnMetric::Cosine => {
                let candidate_norm = state.norm_sq.sqrt();
                if self.query_norm == 0.0 || candidate_norm == 0.0 {
                    1.0
                } else {
                    1.0 - state.dot / (self.query_norm * candidate_norm)
                }
            }
        }
    }
}

/// A candidate-scoring stream packaged for **fused** scheduling: squared-Euclidean or cosine
/// distances of `candidates` to `query`, runnable side by side with traversal and collection
/// streams in the shared passes of a [`FusedScheduler`](crate::FusedScheduler).
///
/// Distances and [`KnnStats`] are bit-identical to [`KnnEngine::distances`] over the same
/// candidate slice (each candidate's beat train stays contiguous inside the stream's pass
/// segment, so the shared accumulator semantics are untouched by fusion).
///
/// Unlike [`KnnEngine::distances`], a fused stream does **not** chunk its candidate set: every
/// candidate's beat train lands in the first shared pass, so the pass buffer scales with
/// `candidates × ceil(dim / lanes)` beats.  Callers fusing very large scoring workloads should
/// split the candidate slice into several streams (or several fused runs) themselves.
#[derive(Debug)]
pub struct DistanceStream<'a, C: AsRef<[f32]>> {
    runner: StreamRunner<DistanceQuery<'a, C>>,
}

impl<'a, C: AsRef<[f32]>> DistanceStream<'a, C> {
    /// A distance-scoring stream of every candidate against `query` under `metric`.
    #[must_use]
    pub fn new(query: &'a [f32], candidates: &'a [C], metric: KnnMetric) -> Self {
        DistanceStream {
            runner: StreamRunner::new(DistanceQuery::new(query, candidates, metric)),
        }
    }

    /// One distance per candidate (in candidate order) plus the stream's statistics, after a
    /// fused run completed.
    ///
    /// # Panics
    ///
    /// Panics if the stream was never run to completion.
    #[must_use]
    pub fn finish(self) -> (Vec<f32>, KnnStats) {
        let (query, distances) = self.runner.finish();
        (distances, query.stats)
    }
}

crate::query::delegate_fused_stream_to_runner!([C: AsRef<[f32]>] DistanceStream<'_, C>);

/// Appends the Euclidean beat train of one `(query, candidate)` pair (16 lanes per beat, reset
/// asserted on the last) and returns the number of beats appended.  Zero-dimensional vectors
/// still cost one (fully masked) beat, as on the hardware.
fn append_euclidean_beats(tag: u64, a: &[f32], b: &[f32], out: &mut Vec<RayFlexRequest>) -> u64 {
    let mut beats = 0;
    let mut offset = 0;
    while offset < a.len() || offset == 0 {
        let lanes = (a.len() - offset).min(EUCLIDEAN_LANES);
        let mut beat_a = [0.0f32; EUCLIDEAN_LANES];
        let mut beat_b = [0.0f32; EUCLIDEAN_LANES];
        beat_a[..lanes].copy_from_slice(&a[offset..offset + lanes]);
        beat_b[..lanes].copy_from_slice(&b[offset..offset + lanes]);
        let mask = if lanes == EUCLIDEAN_LANES {
            u16::MAX
        } else {
            (1u16 << lanes) - 1
        };
        let last = offset + lanes >= a.len();
        out.push(RayFlexRequest::euclidean(tag, beat_a, beat_b, mask, last));
        beats += 1;
        if last {
            break;
        }
        offset += lanes;
    }
    beats
}

/// Appends the cosine beat train of one `(query, candidate)` pair (8 lanes per beat, reset
/// asserted on the last) and returns the number of beats appended.
fn append_cosine_beats(tag: u64, a: &[f32], b: &[f32], out: &mut Vec<RayFlexRequest>) -> u64 {
    let mut beats = 0;
    let mut offset = 0;
    while offset < a.len() || offset == 0 {
        let lanes = (a.len() - offset).min(COSINE_LANES);
        let mut beat_a = [0.0f32; COSINE_LANES];
        let mut beat_b = [0.0f32; COSINE_LANES];
        beat_a[..lanes].copy_from_slice(&a[offset..offset + lanes]);
        beat_b[..lanes].copy_from_slice(&b[offset..offset + lanes]);
        let mask = if lanes == COSINE_LANES {
            u8::MAX
        } else {
            (1u8 << lanes) - 1
        };
        let last = offset + lanes >= a.len();
        out.push(RayFlexRequest::cosine(tag, beat_a, beat_b, mask, last));
        beats += 1;
        if last {
            break;
        }
        offset += lanes;
    }
    beats
}

/// A k-nearest-neighbour engine that streams candidate vectors through the extended RayFlex
/// datapath, exactly as the hierarchical-search accelerators the paper cites would: each
/// candidate is consumed in 16-lane (Euclidean) or 8-lane (cosine) beats with the accumulator
/// reset asserted on the last beat, and any number of unrelated beats may be interleaved between
/// two candidates.  All candidate scoring runs through the generic batched query engine.
#[derive(Debug)]
pub struct KnnEngine {
    datapath: RayFlexDatapath,
    stats: KnnStats,
    /// Work-stealing pool counters accumulated across parallel scoring runs (scheduling
    /// artefacts, kept apart from the mode-invariant [`KnnStats`]).
    pool: crate::parallel::PoolStats,
    scheduler: WavefrontScheduler<DistanceWork>,
    /// Drives the scalar round-robin reference and fused dispatch disciplines of the policy
    /// entry points.
    fused: FusedScheduler,
}

impl KnnEngine {
    /// Creates an engine over an extended-unified datapath.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(PipelineConfig::extended_unified())
    }

    /// Creates an engine over a datapath of the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not support the distance operations.
    #[must_use]
    pub fn with_config(config: PipelineConfig) -> Self {
        assert!(
            config.supports(Opcode::Euclidean),
            "k-nearest-neighbour search needs the extended datapath"
        );
        KnnEngine {
            datapath: RayFlexDatapath::new(config),
            stats: KnnStats::default(),
            pool: crate::parallel::PoolStats::default(),
            scheduler: WavefrontScheduler::new(),
            fused: FusedScheduler::new(),
        }
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> KnnStats {
        self.stats
    }

    /// Work-stealing pool counters accumulated across every parallel scoring run.  Unlike
    /// [`KnnEngine::stats`] these are **not** mode-invariant: steal counts depend on runtime
    /// scheduling, and non-parallel modes leave them untouched.
    #[must_use]
    pub fn pool_stats(&self) -> crate::parallel::PoolStats {
        self.pool
    }

    /// The datapath configuration this engine drives.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        self.datapath.config()
    }

    /// Per-opcode breakdown of every beat this engine's datapath has executed (the
    /// hierarchical-search frontend mixes ray–box filter beats with distance beats on this one
    /// unit).
    #[must_use]
    pub fn beat_mix(&self) -> BeatMix {
        self.datapath.beat_mix()
    }

    /// Issues an arbitrary beat on the engine's datapath.
    ///
    /// The extended RT unit runs ray–box, ray–triangle and distance beats through the *same*
    /// pipeline, freely interleaved (§V-A); the hierarchical-search engine uses this to mix its
    /// BVH-filter ray–box beats with its exact-scoring Euclidean beats on one unit.
    ///
    /// # Panics
    ///
    /// Panics if the beat's opcode is not supported by the engine's configuration.
    pub fn execute_raw(
        &mut self,
        request: &rayflex_core::RayFlexRequest,
    ) -> rayflex_core::RayFlexResponse {
        self.stats.beats += 1;
        self.datapath.execute(request)
    }

    /// Upper bound on the beats a single scheduler pass materialises while scoring candidates.
    /// Scoring runs chunk the candidate set so the reusable request buffer stays bounded no
    /// matter how large the dataset is (a candidate's own beat train is never split, so results
    /// stay bit-identical to an unchunked run).
    const MAX_BEATS_PER_PASS: usize = 1 << 16;

    /// Minimum candidates a parallel shard must carry before an extra worker pays for itself
    /// (scoring a candidate is a handful of beats, so small sets run inline).
    const MIN_CANDIDATES_PER_SHARD: usize = 64;

    /// Scores every candidate against `query` under the chosen metric — **the** Distance-kind
    /// entry point, dispatched by the execution policy:
    ///
    /// * [`ExecMode::ScalarReference`] — every beat executes one at a time through the
    ///   register-accurate emulated path (the streams' round-robin reference discipline);
    /// * [`ExecMode::Wavefront`] — candidates share bulk datapath dispatches;
    /// * [`ExecMode::Fused`] — the same bulk passes through the fused scheduler (honouring the
    ///   policy's beat budget);
    /// * [`ExecMode::Parallel`] — the candidate set shards contiguously across workers, each
    ///   with a private datapath.
    ///
    /// Single-threaded modes chunk the candidate set so no pass materialises more than
    /// `MAX_BEATS_PER_PASS` (65536) beats — memory stays flat for arbitrarily large datasets,
    /// and a candidate's own beat train is never split, so chunking never changes a bit.
    /// Returns one distance per candidate, in candidate order; distances and [`KnnStats`] are
    /// bit-identical across every mode (pinned by `rtunit/tests/proptest_policy.rs`).
    ///
    /// # Panics
    ///
    /// Panics if any candidate has a different dimension from the query.
    pub fn distances<C: AsRef<[f32]> + Sync>(
        &mut self,
        query: &[f32],
        candidates: &[C],
        metric: KnnMetric,
        policy: &ExecPolicy,
    ) -> Vec<f32> {
        let lanes = match metric {
            KnnMetric::Euclidean => EUCLIDEAN_LANES,
            KnnMetric::Cosine => COSINE_LANES,
        };
        let beats_per_candidate = query.len().div_ceil(lanes).max(1);
        let chunk_len = (Self::MAX_BEATS_PER_PASS / beats_per_candidate).max(1);

        if let ExecMode::Parallel { shards } = policy.mode {
            return self.distances_parallel(query, candidates, metric, shards.requested_threads());
        }
        self.datapath.set_simd_lanes(policy.effective_simd_lanes());

        let mut results = Vec::with_capacity(candidates.len());
        for chunk in candidates.chunks(chunk_len) {
            match policy.mode {
                ExecMode::Wavefront => {
                    let mut batch = DistanceQuery::new(query, chunk, metric);
                    results.extend(self.scheduler.run(&mut self.datapath, &mut batch));
                    self.stats.merge(&batch.stats);
                }
                ExecMode::ScalarReference | ExecMode::Fused => {
                    let mut runner = StreamRunner::new(DistanceQuery::new(query, chunk, metric));
                    // The beat budget is a Fused-mode knob; every other mode ignores it (the
                    // documented `ExecPolicy` contract).
                    self.fused
                        .set_beat_budget(if policy.mode == ExecMode::Fused {
                            policy.beat_budget_per_stream
                        } else {
                            0
                        });
                    self.fused.set_admission_order(policy.admission_order);
                    self.fused.set_stream_deadlines(&[]);
                    if policy.mode == ExecMode::ScalarReference {
                        self.fused
                            .run_reference(&mut self.datapath, &mut [&mut runner]);
                    } else {
                        self.fused.run(&mut self.datapath, &mut [&mut runner]);
                    }
                    let (batch, distances) = runner.finish();
                    results.extend(distances);
                    self.stats.merge(&batch.stats);
                }
                ExecMode::Parallel { .. } => unreachable!("handled above"),
            }
        }
        results
    }

    /// The [`ExecMode::Parallel`] backend of [`KnnEngine::distances`]: contiguous candidate
    /// shards, one private datapath per worker, shard statistics merged into this engine's
    /// totals.  Candidates are independent, so shard boundaries never change a bit.
    fn distances_parallel<C: AsRef<[f32]> + Sync>(
        &mut self,
        query: &[f32],
        candidates: &[C],
        metric: KnnMetric,
        threads: usize,
    ) -> Vec<f32> {
        let config = *self.datapath.config();
        let Some((shards, pool)) = crate::parallel::shard_chunks(
            candidates,
            threads,
            Self::MIN_CANDIDATES_PER_SHARD,
            |shard| {
                let mut engine = KnnEngine::with_config(config);
                let distances = engine.distances(query, shard, metric, &ExecPolicy::wavefront());
                (distances, engine.stats())
            },
        ) else {
            // Too small to shard profitably: run the batched wavefront inline.
            return self.distances(query, candidates, metric, &ExecPolicy::wavefront());
        };
        self.pool.merge(&pool);
        let mut results = Vec::with_capacity(candidates.len());
        for (shard_distances, shard_stats) in shards {
            results.extend(shard_distances);
            self.stats.merge(&shard_stats);
        }
        results
    }

    /// Squared Euclidean distance between two vectors of arbitrary equal dimension, computed on
    /// the datapath (a one-candidate batched query).
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different dimensions.
    pub fn euclidean_distance_squared(&mut self, a: &[f32], b: &[f32]) -> f32 {
        self.distances(a, &[b], KnnMetric::Euclidean, &ExecPolicy::wavefront())[0]
    }

    /// Cosine distance (`1 - cosine similarity`) between two vectors of arbitrary equal
    /// dimension, computed on the datapath (a one-candidate batched query).  Returns 1.0 when
    /// either vector has zero norm.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different dimensions.
    pub fn cosine_distance(&mut self, a: &[f32], b: &[f32]) -> f32 {
        self.distances(a, &[b], KnnMetric::Cosine, &ExecPolicy::wavefront())[0]
    }

    /// Finds the `k` nearest dataset vectors to `query` under the chosen metric, sorted from
    /// nearest to farthest (ties broken by index) — **the** kNN entry point.  The whole dataset
    /// is scored through [`KnnEngine::distances`] under the given policy, and the winners are
    /// picked by the **bounded on-engine top-k** ([`select_k_nearest`]) built on the paper's
    /// quad-sort substrate — no full CPU sort of all scored candidates.  Neighbours and
    /// [`KnnStats`] are bit-identical across every [`ExecMode`].
    ///
    /// # Panics
    ///
    /// Panics if any dataset vector has a different dimension from the query.
    pub fn k_nearest(
        &mut self,
        query: &[f32],
        dataset: &[Vec<f32>],
        k: usize,
        metric: KnnMetric,
        policy: &ExecPolicy,
    ) -> Vec<Neighbor> {
        let distances = self.distances(query, dataset, metric, policy);
        select_k_nearest(&distances, k)
    }

    /// Finds the `k` triangles of `scene` whose **world-space centroids** are nearest to
    /// `query` (squared-Euclidean, scored on the datapath) — the [`Scene`]-boundary entry
    /// point, with neighbour indices being the scene's global primitive ids.
    ///
    /// Instanced scenes score their placed centroids ([`Scene::centroids`]), so the result is
    /// identical for a scene and its [`Scene::flatten`]ed form.
    pub fn k_nearest_in_scene(
        &mut self,
        query: rayflex_geometry::Vec3,
        scene: &Scene,
        k: usize,
        policy: &ExecPolicy,
    ) -> Vec<Neighbor> {
        let centroids: Vec<[f32; 3]> = scene.centroids().iter().map(|c| [c.x, c.y, c.z]).collect();
        let distances = self.distances(
            &[query.x, query.y, query.z],
            &centroids,
            KnnMetric::Euclidean,
            policy,
        );
        select_k_nearest(&distances, k)
    }

    /// Scores every candidate with up-front validation and deadline-aware cancellation — the
    /// `Result`-returning variant of [`KnnEngine::distances`].
    ///
    /// Dimension mismatches and non-finite vectors surface as
    /// [`QueryError::InvalidRequest`] instead of a panic, before any beat is issued.  Without a
    /// deadline the outcome is [`QueryOutcome::Complete`] and bit-identical to
    /// [`KnnEngine::distances`].  With [`ExecPolicy::max_total_beats`] set, the run cancels
    /// cooperatively at a pass boundary and yields the completed candidate **prefix** as
    /// [`QueryOutcome::Partial`] (each surfaced distance bit-identical to the uncapped run), or
    /// [`QueryError::BudgetExhausted`] when not even one candidate finished.  Capped runs
    /// score inline on this engine's own datapath in every mode —
    /// cooperative cancellation is a single-unit admission discipline, so
    /// [`ExecMode::Parallel`] does not shard under a deadline.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidRequest`] or [`QueryError::BudgetExhausted`], as above.
    pub fn try_distances<C: AsRef<[f32]> + Sync>(
        &mut self,
        query: &[f32],
        candidates: &[C],
        metric: KnnMetric,
        policy: &ExecPolicy,
    ) -> Result<QueryOutcome<Vec<f32>>, QueryError> {
        validate_vectors(query, candidates)?;
        if policy.max_total_beats == 0 {
            return Ok(QueryOutcome::Complete(
                self.distances(query, candidates, metric, policy),
            ));
        }
        self.distances_capped(query, candidates, metric, policy)
    }

    /// The deadline-capped backend of [`KnnEngine::try_distances`]: chunked like the plain
    /// path, with the remaining budget threaded through each chunk's capped scheduler run.
    /// Crate-visible so the hierarchical search can run its scoring phase under a shared
    /// deadline without re-validating per query.
    pub(crate) fn distances_capped<C: AsRef<[f32]>>(
        &mut self,
        query: &[f32],
        candidates: &[C],
        metric: KnnMetric,
        policy: &ExecPolicy,
    ) -> Result<QueryOutcome<Vec<f32>>, QueryError> {
        let cap = policy.max_total_beats;
        let lanes = match metric {
            KnnMetric::Euclidean => EUCLIDEAN_LANES,
            KnnMetric::Cosine => COSINE_LANES,
        };
        let beats_per_candidate = query.len().div_ceil(lanes).max(1);
        let chunk_len = (Self::MAX_BEATS_PER_PASS / beats_per_candidate).max(1);

        let mut results = Vec::with_capacity(candidates.len());
        let mut beats_spent = 0u64;
        let mut complete = true;
        for chunk in candidates.chunks(chunk_len) {
            let remaining = cap.saturating_sub(beats_spent);
            if remaining == 0 {
                complete = false;
                break;
            }
            let chunk_complete = match policy.mode {
                ExecMode::Wavefront | ExecMode::Parallel { .. } => {
                    let mut batch = DistanceQuery::new(query, chunk, metric);
                    let run = self
                        .scheduler
                        .run_capped(&mut self.datapath, &mut batch, remaining);
                    beats_spent += run.beats;
                    results.extend(run.outputs);
                    self.stats.merge(&batch.stats);
                    run.complete
                }
                ExecMode::ScalarReference | ExecMode::Fused => {
                    let mut runner = StreamRunner::new(DistanceQuery::new(query, chunk, metric));
                    self.fused
                        .set_beat_budget(if policy.mode == ExecMode::Fused {
                            policy.beat_budget_per_stream
                        } else {
                            0
                        });
                    self.fused.set_admission_order(policy.admission_order);
                    self.fused.set_stream_deadlines(&[]);
                    let run = if policy.mode == ExecMode::ScalarReference {
                        self.fused.run_reference_capped(
                            &mut self.datapath,
                            &mut [&mut runner],
                            remaining,
                        )
                    } else {
                        self.fused
                            .run_capped(&mut self.datapath, &mut [&mut runner], remaining)
                    };
                    let (batch, outputs, _total) = runner.finish_partial();
                    beats_spent += run.beats;
                    results.extend(outputs);
                    self.stats.merge(&batch.stats);
                    run.complete
                }
            };
            if !chunk_complete {
                complete = false;
                break;
            }
        }

        if complete {
            return Ok(QueryOutcome::Complete(results));
        }
        if results.is_empty() {
            return Err(QueryError::BudgetExhausted {
                max_total_beats: cap,
            });
        }
        let completed = results.len();
        Ok(QueryOutcome::Partial(PartialResult {
            output: results,
            completed,
            total: candidates.len(),
            beats_spent,
            progress: self.beat_mix(),
        }))
    }

    /// Finds the `k` nearest neighbours with up-front validation and deadline-aware
    /// cancellation — the `Result`-returning variant of [`KnnEngine::k_nearest`].
    ///
    /// A top-k set is a **global reduction**: a winner may hide anywhere in the dataset, so a
    /// partially-scored prefix has no meaningful "completed" subset and a deadline that fires
    /// surfaces as [`QueryError::DeadlineExceeded`] rather than a silently wrong neighbour
    /// list.  `k == 0` is a valid request and returns an empty list.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidRequest`], [`QueryError::DeadlineExceeded`] or
    /// [`QueryError::BudgetExhausted`], as above.
    pub fn try_k_nearest(
        &mut self,
        query: &[f32],
        dataset: &[Vec<f32>],
        k: usize,
        metric: KnnMetric,
        policy: &ExecPolicy,
    ) -> Result<Vec<Neighbor>, QueryError> {
        match self.try_distances(query, dataset, metric, policy)? {
            QueryOutcome::Complete(distances) => Ok(select_k_nearest(&distances, k)),
            QueryOutcome::Partial(partial) => Err(QueryError::DeadlineExceeded {
                beats_spent: partial.beats_spent,
                max_total_beats: policy.max_total_beats,
            }),
        }
    }

    /// Mutable access to the engine's datapath, for sibling engines that layer further query
    /// kinds (the hierarchical search's candidate-collection filter) onto the same unit.
    pub(crate) fn datapath_mut(&mut self) -> &mut RayFlexDatapath {
        &mut self.datapath
    }
}

/// Validates a distance request before a `try_*` run accepts it: the query vector and every
/// candidate must be finite, and every candidate must share the query's dimension (the plain
/// entry points panic on a mismatch mid-run; the `try_*` ones reject it up front).
fn validate_vectors<C: AsRef<[f32]>>(query: &[f32], candidates: &[C]) -> Result<(), QueryError> {
    if !query.iter().all(|x| x.is_finite()) {
        return Err(QueryError::InvalidRequest {
            reason: "query vector has a non-finite component".to_owned(),
        });
    }
    for (index, candidate) in candidates.iter().enumerate() {
        let candidate = candidate.as_ref();
        if candidate.len() != query.len() {
            return Err(QueryError::InvalidRequest {
                reason: format!(
                    "candidate {index} has dimension {} but the query has {}",
                    candidate.len(),
                    query.len()
                ),
            });
        }
        if !candidate.iter().all(|x| x.is_finite()) {
            return Err(QueryError::InvalidRequest {
                reason: format!("candidate {index} has a non-finite component"),
            });
        }
    }
    Ok(())
}

/// Bounded top-k selection over a scored distance slice: returns the `k` nearest candidates
/// sorted from nearest to farthest (ties broken by index), identical to sorting the whole slice
/// by `(distance, index)` and truncating — but in O(n log k) without materialising that sort.
///
/// A `NaN` distance marks an unordered candidate (a non-finite reduction); NaN candidates are
/// treated as infinitely far and are **never selected**, exactly like a missed child in the
/// hardware sorter (whose key is forced to +∞).
///
/// Candidates are consumed four at a time through the quad-sort network
/// ([`rayflex_core::quad_sort::sort_four_f32`], the five-comparator sorter the datapath's
/// ray–box operation uses), so each quad arrives in visit order and the scan of a quad stops at
/// the first candidate that cannot enter the running top-k — the software shape of folding the
/// selection into the distance query's finish path on the quad-sort substrate.
#[must_use]
pub fn select_k_nearest(distances: &[f32], k: usize) -> Vec<Neighbor> {
    let mut best: Vec<Neighbor> = Vec::with_capacity(k.min(distances.len()).saturating_add(1));
    if k == 0 {
        return best;
    }
    for (quad, chunk) in distances.chunks(4).enumerate() {
        let mut keys = [0.0f32; 4];
        let mut valid = [false; 4];
        keys[..chunk.len()].copy_from_slice(chunk);
        for (lane, &key) in chunk.iter().enumerate() {
            // NaN lanes stay invalid: like a hardware miss they sort last and never select.
            valid[lane] = !key.is_nan();
        }
        // The quad-sort network yields this quad's candidates nearest-first (equal keys keep
        // index order), so the first one that fails to displace the current worst ends the quad.
        for &slot in &quad_sort::sort_four_f32(&valid, &keys) {
            let slot = usize::from(slot);
            if !valid[slot] {
                // An invalid lane (padding or NaN) carries the +inf miss key, which TIES with a
                // genuine +inf distance — and ties keep original lane order — so a valid lane
                // may still follow.  Skip, don't break.
                continue;
            }
            let candidate = Neighbor {
                index: quad * 4 + slot,
                distance: keys[slot],
            };
            if best.len() == k {
                let worst = best[k - 1];
                if candidate.distance > worst.distance
                    || (candidate.distance == worst.distance && candidate.index > worst.index)
                {
                    break;
                }
            }
            let position = best.partition_point(|n| {
                n.distance < candidate.distance
                    || (n.distance == candidate.distance && n.index < candidate.index)
            });
            best.insert(position, candidate);
            best.truncate(k);
        }
    }
    best
}

impl Default for KnnEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::golden;

    fn dataset(dim: usize, count: usize) -> Vec<Vec<f32>> {
        (0..count)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * 31 + d * 7) % 17) as f32 * 0.25 - 2.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn euclidean_distances_match_the_golden_model_for_any_dimension() {
        let mut engine = KnnEngine::new();
        for dim in [1usize, 3, 16, 17, 40, 64] {
            let data = dataset(dim, 4);
            let d = engine.euclidean_distance_squared(&data[0], &data[1]);
            let gold = golden::distance::euclidean_distance_squared(&data[0], &data[1]);
            assert_eq!(d.to_bits(), gold.to_bits(), "dim {dim}");
        }
        assert!(engine.stats().beats > 0);
    }

    #[test]
    fn batched_distances_match_single_pair_calls() {
        // Batching candidates (multi-beat trains adjacent in one bulk pass) must not change a
        // single bit of any reduction, even when every candidate needs several beats.
        for dim in [3usize, 16, 33] {
            let data = dataset(dim, 12);
            let query = data[0].clone();
            let mut batched = KnnEngine::new();
            let distances = batched.distances(
                &query,
                &data,
                KnnMetric::Euclidean,
                &ExecPolicy::wavefront(),
            );
            let mut single = KnnEngine::new();
            for (i, (candidate, got)) in data.iter().zip(&distances).enumerate() {
                let expected = single.euclidean_distance_squared(&query, candidate);
                assert_eq!(expected.to_bits(), got.to_bits(), "dim {dim} candidate {i}");
            }
            assert_eq!(batched.stats(), single.stats(), "identical beat accounting");
        }
    }

    #[test]
    fn chunked_scoring_of_large_high_dimensional_datasets_stays_exact() {
        // 70 candidates x 1024 beats each crosses MAX_BEATS_PER_PASS (65536), so the run chunks;
        // chunk boundaries must not change a bit of any reduction.
        let dim = EUCLIDEAN_LANES * 1024;
        let count = 70;
        let candidates: Vec<Vec<f32>> = (0..count)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * 13 + d) % 29) as f32 * 0.125 - 1.5)
                    .collect()
            })
            .collect();
        let query: Vec<f32> = (0..dim).map(|d| (d % 7) as f32 * 0.5 - 1.0).collect();
        let mut engine = KnnEngine::new();
        let distances = engine.distances(
            &query,
            &candidates,
            KnnMetric::Euclidean,
            &ExecPolicy::wavefront(),
        );
        assert_eq!(distances.len(), count);
        for (i, (candidate, got)) in candidates.iter().zip(&distances).enumerate() {
            let gold = golden::distance::euclidean_distance_squared(&query, candidate);
            assert_eq!(got.to_bits(), gold.to_bits(), "candidate {i}");
        }
        assert_eq!(engine.stats().candidates, count as u64);
        assert_eq!(engine.stats().beats, (count * 1024) as u64);
    }

    #[test]
    fn cosine_distance_matches_a_software_reference() {
        let mut engine = KnnEngine::new();
        for dim in [2usize, 8, 9, 24] {
            let data = dataset(dim, 4);
            let got = engine.cosine_distance(&data[2], &data[3]);
            let dot: f32 = data[2].iter().zip(&data[3]).map(|(a, b)| a * b).sum();
            let na: f32 = data[2].iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = data[3].iter().map(|x| x * x).sum::<f32>().sqrt();
            let expect = 1.0 - dot / (na * nb);
            assert!((got - expect).abs() < 1e-4, "dim {dim}: {got} vs {expect}");
        }
    }

    #[test]
    fn k_nearest_matches_brute_force_ordering() {
        let data = dataset(24, 50);
        let query = data[7].clone();
        let mut engine = KnnEngine::new();
        let neighbors = engine.k_nearest(
            &query,
            &data,
            5,
            KnnMetric::Euclidean,
            &ExecPolicy::wavefront(),
        );
        assert_eq!(neighbors.len(), 5);
        // The query itself is in the dataset, so the nearest neighbour is itself at distance 0.
        assert_eq!(neighbors[0].index, 7);
        assert_eq!(neighbors[0].distance, 0.0);
        // Distances are non-decreasing.
        for pair in neighbors.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
        // Compare against a full software sort.
        let mut reference: Vec<(usize, f32)> = data
            .iter()
            .enumerate()
            .map(|(i, v)| (i, golden::distance::euclidean_distance_squared(&query, v)))
            .collect();
        reference.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        for (n, (ri, rd)) in neighbors.iter().zip(reference.iter()) {
            assert_eq!(n.index, *ri);
            assert_eq!(n.distance.to_bits(), rd.to_bits());
        }
        // The whole dataset was scored in one batched run, all through distance beats.
        assert_eq!(engine.stats().candidates, 50);
        assert_eq!(
            engine.beat_mix().count(Opcode::Euclidean),
            engine.stats().beats
        );
    }

    /// The pre-top-k reference: sort *all* scored candidates by `(distance, index)`.
    fn full_sort_reference(distances: &[f32], k: usize) -> Vec<Neighbor> {
        let mut scored: Vec<Neighbor> = distances
            .iter()
            .enumerate()
            .map(|(index, &distance)| Neighbor { index, distance })
            .collect();
        scored.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(core::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        scored.truncate(k);
        scored
    }

    #[test]
    fn bounded_top_k_matches_the_full_sort_path() {
        // Distances with plenty of duplicates so the index tie-breaking is exercised, across
        // every interesting k (0, 1, mid, n-1, n, > n) and slice lengths off the quad boundary.
        for count in [0usize, 1, 3, 4, 5, 17, 64, 101] {
            let distances: Vec<f32> = (0..count)
                .map(|i| ((i * 7 + 3) % 13) as f32 * 0.5)
                .collect();
            for k in [0usize, 1, 2, count.saturating_sub(1), count, count + 5] {
                let got = select_k_nearest(&distances, k);
                let expected = full_sort_reference(&distances, k);
                assert_eq!(got.len(), expected.len(), "count {count}, k {k}");
                for (g, e) in got.iter().zip(&expected) {
                    assert_eq!(g.index, e.index, "count {count}, k {k}");
                    assert_eq!(
                        g.distance.to_bits(),
                        e.distance.to_bits(),
                        "count {count}, k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn nan_distances_are_never_selected_by_the_bounded_top_k() {
        let distances = [3.0f32, f32::NAN, 1.0, f32::NAN, 2.0, 4.0];
        let got = select_k_nearest(&distances, 4);
        let indices: Vec<usize> = got.iter().map(|n| n.index).collect();
        assert_eq!(indices, vec![2, 4, 0, 5], "NaN candidates sort as +inf");
        assert!(got.iter().all(|n| !n.distance.is_nan()));
        // Even when k exceeds the finite candidate count, NaN never enters the result.
        assert_eq!(select_k_nearest(&distances, 6).len(), 4);
        assert!(select_k_nearest(&[f32::NAN; 3], 2).is_empty());
        // A genuine +inf distance ties with a NaN lane's miss key inside the quad-sort network;
        // it must still be selected (regression test: the NaN lane used to end the quad scan).
        let infinity_after_nan = select_k_nearest(&[f32::NAN, f32::INFINITY], 1);
        assert_eq!(infinity_after_nan.len(), 1);
        assert_eq!(infinity_after_nan[0].index, 1);
        assert_eq!(infinity_after_nan[0].distance, f32::INFINITY);
    }

    #[test]
    fn k_nearest_equals_the_full_sort_of_its_own_distances() {
        let data = dataset(24, 75);
        let query = data[11].clone();
        let mut engine = KnnEngine::new();
        let neighbors = engine.k_nearest(
            &query,
            &data,
            9,
            KnnMetric::Euclidean,
            &ExecPolicy::wavefront(),
        );
        let distances = KnnEngine::new().distances(
            &query,
            &data,
            KnnMetric::Euclidean,
            &ExecPolicy::wavefront(),
        );
        assert_eq!(neighbors, full_sort_reference(&distances, 9));
    }

    #[test]
    fn sharded_parallel_scoring_matches_wavefront_above_the_shard_floor() {
        // More than two full shards of candidates force real worker sharding (the matrix
        // proptest stays below MIN_CANDIDATES_PER_SHARD and only exercises the inline
        // fallback), pinning the spawn path's result order and merged statistics.
        let data = dataset(17, 2 * KnnEngine::MIN_CANDIDATES_PER_SHARD + 5);
        let query = data[3].clone();
        let mut wavefront = KnnEngine::new();
        let expected = wavefront.distances(
            &query,
            &data,
            KnnMetric::Euclidean,
            &ExecPolicy::wavefront(),
        );
        for threads in [2usize, 3, 8] {
            let mut parallel = KnnEngine::new();
            let got = parallel.distances(
                &query,
                &data,
                KnnMetric::Euclidean,
                &ExecPolicy::parallel(threads),
            );
            for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(e.to_bits(), g.to_bits(), "threads {threads} candidate {i}");
            }
            assert_eq!(parallel.stats(), wavefront.stats(), "threads {threads}");
        }
    }

    #[test]
    fn fused_distance_streams_match_engine_scoring() {
        use crate::query::FusedScheduler;

        let data = dataset(19, 14);
        let query = data[2].clone();
        let mut engine = KnnEngine::new();
        let expected = engine.distances(
            &query,
            &data,
            KnnMetric::Euclidean,
            &ExecPolicy::wavefront(),
        );

        let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
        let mut stream = DistanceStream::new(&query, &data, KnnMetric::Euclidean);
        let mut fused = FusedScheduler::new();
        fused.run(&mut datapath, &mut [&mut stream]);
        let (distances, stats) = stream.finish();
        for (i, (e, g)) in expected.iter().zip(&distances).enumerate() {
            assert_eq!(e.to_bits(), g.to_bits(), "candidate {i}");
        }
        assert_eq!(stats, engine.stats());
        assert_eq!(
            datapath.beat_mix().kind_total(QueryKind::Distance),
            stats.beats
        );
    }

    #[test]
    fn cosine_metric_prefers_aligned_vectors() {
        let dataset = vec![
            vec![1.0, 0.0, 0.0, 0.0],
            vec![10.0, 0.1, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![-1.0, 0.0, 0.0, 0.0],
        ];
        let query = vec![2.0, 0.0, 0.0, 0.0];
        let mut engine = KnnEngine::new();
        let neighbors = engine.k_nearest(
            &query,
            &dataset,
            4,
            KnnMetric::Cosine,
            &ExecPolicy::wavefront(),
        );
        assert_eq!(neighbors[0].index, 0, "exactly aligned vector is nearest");
        assert_eq!(neighbors[3].index, 3, "opposite vector is farthest");
    }

    #[test]
    #[should_panic(expected = "extended datapath")]
    fn baseline_configurations_are_rejected() {
        let _ = KnnEngine::with_config(PipelineConfig::baseline_unified());
    }

    #[test]
    fn zero_norm_candidates_get_maximum_cosine_distance() {
        let mut engine = KnnEngine::new();
        let d = engine.cosine_distance(&[1.0, 2.0], &[0.0, 0.0]);
        assert_eq!(d, 1.0);
    }

    #[test]
    #[should_panic(expected = "vector dimensions must match")]
    fn mismatched_dimensions_are_rejected() {
        let mut engine = KnnEngine::new();
        let _ = engine.euclidean_distance_squared(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn try_distances_rejects_bad_vectors_before_any_beat() {
        let mut engine = KnnEngine::new();
        let policy = ExecPolicy::wavefront();
        type Case<'a> = (&'a [f32], Vec<Vec<f32>>, &'a str);
        let cases: [Case; 3] = [
            (&[1.0, f32::NAN], vec![vec![0.0, 1.0]], "query"),
            (&[1.0, 2.0], vec![vec![0.0]], "dimension"),
            (&[1.0, 2.0], vec![vec![0.0, f32::INFINITY]], "candidate 0"),
        ];
        for (query, candidates, needle) in cases {
            let err = engine
                .try_distances(query, &candidates, KnnMetric::Euclidean, &policy)
                .unwrap_err();
            let QueryError::InvalidRequest { reason } = &err else {
                panic!("expected InvalidRequest, got {err}");
            };
            assert!(reason.contains(needle), "{reason}");
        }
        assert_eq!(
            engine.stats(),
            KnnStats::default(),
            "rejected requests must not issue a single beat"
        );
    }

    #[test]
    fn try_distances_without_a_deadline_matches_distances_in_every_mode() {
        let data = dataset(17, 20);
        let query = data[5].clone();
        let policies = [
            ExecPolicy::scalar(),
            ExecPolicy::wavefront(),
            ExecPolicy::parallel(2),
            ExecPolicy::fused(),
            ExecPolicy::fused().with_beat_budget(3),
        ];
        for policy in policies {
            let expected = KnnEngine::new().distances(&query, &data, KnnMetric::Euclidean, &policy);
            let mut engine = KnnEngine::new();
            let outcome = engine
                .try_distances(&query, &data, KnnMetric::Euclidean, &policy)
                .unwrap();
            assert!(outcome.is_complete(), "{}", policy.mode);
            for (i, (e, g)) in expected.iter().zip(outcome.output()).enumerate() {
                assert_eq!(e.to_bits(), g.to_bits(), "{} candidate {i}", policy.mode);
            }
        }
    }

    #[test]
    fn a_capped_distance_run_returns_a_bit_identical_completed_prefix() {
        // dim 8 = one Euclidean beat per candidate; a fused beat budget of 4 admits 4 candidates
        // per shared pass, and a candidate retires on its *next* build call.  A 10-beat deadline
        // cancels at the boundary after the third pass (12 beats spent), when exactly the first
        // 8 candidates have retired.
        let data = dataset(8, 20);
        let query = data[0].clone();
        let uncapped = KnnEngine::new().distances(
            &query,
            &data,
            KnnMetric::Euclidean,
            &ExecPolicy::wavefront(),
        );

        let capped_policy = ExecPolicy::fused()
            .with_beat_budget(4)
            .with_max_total_beats(10);
        let mut engine = KnnEngine::new();
        let outcome = engine
            .try_distances(&query, &data, KnnMetric::Euclidean, &capped_policy)
            .unwrap();
        let partial = outcome.partial().expect("the deadline must fire");
        assert_eq!(partial.completed, 8);
        assert_eq!(partial.total, 20);
        assert_eq!(partial.output.len(), 8);
        assert_eq!(
            partial.beats_spent, 12,
            "cancellation overshoots by the pass in flight"
        );
        for (i, (e, g)) in uncapped.iter().zip(&partial.output).enumerate() {
            assert_eq!(e.to_bits(), g.to_bits(), "prefix candidate {i}");
        }

        let generous = ExecPolicy::fused()
            .with_beat_budget(4)
            .with_max_total_beats(u64::MAX);
        let outcome = KnnEngine::new()
            .try_distances(&query, &data, KnnMetric::Euclidean, &generous)
            .unwrap();
        assert!(outcome.is_complete());
        for (e, g) in uncapped.iter().zip(outcome.output()) {
            assert_eq!(e.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn try_k_nearest_surfaces_deadlines_as_typed_errors() {
        let data = dataset(8, 20);
        let query = data[3].clone();
        let expected = KnnEngine::new().k_nearest(
            &query,
            &data,
            4,
            KnnMetric::Euclidean,
            &ExecPolicy::wavefront(),
        );
        let got = KnnEngine::new()
            .try_k_nearest(
                &query,
                &data,
                4,
                KnnMetric::Euclidean,
                &ExecPolicy::wavefront(),
            )
            .unwrap();
        assert_eq!(got, expected);

        // A top-k over a partial score set would be silently wrong, so a fired deadline is an
        // error for this global reduction.
        let capped = ExecPolicy::fused()
            .with_beat_budget(4)
            .with_max_total_beats(10);
        let err = KnnEngine::new()
            .try_k_nearest(&query, &data, 4, KnnMetric::Euclidean, &capped)
            .unwrap_err();
        assert!(
            matches!(
                err,
                QueryError::DeadlineExceeded {
                    max_total_beats: 10,
                    ..
                }
            ),
            "{err}"
        );
    }
}
