//! Execution policies: **one** policy-driven entry point per query kind instead of a method per
//! execution mode.
//!
//! Four PRs of growth each added named method variants — `closest_hits` /
//! `closest_hits_wavefront` / `trace_fused` / `trace_fused_parallel`, six `render_deferred*`
//! flavours — turning the public surface into an M×N matrix of query kinds × execution modes.
//! The paper's unified-RT-unit premise is that *one datapath serves heterogeneous query kinds*;
//! the API mirrors that now: every engine exposes a single entry point per query kind
//! ([`TraversalEngine::trace`](crate::TraversalEngine::trace),
//! [`Renderer::render`](crate::Renderer::render),
//! [`KnnEngine::distances`](crate::KnnEngine::distances) /
//! [`KnnEngine::k_nearest`](crate::KnnEngine::k_nearest),
//! [`HierarchicalSearch::radius_queries`](crate::HierarchicalSearch::radius_queries)) that takes
//! an [`ExecPolicy`] selecting *how* the work is dispatched.  New execution axes (SIMD packets,
//! rayon pools, QoS knobs) compose into the policy instead of multiplying the method matrix
//! again.
//!
//! The cross-policy contract is the repository's tentpole invariant, stated once and enforced
//! everywhere by `rtunit/tests/proptest_policy.rs`: **every [`ExecMode`] produces bit-identical
//! outputs and identical statistics** for the same request.  Modes differ only in dispatch —
//! per-beat emulated execution, bulk wavefront passes, shared fused passes, or sharded worker
//! threads — never in the per-item beat sequence.

/// How many worker shards an [`ExecMode::Parallel`] run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardHint {
    /// Use the machine's available parallelism
    /// ([`default_parallelism`](crate::default_parallelism)).
    #[default]
    Auto,
    /// Request exactly this many workers.  The effective count is still auto-tuned downward so
    /// no shard drops below the minimum profitable size
    /// ([`MIN_RAYS_PER_SHARD`](crate::MIN_RAYS_PER_SHARD)); the degenerate `Count(0)` is clamped
    /// to 1 at policy resolution, so `Count(0)` and `Count(1)` both run inline on the calling
    /// thread — a zero-worker request never reaches the pool.
    Count(usize),
}

impl ShardHint {
    /// The worker count this hint requests, resolving [`ShardHint::Auto`] to the machine's
    /// available parallelism and clamping the degenerate `Count(0)` to one worker.  Always ≥ 1.
    #[must_use]
    pub fn requested_threads(self) -> usize {
        match self {
            ShardHint::Auto => crate::parallel::default_parallelism(),
            ShardHint::Count(count) => count.max(1),
        }
    }
}

/// The coherence discipline of the batched dispatch modes: how a scheduler orders and packs
/// the items of each pass before their beats reach the datapath.
///
/// Coherence moves *dispatch order only* — every item's own beat sequence is unchanged and
/// results are reassembled by item index — so outputs and per-item statistics are bit-identical
/// in every mode; only throughput statistics ([`BeatMix::passes`](rayflex_core::BeatMix::passes),
/// [`BeatMix::simd_lane_occupancy`](rayflex_core::BeatMix::simd_lane_occupancy)) move.
/// [`ExecMode::ScalarReference`] dispatches one emulated beat at a time and ignores the knob by
/// definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoherenceMode {
    /// Admit items in caller order (the pre-coherence behaviour).
    Off,
    /// Sort the admission order once by ray octant + origin Morton key
    /// ([`RayOperand::coherence_key`](rayflex_core::RayOperand::coherence_key)), so rays that
    /// traverse similar node sequences build adjacent pass slots.
    SortOnly,
    /// [`CoherenceMode::SortOnly`] plus opcode-bucketed pass packing: each pass's ray–triangle
    /// trains are deferred behind its ray–box beats, so box beats pair into eight-wide issues
    /// and triangle trains concatenate into long same-opcode runs.  The default for the batched
    /// modes.
    #[default]
    SortAndCompact,
}

impl CoherenceMode {
    /// Every coherence mode, in off-first order (the sweep order of the policy matrix tests).
    pub const ALL: [CoherenceMode; 3] = [
        CoherenceMode::Off,
        CoherenceMode::SortOnly,
        CoherenceMode::SortAndCompact,
    ];

    /// A short stable name for reports and CLI flags (`off`, `sort`, `sort-compact`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CoherenceMode::Off => "off",
            CoherenceMode::SortOnly => "sort",
            CoherenceMode::SortAndCompact => "sort-compact",
        }
    }
}

/// The admission ordering of the fused scheduler's shared passes: which stream's beat segment
/// is issued first when several streams merge into one pass.
///
/// This is the deadline-aware reordering left open since the QoS work landed: an online server
/// coalescing requests from many clients wants the stream closest to its deadline issued at the
/// front of every shared pass, so its beats (and its per-pass budget share) are the first
/// through the datapath.  Admission order moves *issue order only* — per-stream outputs and
/// statistics are admission-order-invariant (segments stay contiguous and results demux by
/// stream), which `rtunit/tests/proptest_policy.rs` pins alongside the other dispatch knobs.
///
/// Streams without a deadline (`0`) sort after every deadline-carrying stream, tied by stream
/// index, so [`AdmissionOrder::EarliestDeadlineFirst`] with no deadlines set is exactly
/// [`AdmissionOrder::Fifo`].  The sharded [`ExecMode::Parallel`] backend ignores the knob (each
/// worker owns a contiguous slice, so there is no cross-stream issue order to choose), which is
/// observationally indistinguishable by the invariance above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionOrder {
    /// Streams are admitted in caller order (the pre-deadline behaviour).
    #[default]
    Fifo,
    /// Streams are admitted earliest-deadline-first: segments of each shared pass are built and
    /// issued in ascending deadline order (deadline `0` = none = last; ties by stream index).
    EarliestDeadlineFirst,
}

impl AdmissionOrder {
    /// Every admission order, in FIFO-first order (the sweep order of the policy matrix tests).
    pub const ALL: [AdmissionOrder; 2] =
        [AdmissionOrder::Fifo, AdmissionOrder::EarliestDeadlineFirst];

    /// A short stable name for reports and CLI flags (`fifo`, `edf`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionOrder::Fifo => "fifo",
            AdmissionOrder::EarliestDeadlineFirst => "edf",
        }
    }

    /// Parses a CLI-style order name (`fifo`, `edf`, case-insensitive), or `None` for anything
    /// else.
    #[must_use]
    pub fn parse(name: &str) -> Option<AdmissionOrder> {
        match name.to_ascii_lowercase().as_str() {
            "fifo" => Some(AdmissionOrder::Fifo),
            "edf" => Some(AdmissionOrder::EarliestDeadlineFirst),
            _ => None,
        }
    }
}

impl core::fmt::Display for AdmissionOrder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The execution mode of a policy: *how* a query's beats reach the datapath.
///
/// All modes produce bit-identical outputs and statistics for the same request (the per-item
/// beat sequence is mode-invariant); they differ in dispatch style and therefore in throughput
/// and in what they model:
///
/// | Mode | Dispatch | Models |
/// |---|---|---|
/// | [`ScalarReference`](ExecMode::ScalarReference) | one emulated beat at a time | the register-accurate reference |
/// | [`Wavefront`](ExecMode::Wavefront) | bulk single-kind passes | one RT unit, one query kind in flight |
/// | [`Parallel`](ExecMode::Parallel) | sharded worker threads | several RT units side by side |
/// | [`Fused`](ExecMode::Fused) | shared mixed-kind bulk passes | one unified RT unit time-multiplexing kinds |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The scalar reference: every beat executes one at a time through the register-accurate
    /// emulated datapath.  Slow, and the semantic anchor every other mode is pinned against.
    ScalarReference,
    /// The batched wavefront: the whole stream stays in flight and each pass dispatches one bulk
    /// batch of beats through the fast model.  The single-threaded throughput mode.
    #[default]
    Wavefront,
    /// The wavefront sharded across worker threads, each worker a private datapath.  Per-shard
    /// statistics are merged by summation, so totals equal the single-threaded modes exactly.
    /// Per-beat `BeatMix` attribution stays on the worker datapaths, though: after a genuinely
    /// sharded run the calling engine's own `beat_mix` records nothing (a run small enough to
    /// fall back inline attributes normally).
    Parallel {
        /// Worker-count hint; shard sizing is still auto-tuned (see [`ShardHint`]).
        shards: ShardHint,
    },
    /// The fused multi-stream discipline: all of the request's streams share mixed-kind bulk
    /// passes over one datapath — the paper's unified RT unit time-multiplexing query kinds.
    /// Honours [`ExecPolicy::beat_budget_per_stream`].
    Fused,
}

impl ExecMode {
    /// Every execution mode, in reference-first order (the sweep order of the policy matrix
    /// tests and benches).
    pub const ALL: [ExecMode; 4] = [
        ExecMode::ScalarReference,
        ExecMode::Wavefront,
        ExecMode::Parallel {
            shards: ShardHint::Auto,
        },
        ExecMode::Fused,
    ];

    /// A short stable name for reports and CLI flags (`scalar`, `wavefront`, `parallel`,
    /// `fused`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::ScalarReference => "scalar",
            ExecMode::Wavefront => "wavefront",
            ExecMode::Parallel { .. } => "parallel",
            ExecMode::Fused => "fused",
        }
    }

    /// Parses a CLI-style mode name (`scalar`, `wavefront`, `parallel`, `fused`,
    /// case-insensitive), or `None` for anything else.  `parallel` resolves its shard count
    /// automatically.
    #[must_use]
    pub fn parse(name: &str) -> Option<ExecMode> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(ExecMode::ScalarReference),
            "wavefront" => Some(ExecMode::Wavefront),
            "parallel" => Some(ExecMode::Parallel {
                shards: ShardHint::Auto,
            }),
            "fused" => Some(ExecMode::Fused),
            _ => None,
        }
    }
}

impl core::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// An execution policy: the [`ExecMode`] plus the fusion/fairness knobs, built builder-style and
/// passed to every policy-taking entry point.
///
/// ```
/// use rayflex_rtunit::{ExecMode, ExecPolicy};
///
/// let qos = ExecPolicy::fused().with_beat_budget(4);
/// assert_eq!(qos.mode, ExecMode::Fused);
/// assert_eq!(qos.beat_budget_per_stream, 4);
/// assert_eq!(ExecPolicy::default().mode, ExecMode::Wavefront);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecPolicy {
    /// How the query's beats are dispatched.
    pub mode: ExecMode,
    /// Fairness knob of [`ExecMode::Fused`]: the maximum beats one stream may contribute to one
    /// shared pass.  `0` means unlimited (every active item builds each pass — the classic fused
    /// discipline); `1` means strict round-robin admission (one item's beat train per stream per
    /// pass).  A single item's beat train is never split across passes, so the last admitted
    /// item may overshoot the budget by its train's tail.  Ignored by the other modes; outputs
    /// and statistics are budget-invariant — only pass structure changes.
    pub beat_budget_per_stream: usize,
    /// Deadline / cooperative-cancellation knob: the total datapath beats a single `try_*` call
    /// may spend before cancelling, or `0` (the default) for no deadline.
    ///
    /// The budget is checked **at pass boundaries** (the cooperative cancellation points of
    /// [`WavefrontScheduler`](crate::WavefrontScheduler) and
    /// [`FusedScheduler`](crate::FusedScheduler)), so a run never stops mid-pass: the first pass
    /// always executes, and the run may overshoot the budget by the beats of the pass in flight
    /// when it crossed the line.  A cancelled run returns a typed partial result — the outputs
    /// of the longest fully-completed item prefix plus per-stream progress — through the `try_*`
    /// entry points ([`QueryOutcome::Partial`](crate::QueryOutcome::Partial)); entry points
    /// whose output is a global reduction (a whole frame, a top-k set) fail with
    /// [`QueryError::DeadlineExceeded`](crate::QueryError::DeadlineExceeded) instead.  The
    /// non-`try_*` entry points ignore the knob entirely and always run to completion.
    pub max_total_beats: u64,
    /// SIMD lane width of the batched dispatch paths: how many beats (or one beat's four AABBs)
    /// the datapath's lane-batched kernels evaluate per step.  `0` (the unset default) and `1`
    /// both select the per-beat scalar fast path; `4` and `8` engage the lane kernels; other
    /// values are clamped by [`ExecPolicy::effective_simd_lanes`].  Ignored by
    /// [`ExecMode::ScalarReference`], which always runs the register-accurate per-beat emulation
    /// — the oracle the lane kernels are pinned against.  Outputs and statistics are
    /// lane-invariant (bit-identical across widths); only throughput changes.
    pub simd_lanes: usize,
    /// Coherence discipline of the batched dispatch modes (see [`CoherenceMode`]): whether each
    /// scheduler sorts its admission order by ray octant + origin Morton key and packs passes
    /// into dense same-opcode trains.  Defaults to [`CoherenceMode::SortAndCompact`] for
    /// Wavefront/Parallel/Fused; [`ExecMode::ScalarReference`] ignores it by definition.
    /// Outputs and per-item statistics are coherence-invariant (bit-identical across modes);
    /// only pass structure and lane occupancy change.
    pub coherence: CoherenceMode,
    /// Admission ordering of the fused scheduler's shared passes (see [`AdmissionOrder`]):
    /// whether streams issue their pass segments in caller order or earliest-deadline-first.
    /// Deadlines ride on the request ([`TraceRequest::with_stream_deadlines`](crate::TraceRequest::with_stream_deadlines));
    /// with no deadlines set the knob is inert.  Outputs and per-stream statistics are
    /// admission-order-invariant (bit-identical across orders); only issue order within each
    /// shared pass changes.
    pub admission_order: AdmissionOrder,
}

impl ExecPolicy {
    /// The default policy: single-threaded batched wavefront dispatch, no beat budget.
    #[must_use]
    pub fn new() -> Self {
        ExecPolicy::default()
    }

    /// The scalar register-accurate reference mode.
    #[must_use]
    pub fn scalar() -> Self {
        ExecPolicy {
            mode: ExecMode::ScalarReference,
            ..ExecPolicy::default()
        }
    }

    /// The batched wavefront mode (the default).
    #[must_use]
    pub fn wavefront() -> Self {
        ExecPolicy::default()
    }

    /// The thread-parallel mode with auto-tuned worker count.
    #[must_use]
    pub fn parallel_auto() -> Self {
        ExecPolicy {
            mode: ExecMode::Parallel {
                shards: ShardHint::Auto,
            },
            ..ExecPolicy::default()
        }
    }

    /// The thread-parallel mode with an explicit worker-count hint.
    #[must_use]
    pub fn parallel(threads: usize) -> Self {
        ExecPolicy {
            mode: ExecMode::Parallel {
                shards: ShardHint::Count(threads),
            },
            ..ExecPolicy::default()
        }
    }

    /// The fused shared-pass mode.
    #[must_use]
    pub fn fused() -> Self {
        ExecPolicy {
            mode: ExecMode::Fused,
            ..ExecPolicy::default()
        }
    }

    /// A policy of the given mode with default knobs.
    #[must_use]
    pub fn with_mode(mode: ExecMode) -> Self {
        ExecPolicy {
            mode,
            ..ExecPolicy::default()
        }
    }

    /// Sets the per-stream beat budget of fused passes (see
    /// [`ExecPolicy::beat_budget_per_stream`]).
    #[must_use]
    pub fn with_beat_budget(mut self, beats_per_stream_per_pass: usize) -> Self {
        self.beat_budget_per_stream = beats_per_stream_per_pass;
        self
    }

    /// Sets the deadline knob: the total datapath beats a `try_*` call may spend before
    /// cooperatively cancelling at the next pass boundary (see
    /// [`ExecPolicy::max_total_beats`]).  `0` disables the deadline.
    #[must_use]
    pub fn with_max_total_beats(mut self, max_total_beats: u64) -> Self {
        self.max_total_beats = max_total_beats;
        self
    }

    /// Sets the SIMD lane width of the batched dispatch paths (see
    /// [`ExecPolicy::simd_lanes`]).  The value is stored as given and clamped at resolution.
    #[must_use]
    pub fn with_simd_lanes(mut self, lanes: usize) -> Self {
        self.simd_lanes = lanes;
        self
    }

    /// Sets the coherence discipline of the batched dispatch modes (see
    /// [`ExecPolicy::coherence`]).
    #[must_use]
    pub fn with_coherence(mut self, coherence: CoherenceMode) -> Self {
        self.coherence = coherence;
        self
    }

    /// Sets the admission ordering of the fused scheduler's shared passes (see
    /// [`ExecPolicy::admission_order`]).
    #[must_use]
    pub fn with_admission_order(mut self, admission_order: AdmissionOrder) -> Self {
        self.admission_order = admission_order;
        self
    }

    /// The clamped SIMD lane width the engines hand to the datapath: degenerate requests (0)
    /// resolve to 1, oversized requests saturate at
    /// [`rayflex_core::MAX_SIMD_LANES`], and the `force-scalar` build pins everything to 1.
    #[must_use]
    pub fn effective_simd_lanes(&self) -> usize {
        rayflex_core::clamp_simd_lanes(self.simd_lanes)
    }

    /// The coherence mode this policy actually admits under:
    /// [`ExecMode::ScalarReference`] always resolves to [`CoherenceMode::Off`] — each ray walks
    /// alone, so there is no admission order to sort — while the batched modes use the stored
    /// knob verbatim.
    #[must_use]
    pub fn effective_coherence(&self) -> CoherenceMode {
        if self.mode == ExecMode::ScalarReference {
            CoherenceMode::Off
        } else {
            self.coherence
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip_through_parse() {
        for mode in ExecMode::ALL {
            assert_eq!(ExecMode::parse(mode.name()), Some(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
        assert_eq!(ExecMode::parse("warp"), None);
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(ExecMode::parse("Scalar"), Some(ExecMode::ScalarReference));
        assert_eq!(ExecMode::parse("WAVEFRONT"), Some(ExecMode::Wavefront));
        assert_eq!(
            ExecMode::parse("Parallel"),
            Some(ExecMode::Parallel {
                shards: ShardHint::Auto
            })
        );
        assert_eq!(ExecMode::parse("FuSeD"), Some(ExecMode::Fused));
        assert_eq!(ExecMode::parse("WARP"), None);
    }

    #[test]
    fn the_deadline_knob_defaults_off_and_builds() {
        assert_eq!(ExecPolicy::new().max_total_beats, 0);
        let capped = ExecPolicy::wavefront().with_max_total_beats(512);
        assert_eq!(capped.max_total_beats, 512);
        assert_eq!(capped.mode, ExecMode::Wavefront);
        assert_eq!(
            ExecPolicy::fused()
                .with_beat_budget(2)
                .with_max_total_beats(64)
                .beat_budget_per_stream,
            2
        );
    }

    #[test]
    fn builders_set_the_expected_modes() {
        assert_eq!(ExecPolicy::scalar().mode, ExecMode::ScalarReference);
        assert_eq!(ExecPolicy::wavefront(), ExecPolicy::default());
        assert_eq!(
            ExecPolicy::parallel(3).mode,
            ExecMode::Parallel {
                shards: ShardHint::Count(3)
            }
        );
        assert_eq!(
            ExecPolicy::parallel_auto().mode,
            ExecMode::Parallel {
                shards: ShardHint::Auto
            }
        );
        assert_eq!(
            ExecPolicy::fused().with_beat_budget(1).mode,
            ExecMode::Fused
        );
        assert_eq!(ExecPolicy::new().beat_budget_per_stream, 0);
        assert_eq!(
            ExecPolicy::with_mode(ExecMode::Fused).with_beat_budget(7),
            ExecPolicy::fused().with_beat_budget(7)
        );
    }

    #[test]
    fn shard_hints_resolve_to_positive_worker_counts() {
        assert!(ShardHint::Auto.requested_threads() >= 1);
        assert_eq!(ShardHint::Count(5).requested_threads(), 5);
        assert_eq!(ShardHint::default(), ShardHint::Auto);
    }

    #[test]
    fn degenerate_zero_worker_hints_clamp_to_one_at_resolution() {
        assert_eq!(
            ShardHint::Count(0).requested_threads(),
            1,
            "a zero-worker request must never reach the pool"
        );
        assert_eq!(ShardHint::Count(1).requested_threads(), 1);
        // The policy builders go through the same resolution path.
        let ExecMode::Parallel { shards } = ExecPolicy::parallel(0).mode else {
            panic!("parallel(0) must still build a Parallel policy");
        };
        assert_eq!(shards.requested_threads(), 1);
    }

    #[test]
    fn the_coherence_knob_defaults_to_sort_and_compact_and_composes() {
        assert_eq!(
            ExecPolicy::default().coherence,
            CoherenceMode::SortAndCompact
        );
        assert_eq!(CoherenceMode::default(), CoherenceMode::SortAndCompact);
        let off = ExecPolicy::wavefront().with_coherence(CoherenceMode::Off);
        assert_eq!(off.coherence, CoherenceMode::Off);
        assert_eq!(off.mode, ExecMode::Wavefront);
        let composed = ExecPolicy::fused()
            .with_beat_budget(2)
            .with_coherence(CoherenceMode::SortOnly)
            .with_simd_lanes(8);
        assert_eq!(composed.coherence, CoherenceMode::SortOnly);
        assert_eq!(composed.beat_budget_per_stream, 2);
        assert_eq!(composed.simd_lanes, 8);
        let names: Vec<_> = CoherenceMode::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["off", "sort", "sort-compact"]);
    }

    #[test]
    fn the_admission_order_knob_defaults_to_fifo_and_composes() {
        assert_eq!(ExecPolicy::default().admission_order, AdmissionOrder::Fifo);
        assert_eq!(AdmissionOrder::default(), AdmissionOrder::Fifo);
        let edf = ExecPolicy::fused()
            .with_beat_budget(1)
            .with_admission_order(AdmissionOrder::EarliestDeadlineFirst);
        assert_eq!(
            edf.admission_order,
            AdmissionOrder::EarliestDeadlineFirst,
            "the builder stores the knob"
        );
        assert_eq!(edf.beat_budget_per_stream, 1, "composes with QoS");
        for order in AdmissionOrder::ALL {
            assert_eq!(AdmissionOrder::parse(order.name()), Some(order));
            assert_eq!(order.to_string(), order.name());
        }
        assert_eq!(
            AdmissionOrder::parse("EDF"),
            Some(AdmissionOrder::EarliestDeadlineFirst)
        );
        assert_eq!(AdmissionOrder::parse("lifo"), None);
    }

    #[test]
    fn simd_lane_requests_clamp_at_policy_resolution() {
        // The stored field is verbatim; resolution clamps.
        assert_eq!(ExecPolicy::default().simd_lanes, 0);
        assert_eq!(ExecPolicy::default().effective_simd_lanes(), 1);
        assert_eq!(
            ExecPolicy::wavefront()
                .with_simd_lanes(0)
                .effective_simd_lanes(),
            1,
            "lane-count 0 resolves to the scalar width"
        );
        if rayflex_core::clamp_simd_lanes(8) == 1 {
            // The force-scalar build: every request resolves to the scalar width.
            assert_eq!(
                ExecPolicy::wavefront()
                    .with_simd_lanes(8)
                    .effective_simd_lanes(),
                1
            );
        } else {
            assert_eq!(
                ExecPolicy::wavefront()
                    .with_simd_lanes(4)
                    .effective_simd_lanes(),
                4
            );
            assert_eq!(
                ExecPolicy::parallel(2)
                    .with_simd_lanes(8)
                    .effective_simd_lanes(),
                8
            );
            assert_eq!(
                ExecPolicy::fused()
                    .with_simd_lanes(1000)
                    .effective_simd_lanes(),
                rayflex_core::MAX_SIMD_LANES,
                "oversized requests saturate at the widest kernel"
            );
        }
        // The knob composes with the other builders without disturbing them.
        let policy = ExecPolicy::fused().with_beat_budget(2).with_simd_lanes(4);
        assert_eq!(policy.beat_budget_per_stream, 2);
        assert_eq!(policy.simd_lanes, 4);
    }
}
