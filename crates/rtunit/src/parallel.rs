//! Thread-parallel ray-stream tracing — the sharding machinery behind
//! [`ExecMode::Parallel`](crate::ExecMode::Parallel).
//!
//! The datapath model is deterministic and per-ray traversal state is independent, so a ray
//! stream shards trivially: each worker owns a private [`TraversalEngine`] (and therefore a
//! private functional datapath — ray–box and ray–triangle beats carry no cross-beat state) and
//! traverses a contiguous chunk of the stream with the fused wavefront discipline.  Hits are
//! returned in the caller's ray order and per-shard [`TraversalStats`] are summed, so a parallel
//! run reports exactly the same hits and statistics as a single-threaded one — only wall-clock
//! time changes.
//!
//! **Auto-tuned sharding:** spawning workers costs real time, and on one core (or for short
//! streams) the parallel mode used to be *slower* than the plain batched path
//! (`BENCH_baseline.json` of PR 1 showed exactly that on all three scenes).  The sharding
//! therefore clamps the worker count so every chunk carries at least [`MIN_RAYS_PER_SHARD`] rays
//! (the remainder chunk may run up to `workers - 1` rays short of the floor), and when the
//! effective count is one it runs the batched wavefront inline on the calling thread — no
//! spawn, no join, identical results.
//!
//! **Work stealing:** fixed index-range shards (one per worker) idle workers whenever traversal
//! depth is uneven — a worker whose shadow rays all retire early sits joined while another grinds
//! through deep bounce rays.  The pool here ([`steal_map`]) is a small hand-rolled
//! chunk-queue-plus-stealing-deque (vendored like the existing rand/proptest shims — no network
//! dependencies): the stream is cut into *more chunks than workers* (up to
//! [`CHUNKS_PER_WORKER`] each, never below the [`MIN_RAYS_PER_SHARD`] floor), the chunks are
//! dealt round-robin onto per-worker deques, and each worker drains its own deque from the front
//! then steals from the *back* of a victim's.  Chunk results are written back by chunk index, so
//! hits assemble in the caller's order no matter which worker ran what; statistics merge by
//! summation and are order-invariant.  Per-run pool utilisation (workers, chunks, steals) is
//! reported as [`PoolStats`] — observability only, deliberately kept out of the mode-invariant
//! [`TraversalStats`].
//!
//! Workers are plain `std::thread::scope` threads rather than a `rayon` pool: the build
//! environment vendors no external crates, and scoped threads let the workers borrow the scene
//! and the chunk queues directly.
//!
//! **Panic isolation:** a panicking worker no longer takes the whole query down.  Every join
//! site observes the worker's panic (via the `Err` of [`std::thread::Scope`] join handles) and
//! retries the poisoned shard's index range **once, inline on the calling thread** — for
//! traversal shards through the scalar reference path, whose outputs and statistics are
//! bit-identical to the fused discipline by the cross-policy invariant.  A successful retry is
//! recorded in [`TraversalStats::shard_fallbacks`]; a shard whose retry *also* dies fails the
//! checked entry point with the shard index
//! ([`QueryError::ShardPanicked`](crate::QueryError::ShardPanicked) through
//! [`TraversalEngine::try_trace`](crate::TraversalEngine::try_trace)), while the plain entry
//! points keep their original panic.  Workers call
//! [`fault::shard_checkpoint`](crate::fault) on entry — one relaxed atomic load — so the
//! deterministic chaos harness can poison a chosen shard.
//!
//! The policy API reaches this machinery through
//! [`TraversalEngine::trace`](crate::TraversalEngine::trace) (and the other engines' policy
//! entry points); the pre-policy free functions (`trace_rays_parallel`,
//! `trace_shadow_rays_parallel`, `trace_fused_parallel`, `trace_packet_parallel`) survive as
//! deprecated shims over the same internals.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use rayflex_core::PipelineConfig;
use rayflex_geometry::{Ray, RayPacket, Triangle};

use crate::fault;
use crate::policy::CoherenceMode;
use crate::scene::SceneView;
use crate::traversal::{TraceRequest, TraversalEngine, TraversalHit, TraversalStats};
use crate::{Bvh4, ExecPolicy};

/// Target chunks per worker in the work-stealing pool: enough surplus that a worker finishing
/// early has something to steal, small enough that chunk bookkeeping stays negligible next to
/// the [`MIN_RAYS_PER_SHARD`] floor.
pub const CHUNKS_PER_WORKER: usize = 4;

/// Utilisation counters of one work-stealing pool run — how the chunks moved, not what they
/// computed.  Deliberately separate from [`TraversalStats`]: domain statistics are mode- and
/// schedule-invariant (pinned by the policy matrix tests), while steal counts depend on thread
/// timing.  Merged across runs like the plain-`u64` `TraversalStats` sums.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the pool spawned.
    pub workers: u64,
    /// Chunks executed through the pool.
    pub chunks: u64,
    /// Chunks a worker took from another worker's deque instead of its own.
    pub steals: u64,
}

impl PoolStats {
    /// Accumulates another run's counters (plain summation, commutative like
    /// [`TraversalStats::merge`]).
    pub fn merge(&mut self, other: &PoolStats) {
        self.workers += other.workers;
        self.chunks += other.chunks;
        self.steals += other.steals;
    }
}

/// Cuts `0..total` into contiguous chunks for `workers` workers: up to [`CHUNKS_PER_WORKER`] per
/// worker so the pool has slack to steal, but never more than `total / min_per_chunk` so no chunk
/// drops below the profitable floor (the remainder chunk may run short, exactly like the old
/// fixed sharding).
fn chunk_ranges(
    total: usize,
    workers: usize,
    min_per_chunk: usize,
) -> Vec<core::ops::Range<usize>> {
    if total == 0 {
        return Vec::new();
    }
    let by_floor = (total / min_per_chunk.max(1)).max(1);
    let chunk_count = (workers * CHUNKS_PER_WORKER).clamp(1, by_floor);
    let chunk_len = total.div_ceil(chunk_count).max(1);
    (0..total)
        .step_by(chunk_len)
        .map(|begin| begin..(begin + chunk_len).min(total))
        .collect()
}

/// The work-stealing pool core: runs `work` over every chunk on up to `workers` scoped threads
/// and returns the per-chunk results **in chunk order** plus the pool's utilisation counters.
///
/// Chunks are dealt round-robin onto per-worker deques; a worker pops its own deque from the
/// front (preserving the locality of the initial deal) and, when empty, steals from the back of
/// the first non-empty victim deque.  Every chunk runs under [`fault::shard_checkpoint`] with its
/// *global chunk index* — deterministic no matter which worker executes it — and inside a
/// per-chunk `catch_unwind`, so a poisoned chunk never takes its worker (or sibling chunks) down:
/// the slot stays `None` and the caller decides the retry semantics.
fn steal_map<C: Sync, R: Send>(
    chunks: &[C],
    workers: usize,
    work: impl Fn(&C) -> R + Sync,
) -> (Vec<Option<R>>, PoolStats) {
    let workers = workers.clamp(1, chunks.len().max(1));
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for index in 0..chunks.len() {
        lock_queue(&queues[index % workers]).push_back(index);
    }
    let mut results: Vec<Option<R>> = (0..chunks.len()).map(|_| None).collect();
    let mut pool = PoolStats {
        workers: workers as u64,
        chunks: chunks.len() as u64,
        steals: 0,
    };
    let work = &work;
    let queues = &queues;
    let worker_outputs = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut steals = 0u64;
                    loop {
                        let mut next = lock_queue(&queues[worker]).pop_front();
                        if next.is_none() {
                            for offset in 1..workers {
                                let victim = (worker + offset) % workers;
                                if let Some(stolen) = lock_queue(&queues[victim]).pop_back() {
                                    steals += 1;
                                    next = Some(stolen);
                                    break;
                                }
                            }
                        }
                        let Some(index) = next else { break };
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            fault::shard_checkpoint(index);
                            work(&chunks[index])
                        }));
                        if let Ok(result) = result {
                            local.push((index, result));
                        }
                    }
                    (local, steals)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join())
            .collect::<Vec<_>>()
    });
    // Workers catch per-chunk panics themselves; a join error would mean the scaffold
    // itself died, in which case the worker's chunks simply stay `None` and the caller's
    // retry path owns them.
    for (local, steals) in worker_outputs.into_iter().flatten() {
        pool.steals += steals;
        for (index, result) in local {
            results[index] = Some(result);
        }
    }
    (results, pool)
}

/// Locks a chunk queue, shrugging off mutex poisoning: queue state is just indices, and a
/// poisoned lock only means some chunk panicked *outside* its `catch_unwind` window — the indices
/// themselves are still consistent.
fn lock_queue(queue: &Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
    queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The result triple of a fused closest-hit + any-hit pair trace: the two hit streams (in the
/// caller's ray order) and the summed traversal statistics.
type PairTraceResult = (
    Vec<Option<TraversalHit>>,
    Vec<Option<TraversalHit>>,
    TraversalStats,
);

/// Minimum rays a shard must carry before an extra worker thread pays for itself.  Below this,
/// per-spawn overhead dominates the wavefront's per-ray cost and the batched single-engine path
/// wins (measured on the PR 1 baseline scenes).
pub const MIN_RAYS_PER_SHARD: usize = 256;

/// Stream-aware chunk floor for **any-hit/shadow** streams
/// ([`ShardHint::Auto`](crate::ShardHint::Auto) only): shadow rays retire on their first
/// accepted hit, so on occluded workloads an any-hit ray costs a fraction of the beats of a
/// closest-hit ray — its per-ray retirement rate is roughly twice the closest-hit stream's on
/// the benchmark scenes.  Halving the chunk floor keeps any-hit chunk *work* (not ray count)
/// near the closest-hit floor, yielding more, finer chunks for the stealing pool to balance.
/// Chunk planning never touches outputs or [`TraversalStats`] — only [`PoolStats`] moves.
pub const MIN_ANY_RAYS_PER_SHARD: usize = MIN_RAYS_PER_SHARD / 2;

/// Default worker count: the machine's available parallelism, or 4 if it cannot be queried.
#[must_use]
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(4, usize::from)
}

/// The worker count actually used for `items` work items when `threads` are requested: clamped
/// so every shard carries at least `min_per_shard` items (and never exceeding one worker per
/// item).  A result of 1 means "run inline on the calling thread".  The **single** auto-tuning
/// formula every parallel backend shares, whatever its item granularity (rays, candidate
/// vectors, radius queries).
fn effective_threads_for(threads: usize, items: usize, min_per_shard: usize) -> usize {
    // Floor division: only streams with at least two *full* shards spawn a second worker, so no
    // shard ever drops below the floor.
    let by_shard_size = (items / min_per_shard.max(1)).max(1);
    threads.clamp(1, items.max(1)).min(by_shard_size)
}

/// [`effective_threads_for`] at the traversal granularity ([`MIN_RAYS_PER_SHARD`]).
fn effective_threads(threads: usize, items: usize) -> usize {
    effective_threads_for(threads, items, MIN_RAYS_PER_SHARD)
}

/// The worker count a traversal pair request resolves to — exposed so
/// [`TraversalEngine::trace`] can run small [`ExecMode::Parallel`](crate::ExecMode::Parallel)
/// requests inline on the calling engine (keeping its pools and beat attribution) instead of
/// spinning up a throwaway single worker.
pub(crate) fn pair_effective_threads(closest_len: usize, any_len: usize, threads: usize) -> usize {
    let total = closest_len.max(any_len);
    effective_threads(threads, closest_len + any_len).min(total.max(1))
}

/// Runs `work` over contiguous index ranges covering `0..total` through the work-stealing pool
/// and concatenates the per-chunk hits (in chunk order) with summed statistics — the sharding
/// skeleton of the packet frontend, which materialises each chunk from SoA storage rather than
/// borrowing a slice.
fn shard_map(
    total: usize,
    threads: usize,
    work: impl Fn(core::ops::Range<usize>) -> (Vec<Option<TraversalHit>>, TraversalStats) + Sync,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    let threads = threads.clamp(1, total.max(1));
    let ranges = chunk_ranges(total, threads, MIN_RAYS_PER_SHARD);
    let (results, _pool) = steal_map(&ranges, threads, |range| work(range.clone()));
    let mut hits = Vec::with_capacity(total);
    let mut stats = TraversalStats::default();
    for (range, result) in ranges.iter().zip(results) {
        let (chunk_hits, chunk_stats) = match result {
            Some(result) => result,
            None => {
                // The chunk panicked; the work is deterministic, so one inline retry of just
                // this range reproduces its results exactly.  A second panic propagates.
                let (hits, mut stats) = work(range.clone());
                stats.shard_fallbacks += 1;
                (hits, stats)
            }
        };
        hits.extend(chunk_hits);
        stats.merge(&chunk_stats);
    }
    (hits, stats)
}

/// Shards `items` into contiguous chunks through the work-stealing pool and collects the
/// per-chunk results in item order, or returns `None` when auto-tuning decides the work should
/// run inline (fewer than two chunks of at least `min_per_shard` items would result).  The
/// skeleton the single-slice parallel backends (the k-NN candidate scorer and the hierarchical
/// filter) share; the traversal pair backend ([`fused_pair_sharded`]) plans its own stream-aware
/// chunk set but drains it through the same pool.  A chunk whose worker panicked is retried once
/// inline (the work is deterministic); a second panic propagates to the caller.
pub(crate) fn shard_chunks<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    min_per_shard: usize,
    work: impl Fn(&[T]) -> R + Sync,
) -> Option<(Vec<R>, PoolStats)> {
    let workers = effective_threads_for(threads, items.len(), min_per_shard);
    if workers <= 1 {
        return None;
    }
    let ranges = chunk_ranges(items.len(), workers, min_per_shard);
    let (results, pool) = steal_map(&ranges, workers, |range| work(&items[range.clone()]));
    let collected = ranges
        .iter()
        .zip(results)
        .map(|(range, result)| result.unwrap_or_else(|| work(&items[range.clone()])))
        .collect();
    Some((collected, pool))
}

/// One chunk of a stream-aware pair plan: the shard hint is resolved *per stream*, so a chunk
/// never straddles the closest/any boundary — a single-kind chunk runs the plain wavefront (the
/// fused run of a single stream reproduces the wavefront loop exactly), and early-retiring
/// shadow chunks free their worker to steal bounce-ray chunks instead of stalling behind them.
#[derive(Debug, Clone)]
enum PairChunk {
    /// A contiguous range of the closest-hit stream.
    Closest(core::ops::Range<usize>),
    /// A contiguous range of the any-hit stream.
    Any(core::ops::Range<usize>),
}

/// The result of a pool-backed pair trace: both hit streams (in the caller's ray order), the
/// summed domain statistics and the pool's utilisation counters.
pub(crate) struct PairPoolTrace {
    /// Closest-hit results, in input order.
    pub closest: Vec<Option<TraversalHit>>,
    /// Any-hit results, in input order.
    pub any: Vec<Option<TraversalHit>>,
    /// Summed traversal statistics (bit-identical to every single-threaded mode).
    pub stats: TraversalStats,
    /// Work-stealing pool utilisation (observability only; empty for inline runs).
    pub pool: PoolStats,
}

/// The [`ExecMode::Parallel`](crate::ExecMode::Parallel) backend for traversal requests: plans a
/// stream-aware chunk set over the (closest-hit, any-hit) pair and drains it through the
/// work-stealing pool, each chunk a private engine running the batched wavefront over its slice.
/// Either stream may be empty and the streams may have different lengths — each stream is
/// chunked independently.
///
/// Returns hits in input order and summed statistics; all bit-identical to every
/// single-threaded execution mode.
///
/// # Panics
///
/// Panics if a worker chunk panics **and** the one-shot scalar retry of its range panics too —
/// the behaviour the pre-hardening code had for any worker panic.  Use
/// [`fused_pair_sharded_checked`] to get the chunk index back instead.
#[allow(clippy::too_many_arguments)] // mirrors the checked variant's full plan description
pub(crate) fn fused_pair_sharded(
    config: PipelineConfig,
    view: SceneView<'_>,
    closest_rays: &[Ray],
    any_rays: &[Ray],
    threads: usize,
    simd_lanes: usize,
    coherence: CoherenceMode,
    stream_aware: bool,
) -> PairPoolTrace {
    fused_pair_sharded_checked(
        config,
        view,
        closest_rays,
        any_rays,
        threads,
        simd_lanes,
        coherence,
        stream_aware,
    )
    .unwrap_or_else(|shard| {
        panic!("fused traversal worker panicked (shard {shard}) and its scalar retry failed")
    })
}

/// [`fused_pair_sharded`] with panic isolation surfaced instead of propagated: a worker chunk
/// that panics is retried once through the scalar reference path (bit-identical results, the
/// fallback counted in [`TraversalStats::shard_fallbacks`]); `Err(shard)` reports the chunk
/// index whose retry *also* panicked — the one failure this layer cannot absorb.
#[allow(clippy::too_many_arguments)] // the full shard plan: geometry, streams, budget, knobs
pub(crate) fn fused_pair_sharded_checked(
    config: PipelineConfig,
    view: SceneView<'_>,
    closest_rays: &[Ray],
    any_rays: &[Ray],
    threads: usize,
    simd_lanes: usize,
    coherence: CoherenceMode,
    stream_aware: bool,
) -> Result<PairPoolTrace, usize> {
    let threads = pair_effective_threads(closest_rays.len(), any_rays.len(), threads);
    if threads <= 1 {
        // Inline single-engine path: one fused (or single-kind wavefront) run on the calling
        // thread — no spawn, no join, identical results.
        let mut engine = TraversalEngine::with_config(config);
        engine.set_simd_lanes(simd_lanes);
        engine.set_coherence(coherence);
        let (closest, any) = if any_rays.is_empty() {
            (
                engine.wavefront_closest_hits(view, closest_rays),
                Vec::new(),
            )
        } else if closest_rays.is_empty() {
            (Vec::new(), engine.wavefront_any_hits(view, any_rays))
        } else {
            engine.fused_pair(
                view,
                closest_rays,
                any_rays,
                0,
                crate::policy::AdmissionOrder::Fifo,
                [0, 0],
            )
        };
        return Ok(PairPoolTrace {
            closest,
            any,
            stats: engine.stats(),
            pool: PoolStats::default(),
        });
    }
    // Stream-aware plan: each stream is chunked independently against the same worker budget,
    // closest chunks first.  Chunk indices — the identity `fault::shard_checkpoint` sees — are
    // fixed by this plan, not by which worker steals what.  Under `stream_aware` (the
    // [`ShardHint::Auto`](crate::ShardHint::Auto) resolution) the any-hit stream plans against
    // its smaller retirement-rate-derived floor.
    let any_floor = if stream_aware {
        MIN_ANY_RAYS_PER_SHARD
    } else {
        MIN_RAYS_PER_SHARD
    };
    let chunks: Vec<PairChunk> = chunk_ranges(closest_rays.len(), threads, MIN_RAYS_PER_SHARD)
        .into_iter()
        .map(PairChunk::Closest)
        .chain(
            chunk_ranges(any_rays.len(), threads, any_floor)
                .into_iter()
                .map(PairChunk::Any),
        )
        .collect();
    let (results, pool) = steal_map(&chunks, threads, |chunk| {
        let mut engine = TraversalEngine::with_config(config);
        engine.set_simd_lanes(simd_lanes);
        engine.set_coherence(coherence);
        let hits = match chunk {
            PairChunk::Closest(range) => {
                engine.wavefront_closest_hits(view, &closest_rays[range.clone()])
            }
            PairChunk::Any(range) => engine.wavefront_any_hits(view, &any_rays[range.clone()]),
        };
        (hits, engine.stats())
    });
    let mut closest = Vec::with_capacity(closest_rays.len());
    let mut any = Vec::with_capacity(any_rays.len());
    let mut stats = TraversalStats::default();
    for (index, (chunk, result)) in chunks.iter().zip(results).enumerate() {
        let (hits, chunk_stats) = match result {
            Some(result) => result,
            None => {
                // The chunk panicked: one scalar-reference retry of just its range, with the
                // fallback recorded.  `Err(index)` if the retry dies too.
                let (closest_range, any_range) = match chunk {
                    PairChunk::Closest(range) => (range.clone(), 0..0),
                    PairChunk::Any(range) => (0..0, range.clone()),
                };
                let (retry_closest, retry_any, retry_stats) = retry_range_scalar(
                    config,
                    view,
                    &closest_rays[closest_range],
                    &any_rays[any_range],
                )
                .ok_or(index)?;
                match chunk {
                    PairChunk::Closest(_) => (retry_closest, retry_stats),
                    PairChunk::Any(_) => (retry_any, retry_stats),
                }
            }
        };
        match chunk {
            PairChunk::Closest(_) => closest.extend(hits),
            PairChunk::Any(_) => any.extend(hits),
        }
        stats.merge(&chunk_stats);
    }
    Ok(PairPoolTrace {
        closest,
        any,
        stats,
        pool,
    })
}

/// The one-shot recovery path for a poisoned traversal shard: re-trace just its index range
/// through the scalar reference mode on a fresh engine — bit-identical hits and statistics by
/// the cross-policy invariant — with the fallback recorded in
/// [`TraversalStats::shard_fallbacks`].  `None` means the retry itself panicked (a persistent
/// fault, not a transient one).
fn retry_range_scalar(
    config: PipelineConfig,
    view: SceneView<'_>,
    closest_rays: &[Ray],
    any_rays: &[Ray],
) -> Option<PairTraceResult> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut engine = TraversalEngine::with_config(config);
        let output = engine.trace(
            &TraceRequest::pair_view(view, closest_rays, any_rays),
            &ExecPolicy::scalar(),
        );
        let mut stats = engine.stats();
        stats.shard_fallbacks += 1;
        (output.closest, output.any, stats)
    }))
    .ok()
}

/// Traces a closest-hit ray stream across up to `threads` parallel workers.
#[deprecated(note = "use TraversalEngine::trace(&TraceRequest::closest_hit(..), \
                     &ExecPolicy::parallel(threads)) — stats come from the engine")]
#[allow(deprecated)] // the shim body calls sibling deprecated constructors
#[must_use]
pub fn trace_rays_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    rays: &[Ray],
    threads: usize,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    let view = SceneView::Flat { bvh, triangles };
    let out = fused_pair_sharded(
        config,
        view,
        rays,
        &[],
        threads,
        1,
        CoherenceMode::default(),
        false,
    );
    (out.closest, out.stats)
}

/// Runs the any-hit/shadow query over a ray stream across up to `threads` parallel workers.
#[deprecated(note = "use TraversalEngine::trace(&TraceRequest::any_hit(..), \
                     &ExecPolicy::parallel(threads)) — stats come from the engine")]
#[allow(deprecated)] // the shim body calls sibling deprecated constructors
#[must_use]
pub fn trace_shadow_rays_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    rays: &[Ray],
    threads: usize,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    let view = SceneView::Flat { bvh, triangles };
    let out = fused_pair_sharded(
        config,
        view,
        &[],
        rays,
        threads,
        1,
        CoherenceMode::default(),
        false,
    );
    (out.any, out.stats)
}

/// Traces a closest-hit stream and an any-hit stream fused, sharded across up to `threads`
/// workers.
#[deprecated(note = "use TraversalEngine::trace(&TraceRequest::pair(..), \
                     &ExecPolicy::parallel(threads)) — stats come from the engine")]
#[allow(deprecated)] // the shim body calls sibling deprecated constructors
#[must_use]
pub fn trace_fused_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    closest_rays: &[Ray],
    any_rays: &[Ray],
    threads: usize,
) -> (
    Vec<Option<TraversalHit>>,
    Vec<Option<TraversalHit>>,
    TraversalStats,
) {
    let view = SceneView::Flat { bvh, triangles };
    let out = fused_pair_sharded(
        config,
        view,
        closest_rays,
        any_rays,
        threads,
        1,
        CoherenceMode::default(),
        false,
    );
    (out.closest, out.any, out.stats)
}

/// Traces a structure-of-arrays [`RayPacket`] closest-hit stream across up to `threads` parallel
/// workers.
///
/// The packet is sharded by **index ranges**: each worker unpacks only its own contiguous SoA
/// slice into a private array-of-structures buffer, so peak AoS memory is one shard rather than
/// the whole stream.  Hits, hit order and summed statistics are bit-identical to tracing the
/// unpacked stream — `RayPacket::get` reconstructs every ray field exactly.
#[deprecated(note = "unpack the packet (RayPacket::to_rays) and use \
                     TraversalEngine::trace(&TraceRequest::closest_hit(..), \
                     &ExecPolicy::parallel(threads))")]
#[allow(deprecated)] // the shim body calls sibling deprecated constructors
#[must_use]
pub fn trace_packet_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    rays: &RayPacket,
    threads: usize,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    let threads = effective_threads(threads, rays.len());
    if threads <= 1 {
        // Single-engine batched fast path: the one shard is the whole stream, unpacked once.
        let unpacked: Vec<Ray> = rays.iter().collect();
        let mut engine = TraversalEngine::with_config(config);
        let hits = engine
            .trace(
                &TraceRequest::closest_hit_flat(bvh, triangles, &unpacked),
                &crate::ExecPolicy::wavefront(),
            )
            .into_closest();
        return (hits, engine.stats());
    }
    shard_map(rays.len(), threads, |range| {
        // SoA slice → per-shard AoS: only this worker's rays are ever materialised.
        let shard: Vec<Ray> = range.map(|i| rays.get(i)).collect();
        let mut engine = TraversalEngine::with_config(config);
        let hits = engine
            .trace(
                &TraceRequest::closest_hit_flat(bvh, triangles, &shard),
                &crate::ExecPolicy::wavefront(),
            )
            .into_closest();
        (hits, engine.stats())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecPolicy;
    use rayflex_geometry::Vec3;

    fn scene() -> Vec<Triangle> {
        (0..64)
            .map(|i| {
                let x = (i % 8) as f32 * 2.0 - 8.0;
                let y = (i / 8) as f32 * 2.0 - 8.0;
                let z = 12.0 + (i % 5) as f32;
                Triangle::new(
                    Vec3::new(x, y, z),
                    Vec3::new(x + 1.8, y, z),
                    Vec3::new(x + 0.9, y + 1.8, z),
                )
            })
            .collect()
    }

    fn camera_rays(n: usize) -> Vec<Ray> {
        (0..n)
            .map(|i| {
                let x = (i % 16) as f32 * 0.8 - 6.4;
                let y = (i / 16) as f32 * 0.8 - 6.4;
                Ray::new(Vec3::new(x, y, 0.0), Vec3::new(0.01, -0.02, 1.0))
            })
            .collect()
    }

    #[test]
    fn parallel_hits_and_stats_match_the_single_threaded_run() {
        let scene = crate::Scene::flat(scene());
        let rays = camera_rays(96);
        let request = TraceRequest::closest_hit(&scene, &rays);
        let mut reference = TraversalEngine::baseline();
        let expected = reference.trace(&request, &ExecPolicy::scalar());
        for threads in [1, 2, 3, 8, 96, 200] {
            let mut engine = TraversalEngine::baseline();
            let got = engine.trace(&request, &ExecPolicy::parallel(threads));
            assert_eq!(got, expected, "threads = {threads}");
            assert_eq!(engine.stats(), reference.stats(), "threads = {threads}");
        }
    }

    #[test]
    fn shadow_streams_shard_like_closest_hit_streams() {
        let scene = crate::Scene::flat(scene());
        // Long enough to force real sharding past the auto-tune threshold.
        let rays: Vec<Ray> = camera_rays(96)
            .into_iter()
            .cycle()
            .take(MIN_RAYS_PER_SHARD * 2)
            .collect();
        let request = TraceRequest::any_hit(&scene, &rays);
        let mut reference = TraversalEngine::baseline();
        let expected = reference.trace(&request, &ExecPolicy::scalar());
        for threads in [1, 2, 7] {
            let mut engine = TraversalEngine::baseline();
            let got = engine.trace(&request, &ExecPolicy::parallel(threads));
            assert_eq!(got, expected, "threads = {threads}");
            assert_eq!(engine.stats(), reference.stats(), "threads = {threads}");
        }
    }

    #[test]
    fn short_streams_fall_back_to_the_single_engine_path() {
        // Below the shard threshold every request degenerates to one inline engine.
        assert_eq!(effective_threads(8, 0), 1);
        assert_eq!(effective_threads(8, 1), 1);
        assert_eq!(effective_threads(8, MIN_RAYS_PER_SHARD), 1);
        assert_eq!(effective_threads(1, 10 * MIN_RAYS_PER_SHARD), 1);
        // A stream must hold two *full* shards before a second worker spawns: no worker may
        // ever receive a shard below the floor.
        assert_eq!(effective_threads(8, 2 * MIN_RAYS_PER_SHARD - 1), 1);
        assert_eq!(effective_threads(8, 2 * MIN_RAYS_PER_SHARD), 2);
        assert_eq!(effective_threads(8, 3 * MIN_RAYS_PER_SHARD - 1), 2);
        assert_eq!(effective_threads(2, 64 * MIN_RAYS_PER_SHARD), 2);
        assert_eq!(effective_threads(0, 2 * MIN_RAYS_PER_SHARD), 1);
        // Every spawned worker's contiguous chunk stays at (or within a worker count of) the
        // floor — ceiling chunking can shave at most `threads - 1` rays off the last shard.
        for items in [513usize, 767, 1000, 1025, 4096] {
            let threads = effective_threads(8, items);
            if threads > 1 {
                let shard_len = items.div_ceil(threads);
                let last = items - shard_len * (threads - 1);
                assert!(
                    last + threads > MIN_RAYS_PER_SHARD,
                    "items {items}: last shard {last}"
                );
            }
        }
    }

    #[test]
    fn fused_pair_sharding_matches_the_single_engine_fused_run() {
        let flat = crate::Scene::flat(scene());
        let config = rayflex_core::PipelineConfig::baseline_unified();
        // Unequal stream lengths and a length past the shard threshold both get exercised.
        for (closest_count, any_count) in [(96, 40), (0, 64), (MIN_RAYS_PER_SHARD * 2, 300)] {
            let closest_rays: Vec<Ray> = camera_rays(96)
                .into_iter()
                .cycle()
                .take(closest_count)
                .collect();
            let any_rays: Vec<Ray> = camera_rays(96)
                .into_iter()
                .cycle()
                .take(any_count)
                .map(|r| Ray::with_extent(r.origin, r.dir, 1e-3, 30.0))
                .collect();
            let request = TraceRequest::pair(&flat, &closest_rays, &any_rays);
            let mut reference = TraversalEngine::with_config(config);
            let expected = reference.trace(&request, &ExecPolicy::fused());
            for threads in [1, 2, 5, 8] {
                let mut engine = TraversalEngine::with_config(config);
                let got = engine.trace(&request, &ExecPolicy::parallel(threads));
                assert_eq!(got, expected, "threads = {threads}");
                assert_eq!(engine.stats(), reference.stats(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn empty_streams_are_fine() {
        let scene = crate::Scene::flat(scene());
        let mut engine = TraversalEngine::baseline();
        let output = engine.trace(
            &TraceRequest::closest_hit(&scene, &[]),
            &ExecPolicy::parallel(8),
        );
        assert!(output.closest.is_empty() && output.any.is_empty());
        assert_eq!(engine.stats(), TraversalStats::default());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_parallel_shims_match_the_policy_path() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let flat = crate::Scene::from_parts(bvh.clone(), triangles.clone());
        let config = rayflex_core::PipelineConfig::baseline_unified();
        // Both a short stream (inline single-engine path) and one long enough to force real
        // range-sharding.
        for count in [40, MIN_RAYS_PER_SHARD * 3 + 17] {
            let rays: Vec<Ray> = camera_rays(96).into_iter().cycle().take(count).collect();
            let packet = RayPacket::from_rays(&rays);
            for threads in [1, 2, 3, 8] {
                let mut engine = TraversalEngine::with_config(config);
                let expected = engine.trace(
                    &TraceRequest::closest_hit(&flat, &rays),
                    &ExecPolicy::parallel(threads),
                );
                let (a, a_stats) = trace_rays_parallel(config, &bvh, &triangles, &rays, threads);
                let (b, b_stats) =
                    trace_packet_parallel(config, &bvh, &triangles, &packet, threads);
                assert_eq!(a, expected.closest, "count {count}, threads {threads}");
                assert_eq!(b, expected.closest, "count {count}, threads {threads}");
                assert_eq!(a_stats, engine.stats(), "count {count}, threads {threads}");
                assert_eq!(b_stats, engine.stats(), "count {count}, threads {threads}");
                let (shadow, shadow_stats) =
                    trace_shadow_rays_parallel(config, &bvh, &triangles, &rays, threads);
                let mut shadow_engine = TraversalEngine::with_config(config);
                let shadow_expected = shadow_engine.trace(
                    &TraceRequest::any_hit(&flat, &rays),
                    &ExecPolicy::parallel(threads),
                );
                assert_eq!(shadow, shadow_expected.any);
                assert_eq!(shadow_stats, shadow_engine.stats());
            }
        }
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
    }

    #[test]
    fn a_poisoned_shard_recovers_bit_identically_through_the_scalar_retry() {
        use crate::fault::{while_armed, FaultKind, FaultPlan};
        let flat = crate::Scene::flat(scene());
        // Two full shards so the parallel mode really spawns two workers.
        let rays: Vec<Ray> = camera_rays(96)
            .into_iter()
            .cycle()
            .take(MIN_RAYS_PER_SHARD * 2)
            .collect();
        let request = TraceRequest::closest_hit(&flat, &rays);
        let mut reference = TraversalEngine::baseline();
        let expected = reference.trace(&request, &ExecPolicy::scalar());

        let plan = FaultPlan::new(FaultKind::PoisonShard(1), 0);
        let mut engine = TraversalEngine::baseline();
        let got = while_armed(&plan, || engine.trace(&request, &ExecPolicy::parallel(2)));
        assert_eq!(got, expected, "recovered hits are bit-identical");
        let mut stats = engine.stats();
        assert_eq!(stats.shard_fallbacks, 1, "the fallback left an audit trail");
        stats.shard_fallbacks = 0;
        assert_eq!(
            stats,
            reference.stats(),
            "beat counts unchanged by recovery"
        );
    }
}
