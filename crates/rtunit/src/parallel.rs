//! Thread-parallel ray-stream tracing — the sharding machinery behind
//! [`ExecMode::Parallel`](crate::ExecMode::Parallel).
//!
//! The datapath model is deterministic and per-ray traversal state is independent, so a ray
//! stream shards trivially: each worker owns a private [`TraversalEngine`] (and therefore a
//! private functional datapath — ray–box and ray–triangle beats carry no cross-beat state) and
//! traverses a contiguous chunk of the stream with the fused wavefront discipline.  Hits are
//! returned in the caller's ray order and per-shard [`TraversalStats`] are summed, so a parallel
//! run reports exactly the same hits and statistics as a single-threaded one — only wall-clock
//! time changes.
//!
//! **Auto-tuned sharding:** spawning workers costs real time, and on one core (or for short
//! streams) the parallel mode used to be *slower* than the plain batched path
//! (`BENCH_baseline.json` of PR 1 showed exactly that on all three scenes).  The sharding
//! therefore clamps the worker count so every shard carries at least [`MIN_RAYS_PER_SHARD`] rays
//! (the remainder shard may run up to `threads - 1` rays short of the floor), and when the
//! effective count is one it runs the batched wavefront inline on the calling thread — no
//! spawn, no join, identical results.
//!
//! Workers are plain `std::thread::scope` threads rather than a `rayon` pool: the build
//! environment vendors no external crates, the fan-out is one spawn per shard (not per task), and
//! scoped threads let the workers borrow the scene directly.  Swapping in `rayon::scope` later is
//! a local change to [`shard_map`].
//!
//! **Panic isolation:** a panicking worker no longer takes the whole query down.  Every join
//! site observes the worker's panic (via the `Err` of [`std::thread::Scope`] join handles) and
//! retries the poisoned shard's index range **once, inline on the calling thread** — for
//! traversal shards through the scalar reference path, whose outputs and statistics are
//! bit-identical to the fused discipline by the cross-policy invariant.  A successful retry is
//! recorded in [`TraversalStats::shard_fallbacks`]; a shard whose retry *also* dies fails the
//! checked entry point with the shard index
//! ([`QueryError::ShardPanicked`](crate::QueryError::ShardPanicked) through
//! [`TraversalEngine::try_trace`](crate::TraversalEngine::try_trace)), while the plain entry
//! points keep their original panic.  Workers call
//! [`fault::shard_checkpoint`](crate::fault) on entry — one relaxed atomic load — so the
//! deterministic chaos harness can poison a chosen shard.
//!
//! The policy API reaches this machinery through
//! [`TraversalEngine::trace`](crate::TraversalEngine::trace) (and the other engines' policy
//! entry points); the pre-policy free functions (`trace_rays_parallel`,
//! `trace_shadow_rays_parallel`, `trace_fused_parallel`, `trace_packet_parallel`) survive as
//! deprecated shims over the same internals.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rayflex_core::PipelineConfig;
use rayflex_geometry::{Ray, RayPacket, Triangle};

use crate::fault;
use crate::traversal::{TraceRequest, TraversalEngine, TraversalHit, TraversalStats};
use crate::{Bvh4, ExecPolicy};

/// The result triple of a fused closest-hit + any-hit pair trace: the two hit streams (in the
/// caller's ray order) and the summed traversal statistics.
type PairTraceResult = (
    Vec<Option<TraversalHit>>,
    Vec<Option<TraversalHit>>,
    TraversalStats,
);

/// Minimum rays a shard must carry before an extra worker thread pays for itself.  Below this,
/// per-spawn overhead dominates the wavefront's per-ray cost and the batched single-engine path
/// wins (measured on the PR 1 baseline scenes).
pub const MIN_RAYS_PER_SHARD: usize = 256;

/// Default worker count: the machine's available parallelism, or 4 if it cannot be queried.
#[must_use]
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(4, usize::from)
}

/// The worker count actually used for `items` work items when `threads` are requested: clamped
/// so every shard carries at least `min_per_shard` items (and never exceeding one worker per
/// item).  A result of 1 means "run inline on the calling thread".  The **single** auto-tuning
/// formula every parallel backend shares, whatever its item granularity (rays, candidate
/// vectors, radius queries).
fn effective_threads_for(threads: usize, items: usize, min_per_shard: usize) -> usize {
    // Floor division: only streams with at least two *full* shards spawn a second worker, so no
    // shard ever drops below the floor.
    let by_shard_size = (items / min_per_shard.max(1)).max(1);
    threads.clamp(1, items.max(1)).min(by_shard_size)
}

/// [`effective_threads_for`] at the traversal granularity ([`MIN_RAYS_PER_SHARD`]).
fn effective_threads(threads: usize, items: usize) -> usize {
    effective_threads_for(threads, items, MIN_RAYS_PER_SHARD)
}

/// The worker count a traversal pair request resolves to — exposed so
/// [`TraversalEngine::trace`] can run small [`ExecMode::Parallel`](crate::ExecMode::Parallel)
/// requests inline on the calling engine (keeping its pools and beat attribution) instead of
/// spinning up a throwaway single worker.
pub(crate) fn pair_effective_threads(closest_len: usize, any_len: usize, threads: usize) -> usize {
    let total = closest_len.max(any_len);
    effective_threads(threads, closest_len + any_len).min(total.max(1))
}

/// Runs `work` over contiguous index ranges covering `0..total` on `threads` scoped workers and
/// concatenates the per-shard hits (in shard order) with summed statistics — the one sharding
/// skeleton every parallel frontend uses, whether the shard is borrowed as a slice (AoS streams)
/// or materialised from SoA storage (packet streams).
fn shard_map(
    total: usize,
    threads: usize,
    work: impl Fn(core::ops::Range<usize>) -> (Vec<Option<TraversalHit>>, TraversalStats) + Sync,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    let threads = threads.clamp(1, total.max(1));
    let shard_len = total.div_ceil(threads);
    let work = &work;
    let shards = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..total)
            .step_by(shard_len.max(1))
            .enumerate()
            .map(|(shard, begin)| {
                let range = begin..(begin + shard_len).min(total);
                let spawned = range.clone();
                let handle = scope.spawn(move || {
                    fault::shard_checkpoint(shard);
                    work(spawned)
                });
                (range, handle)
            })
            .collect();
        handles
            .into_iter()
            .map(|(range, handle)| match handle.join() {
                Ok(result) => result,
                Err(_) => {
                    // The worker died; the work is deterministic, so one inline retry of just
                    // this range reproduces its results exactly.  A second panic propagates.
                    let (hits, mut stats) = work(range);
                    stats.shard_fallbacks += 1;
                    (hits, stats)
                }
            })
            .collect::<Vec<_>>()
    });
    let mut hits = Vec::with_capacity(total);
    let mut stats = TraversalStats::default();
    for (shard_hits, shard_stats) in shards {
        hits.extend(shard_hits);
        stats.merge(&shard_stats);
    }
    (hits, stats)
}

/// Shards `items` into contiguous chunks across scoped workers and collects the per-shard
/// results in shard order, or returns `None` when auto-tuning decides the work should run
/// inline (fewer than two shards of at least `min_per_shard` items would result).  The
/// chunk/spawn/join skeleton the single-slice parallel backends (the k-NN candidate scorer and
/// the hierarchical filter) share; the traversal pair backend ([`fused_pair_sharded`]) keeps
/// its own spawn loop because it shards *two* streams by clamped index ranges, but reuses the
/// same auto-tuning formula ([`effective_threads_for`]).
pub(crate) fn shard_chunks<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    min_per_shard: usize,
    work: impl Fn(&[T]) -> R + Sync,
) -> Option<Vec<R>> {
    let threads = effective_threads_for(threads, items.len(), min_per_shard);
    if threads <= 1 {
        return None;
    }
    let shard_len = items.len().div_ceil(threads);
    let work = &work;
    Some(std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(shard_len)
            .enumerate()
            .map(|(index, shard)| {
                let handle = scope.spawn(move || {
                    fault::shard_checkpoint(index);
                    work(shard)
                });
                (shard, handle)
            })
            .collect();
        handles
            .into_iter()
            .map(|(shard, handle)| {
                // Panic isolation: a dead worker's chunk is retried once inline (the work is
                // deterministic); a second panic propagates to the caller.
                handle.join().unwrap_or_else(|_| work(shard))
            })
            .collect()
    }))
}

/// The [`ExecMode::Parallel`](crate::ExecMode::Parallel) backend for traversal requests: shards
/// the (closest-hit, any-hit) pair index space contiguously across up to `threads` workers, each
/// worker a private engine running the fused discipline over its slice of *both* streams — every
/// shard models a unified RT unit time-multiplexing the two query kinds, and shards run side by
/// side.  Either stream may be empty (the single-kind case degenerates to plain stream
/// sharding); the streams may have different lengths (a worker whose range lies past the end of
/// one stream simply traces the other alone).
///
/// Returns the closest-hit results, the any-hit results (both in input order) and the summed
/// statistics; all three are bit-identical to every single-threaded execution mode.
///
/// # Panics
///
/// Panics if a worker shard panics **and** the one-shot scalar retry of its range panics too —
/// the behaviour the pre-hardening code had for any worker panic.  Use
/// [`fused_pair_sharded_checked`] to get the shard index back instead.
pub(crate) fn fused_pair_sharded(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    closest_rays: &[Ray],
    any_rays: &[Ray],
    threads: usize,
) -> (
    Vec<Option<TraversalHit>>,
    Vec<Option<TraversalHit>>,
    TraversalStats,
) {
    fused_pair_sharded_checked(config, bvh, triangles, closest_rays, any_rays, threads)
        .unwrap_or_else(|shard| {
            panic!("fused traversal worker panicked (shard {shard}) and its scalar retry failed")
        })
}

/// [`fused_pair_sharded`] with panic isolation surfaced instead of propagated: a worker shard
/// that panics is retried once through the scalar reference path (bit-identical results, the
/// fallback counted in [`TraversalStats::shard_fallbacks`]); `Err(shard)` reports the shard
/// index whose retry *also* panicked — the one failure this layer cannot absorb.
pub(crate) fn fused_pair_sharded_checked(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    closest_rays: &[Ray],
    any_rays: &[Ray],
    threads: usize,
) -> Result<PairTraceResult, usize> {
    let total = closest_rays.len().max(any_rays.len());
    let threads = pair_effective_threads(closest_rays.len(), any_rays.len(), threads);
    let clamp = |range: &core::ops::Range<usize>, len: usize| -> core::ops::Range<usize> {
        range.start.min(len)..range.end.min(len)
    };
    // A slice with one empty stream runs the plain wavefront — no fused-scheduler indirection
    // for single-kind work; hits and stats are identical either way (the fused run of a single
    // stream reproduces the wavefront loop exactly).
    let trace_slice = |engine: &mut TraversalEngine,
                       closest: &[Ray],
                       any: &[Ray]|
     -> (Vec<Option<TraversalHit>>, Vec<Option<TraversalHit>>) {
        if any.is_empty() {
            (
                engine.wavefront_closest_hits(bvh, triangles, closest),
                Vec::new(),
            )
        } else if closest.is_empty() {
            (Vec::new(), engine.wavefront_any_hits(bvh, triangles, any))
        } else {
            engine.fused_pair(bvh, triangles, closest, any, 0)
        }
    };
    if threads <= 1 {
        let mut engine = TraversalEngine::with_config(config);
        let (closest, any) = trace_slice(&mut engine, closest_rays, any_rays);
        return Ok((closest, any, engine.stats()));
    }
    let shard_len = total.div_ceil(threads).max(1);
    let shards = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..total)
            .step_by(shard_len)
            .enumerate()
            .map(|(shard, begin)| {
                let range = begin..(begin + shard_len).min(total);
                let closest_range = clamp(&range, closest_rays.len());
                let any_range = clamp(&range, any_rays.len());
                let trace_slice = &trace_slice;
                let spawn_closest = closest_range.clone();
                let spawn_any = any_range.clone();
                let handle = scope.spawn(move || {
                    fault::shard_checkpoint(shard);
                    let mut engine = TraversalEngine::with_config(config);
                    let (closest, any) = trace_slice(
                        &mut engine,
                        &closest_rays[spawn_closest],
                        &any_rays[spawn_any],
                    );
                    (closest, any, engine.stats())
                });
                (shard, closest_range, any_range, handle)
            })
            .collect();
        handles
            .into_iter()
            .map(
                |(shard, closest_range, any_range, handle)| match handle.join() {
                    Ok(result) => Ok(result),
                    Err(_) => retry_range_scalar(
                        config,
                        bvh,
                        triangles,
                        &closest_rays[closest_range],
                        &any_rays[any_range],
                    )
                    .ok_or(shard),
                },
            )
            .collect::<Result<Vec<_>, usize>>()
    })?;
    let mut closest = Vec::with_capacity(closest_rays.len());
    let mut any = Vec::with_capacity(any_rays.len());
    let mut stats = TraversalStats::default();
    for (shard_closest, shard_any, shard_stats) in shards {
        closest.extend(shard_closest);
        any.extend(shard_any);
        stats.merge(&shard_stats);
    }
    Ok((closest, any, stats))
}

/// The one-shot recovery path for a poisoned traversal shard: re-trace just its index range
/// through the scalar reference mode on a fresh engine — bit-identical hits and statistics by
/// the cross-policy invariant — with the fallback recorded in
/// [`TraversalStats::shard_fallbacks`].  `None` means the retry itself panicked (a persistent
/// fault, not a transient one).
fn retry_range_scalar(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    closest_rays: &[Ray],
    any_rays: &[Ray],
) -> Option<PairTraceResult> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut engine = TraversalEngine::with_config(config);
        let output = engine.trace(
            &TraceRequest::pair(bvh, triangles, closest_rays, any_rays),
            &ExecPolicy::scalar(),
        );
        let mut stats = engine.stats();
        stats.shard_fallbacks += 1;
        (output.closest, output.any, stats)
    }))
    .ok()
}

/// Traces a closest-hit ray stream across up to `threads` parallel workers.
#[deprecated(note = "use TraversalEngine::trace(&TraceRequest::closest_hit(..), \
                     &ExecPolicy::parallel(threads)) — stats come from the engine")]
#[must_use]
pub fn trace_rays_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    rays: &[Ray],
    threads: usize,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    let (hits, _, stats) = fused_pair_sharded(config, bvh, triangles, rays, &[], threads);
    (hits, stats)
}

/// Runs the any-hit/shadow query over a ray stream across up to `threads` parallel workers.
#[deprecated(note = "use TraversalEngine::trace(&TraceRequest::any_hit(..), \
                     &ExecPolicy::parallel(threads)) — stats come from the engine")]
#[must_use]
pub fn trace_shadow_rays_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    rays: &[Ray],
    threads: usize,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    let (_, hits, stats) = fused_pair_sharded(config, bvh, triangles, &[], rays, threads);
    (hits, stats)
}

/// Traces a closest-hit stream and an any-hit stream fused, sharded across up to `threads`
/// workers.
#[deprecated(note = "use TraversalEngine::trace(&TraceRequest::pair(..), \
                     &ExecPolicy::parallel(threads)) — stats come from the engine")]
#[must_use]
pub fn trace_fused_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    closest_rays: &[Ray],
    any_rays: &[Ray],
    threads: usize,
) -> (
    Vec<Option<TraversalHit>>,
    Vec<Option<TraversalHit>>,
    TraversalStats,
) {
    fused_pair_sharded(config, bvh, triangles, closest_rays, any_rays, threads)
}

/// Traces a structure-of-arrays [`RayPacket`] closest-hit stream across up to `threads` parallel
/// workers.
///
/// The packet is sharded by **index ranges**: each worker unpacks only its own contiguous SoA
/// slice into a private array-of-structures buffer, so peak AoS memory is one shard rather than
/// the whole stream.  Hits, hit order and summed statistics are bit-identical to tracing the
/// unpacked stream — `RayPacket::get` reconstructs every ray field exactly.
#[deprecated(note = "unpack the packet (RayPacket::to_rays) and use \
                     TraversalEngine::trace(&TraceRequest::closest_hit(..), \
                     &ExecPolicy::parallel(threads))")]
#[must_use]
pub fn trace_packet_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    rays: &RayPacket,
    threads: usize,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    let threads = effective_threads(threads, rays.len());
    if threads <= 1 {
        // Single-engine batched fast path: the one shard is the whole stream, unpacked once.
        let unpacked: Vec<Ray> = rays.iter().collect();
        let mut engine = TraversalEngine::with_config(config);
        let hits = engine
            .trace(
                &TraceRequest::closest_hit(bvh, triangles, &unpacked),
                &crate::ExecPolicy::wavefront(),
            )
            .into_closest();
        return (hits, engine.stats());
    }
    shard_map(rays.len(), threads, |range| {
        // SoA slice → per-shard AoS: only this worker's rays are ever materialised.
        let shard: Vec<Ray> = range.map(|i| rays.get(i)).collect();
        let mut engine = TraversalEngine::with_config(config);
        let hits = engine
            .trace(
                &TraceRequest::closest_hit(bvh, triangles, &shard),
                &crate::ExecPolicy::wavefront(),
            )
            .into_closest();
        (hits, engine.stats())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecPolicy;
    use rayflex_geometry::Vec3;

    fn scene() -> Vec<Triangle> {
        (0..64)
            .map(|i| {
                let x = (i % 8) as f32 * 2.0 - 8.0;
                let y = (i / 8) as f32 * 2.0 - 8.0;
                let z = 12.0 + (i % 5) as f32;
                Triangle::new(
                    Vec3::new(x, y, z),
                    Vec3::new(x + 1.8, y, z),
                    Vec3::new(x + 0.9, y + 1.8, z),
                )
            })
            .collect()
    }

    fn camera_rays(n: usize) -> Vec<Ray> {
        (0..n)
            .map(|i| {
                let x = (i % 16) as f32 * 0.8 - 6.4;
                let y = (i / 16) as f32 * 0.8 - 6.4;
                Ray::new(Vec3::new(x, y, 0.0), Vec3::new(0.01, -0.02, 1.0))
            })
            .collect()
    }

    #[test]
    fn parallel_hits_and_stats_match_the_single_threaded_run() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let rays = camera_rays(96);
        let request = TraceRequest::closest_hit(&bvh, &triangles, &rays);
        let mut reference = TraversalEngine::baseline();
        let expected = reference.trace(&request, &ExecPolicy::scalar());
        for threads in [1, 2, 3, 8, 96, 200] {
            let mut engine = TraversalEngine::baseline();
            let got = engine.trace(&request, &ExecPolicy::parallel(threads));
            assert_eq!(got, expected, "threads = {threads}");
            assert_eq!(engine.stats(), reference.stats(), "threads = {threads}");
        }
    }

    #[test]
    fn shadow_streams_shard_like_closest_hit_streams() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        // Long enough to force real sharding past the auto-tune threshold.
        let rays: Vec<Ray> = camera_rays(96)
            .into_iter()
            .cycle()
            .take(MIN_RAYS_PER_SHARD * 2)
            .collect();
        let request = TraceRequest::any_hit(&bvh, &triangles, &rays);
        let mut reference = TraversalEngine::baseline();
        let expected = reference.trace(&request, &ExecPolicy::scalar());
        for threads in [1, 2, 7] {
            let mut engine = TraversalEngine::baseline();
            let got = engine.trace(&request, &ExecPolicy::parallel(threads));
            assert_eq!(got, expected, "threads = {threads}");
            assert_eq!(engine.stats(), reference.stats(), "threads = {threads}");
        }
    }

    #[test]
    fn short_streams_fall_back_to_the_single_engine_path() {
        // Below the shard threshold every request degenerates to one inline engine.
        assert_eq!(effective_threads(8, 0), 1);
        assert_eq!(effective_threads(8, 1), 1);
        assert_eq!(effective_threads(8, MIN_RAYS_PER_SHARD), 1);
        assert_eq!(effective_threads(1, 10 * MIN_RAYS_PER_SHARD), 1);
        // A stream must hold two *full* shards before a second worker spawns: no worker may
        // ever receive a shard below the floor.
        assert_eq!(effective_threads(8, 2 * MIN_RAYS_PER_SHARD - 1), 1);
        assert_eq!(effective_threads(8, 2 * MIN_RAYS_PER_SHARD), 2);
        assert_eq!(effective_threads(8, 3 * MIN_RAYS_PER_SHARD - 1), 2);
        assert_eq!(effective_threads(2, 64 * MIN_RAYS_PER_SHARD), 2);
        assert_eq!(effective_threads(0, 2 * MIN_RAYS_PER_SHARD), 1);
        // Every spawned worker's contiguous chunk stays at (or within a worker count of) the
        // floor — ceiling chunking can shave at most `threads - 1` rays off the last shard.
        for items in [513usize, 767, 1000, 1025, 4096] {
            let threads = effective_threads(8, items);
            if threads > 1 {
                let shard_len = items.div_ceil(threads);
                let last = items - shard_len * (threads - 1);
                assert!(
                    last + threads > MIN_RAYS_PER_SHARD,
                    "items {items}: last shard {last}"
                );
            }
        }
    }

    #[test]
    fn fused_pair_sharding_matches_the_single_engine_fused_run() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let config = rayflex_core::PipelineConfig::baseline_unified();
        // Unequal stream lengths and a length past the shard threshold both get exercised.
        for (closest_count, any_count) in [(96, 40), (0, 64), (MIN_RAYS_PER_SHARD * 2, 300)] {
            let closest_rays: Vec<Ray> = camera_rays(96)
                .into_iter()
                .cycle()
                .take(closest_count)
                .collect();
            let any_rays: Vec<Ray> = camera_rays(96)
                .into_iter()
                .cycle()
                .take(any_count)
                .map(|r| Ray::with_extent(r.origin, r.dir, 1e-3, 30.0))
                .collect();
            let request = TraceRequest::pair(&bvh, &triangles, &closest_rays, &any_rays);
            let mut reference = TraversalEngine::with_config(config);
            let expected = reference.trace(&request, &ExecPolicy::fused());
            for threads in [1, 2, 5, 8] {
                let mut engine = TraversalEngine::with_config(config);
                let got = engine.trace(&request, &ExecPolicy::parallel(threads));
                assert_eq!(got, expected, "threads = {threads}");
                assert_eq!(engine.stats(), reference.stats(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn empty_streams_are_fine() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let mut engine = TraversalEngine::baseline();
        let output = engine.trace(
            &TraceRequest::closest_hit(&bvh, &triangles, &[]),
            &ExecPolicy::parallel(8),
        );
        assert!(output.closest.is_empty() && output.any.is_empty());
        assert_eq!(engine.stats(), TraversalStats::default());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_parallel_shims_match_the_policy_path() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let config = rayflex_core::PipelineConfig::baseline_unified();
        // Both a short stream (inline single-engine path) and one long enough to force real
        // range-sharding.
        for count in [40, MIN_RAYS_PER_SHARD * 3 + 17] {
            let rays: Vec<Ray> = camera_rays(96).into_iter().cycle().take(count).collect();
            let packet = RayPacket::from_rays(&rays);
            for threads in [1, 2, 3, 8] {
                let mut engine = TraversalEngine::with_config(config);
                let expected = engine.trace(
                    &TraceRequest::closest_hit(&bvh, &triangles, &rays),
                    &ExecPolicy::parallel(threads),
                );
                let (a, a_stats) = trace_rays_parallel(config, &bvh, &triangles, &rays, threads);
                let (b, b_stats) =
                    trace_packet_parallel(config, &bvh, &triangles, &packet, threads);
                assert_eq!(a, expected.closest, "count {count}, threads {threads}");
                assert_eq!(b, expected.closest, "count {count}, threads {threads}");
                assert_eq!(a_stats, engine.stats(), "count {count}, threads {threads}");
                assert_eq!(b_stats, engine.stats(), "count {count}, threads {threads}");
                let (shadow, shadow_stats) =
                    trace_shadow_rays_parallel(config, &bvh, &triangles, &rays, threads);
                let mut shadow_engine = TraversalEngine::with_config(config);
                let shadow_expected = shadow_engine.trace(
                    &TraceRequest::any_hit(&bvh, &triangles, &rays),
                    &ExecPolicy::parallel(threads),
                );
                assert_eq!(shadow, shadow_expected.any);
                assert_eq!(shadow_stats, shadow_engine.stats());
            }
        }
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
    }

    #[test]
    fn a_poisoned_shard_recovers_bit_identically_through_the_scalar_retry() {
        use crate::fault::{while_armed, FaultKind, FaultPlan};
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        // Two full shards so the parallel mode really spawns two workers.
        let rays: Vec<Ray> = camera_rays(96)
            .into_iter()
            .cycle()
            .take(MIN_RAYS_PER_SHARD * 2)
            .collect();
        let request = TraceRequest::closest_hit(&bvh, &triangles, &rays);
        let mut reference = TraversalEngine::baseline();
        let expected = reference.trace(&request, &ExecPolicy::scalar());

        let plan = FaultPlan::new(FaultKind::PoisonShard(1), 0);
        let mut engine = TraversalEngine::baseline();
        let got = while_armed(&plan, || engine.trace(&request, &ExecPolicy::parallel(2)));
        assert_eq!(got, expected, "recovered hits are bit-identical");
        let mut stats = engine.stats();
        assert_eq!(stats.shard_fallbacks, 1, "the fallback left an audit trail");
        stats.shard_fallbacks = 0;
        assert_eq!(
            stats,
            reference.stats(),
            "beat counts unchanged by recovery"
        );
    }
}
