//! Thread-parallel ray-stream tracing.
//!
//! The datapath model is deterministic and per-ray traversal state is independent, so a ray
//! stream shards trivially: each worker owns a private [`TraversalEngine`] (and therefore a
//! private functional datapath — ray–box and ray–triangle beats carry no cross-beat state) and
//! traverses a contiguous chunk of the stream with the wavefront frontend.  Hits are returned in
//! the caller's ray order and per-shard [`TraversalStats`] are summed, so a parallel run reports
//! exactly the same hits and statistics as a single-threaded one — only wall-clock time changes.
//!
//! **Auto-tuned sharding:** spawning workers costs real time, and on one core (or for short
//! streams) the parallel mode used to be *slower* than the plain batched path
//! (`BENCH_baseline.json` of PR 1 showed exactly that on all three scenes).  The entry points
//! therefore clamp the worker count so every shard carries at least [`MIN_RAYS_PER_SHARD`] rays
//! (the remainder shard may run up to `threads - 1` rays short of the floor), and when the
//! effective count is one they run the batched wavefront inline on the calling thread — no
//! spawn, no join, identical results.
//!
//! Workers are plain `std::thread::scope` threads rather than a `rayon` pool: the build
//! environment vendors no external crates, the fan-out is one spawn per shard (not per task), and
//! scoped threads let the workers borrow the scene directly.  Swapping in `rayon::scope` later is
//! a local change to [`shard_map`].
//!
//! Because every traversal query kind runs through the same wavefront scheduler, sharding works
//! for all of them: [`trace_rays_parallel`] drives closest-hit streams and
//! [`trace_shadow_rays_parallel`] drives any-hit/shadow streams with the same machinery.

use rayflex_core::PipelineConfig;
use rayflex_geometry::{Ray, RayPacket, Triangle};

use crate::traversal::{TraversalEngine, TraversalHit, TraversalStats};
use crate::Bvh4;

/// Minimum rays a shard must carry before an extra worker thread pays for itself.  Below this,
/// per-spawn overhead dominates the wavefront's per-ray cost and the batched single-engine path
/// wins (measured on the PR 1 baseline scenes).
pub const MIN_RAYS_PER_SHARD: usize = 256;

/// Default worker count: the machine's available parallelism, or 4 if it cannot be queried.
#[must_use]
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(4, usize::from)
}

/// The worker count actually used for a stream of `items` rays when `threads` are requested:
/// clamped so every shard carries at least [`MIN_RAYS_PER_SHARD`] rays (and never exceeding one
/// worker per ray).  A result of 1 means "run inline on the calling thread".
fn effective_threads(threads: usize, items: usize) -> usize {
    // Floor division: only streams with at least two *full* shards spawn a second worker, so no
    // shard ever drops below the floor.
    let by_shard_size = (items / MIN_RAYS_PER_SHARD).max(1);
    threads.clamp(1, items.max(1)).min(by_shard_size)
}

/// Runs `work` over contiguous index ranges covering `0..total` on `threads` scoped workers and
/// concatenates the per-shard hits (in shard order) with summed statistics — the one sharding
/// skeleton every parallel frontend uses, whether the shard is borrowed as a slice (AoS streams)
/// or materialised from SoA storage (packet streams).
fn shard_map(
    total: usize,
    threads: usize,
    work: impl Fn(core::ops::Range<usize>) -> (Vec<Option<TraversalHit>>, TraversalStats) + Sync,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    let threads = threads.clamp(1, total.max(1));
    let shard_len = total.div_ceil(threads);
    let work = &work;
    let shards = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..total)
            .step_by(shard_len.max(1))
            .map(|begin| {
                let range = begin..(begin + shard_len).min(total);
                scope.spawn(move || work(range))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("traversal worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut hits = Vec::with_capacity(total);
    let mut stats = TraversalStats::default();
    for (shard_hits, shard_stats) in shards {
        hits.extend(shard_hits);
        stats.merge(&shard_stats);
    }
    (hits, stats)
}

/// Shards `rays` across workers running `trace` (one private wavefront engine per worker), or
/// runs `trace` inline when one worker suffices — the shared skeleton of every parallel query
/// kind.
fn trace_sharded(
    config: PipelineConfig,
    rays: &[Ray],
    threads: usize,
    trace: impl Fn(&mut TraversalEngine, &[Ray]) -> Vec<Option<TraversalHit>> + Sync,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    let threads = effective_threads(threads, rays.len());
    if threads <= 1 {
        // Single-engine batched fast path: no spawn/join overhead, identical results.
        let mut engine = TraversalEngine::with_config(config);
        let hits = trace(&mut engine, rays);
        return (hits, engine.stats());
    }
    shard_map(rays.len(), threads, |range| {
        let mut engine = TraversalEngine::with_config(config);
        let hits = trace(&mut engine, &rays[range]);
        (hits, engine.stats())
    })
}

/// Traces a ray stream across up to `threads` parallel workers, each driving its own datapath of
/// the given configuration with the wavefront frontend.  Returns one optional hit per ray (in
/// input order) and the summed statistics of all shards.  When `threads == 1` — or the stream is
/// too short for sharding to pay (see [`MIN_RAYS_PER_SHARD`]) — the stream runs on the batched
/// single-engine path with no thread spawned at all.
///
/// # Example
///
/// ```
/// use rayflex_core::PipelineConfig;
/// use rayflex_geometry::{Ray, Triangle, Vec3};
/// use rayflex_rtunit::{trace_rays_parallel, Bvh4};
///
/// let scene = vec![Triangle::new(
///     Vec3::new(-1.0, -1.0, 3.0),
///     Vec3::new(1.0, -1.0, 3.0),
///     Vec3::new(0.0, 1.0, 3.0),
/// )];
/// let bvh = Bvh4::build(&scene);
/// let rays: Vec<Ray> = (0..64)
///     .map(|i| Ray::new(Vec3::new(0.0, 0.0, -i as f32), Vec3::new(0.0, 0.0, 1.0)))
///     .collect();
/// let (hits, stats) = trace_rays_parallel(
///     PipelineConfig::baseline_unified(),
///     &bvh,
///     &scene,
///     &rays,
///     4,
/// );
/// assert_eq!(hits.len(), 64);
/// assert_eq!(stats.rays, 64);
/// assert!(hits.iter().all(Option::is_some));
/// ```
#[must_use]
pub fn trace_rays_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    rays: &[Ray],
    threads: usize,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    trace_sharded(config, rays, threads, |engine, shard| {
        engine.closest_hits_wavefront(bvh, triangles, shard)
    })
}

/// Runs the any-hit/shadow query over a ray stream across up to `threads` parallel workers (the
/// same auto-tuned sharding as [`trace_rays_parallel`]).  Returns the first accepted hit per ray
/// — `Some` means occluded — and the summed statistics of all shards.
#[must_use]
pub fn trace_shadow_rays_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    rays: &[Ray],
    threads: usize,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    trace_sharded(config, rays, threads, |engine, shard| {
        engine.any_hits_wavefront(bvh, triangles, shard)
    })
}

/// Traces a closest-hit stream and an any-hit stream **fused** ([`TraversalEngine::trace_fused`])
/// across up to `threads` workers: the index space is sharded contiguously, and each worker runs
/// the fused scheduler over its slice of *both* streams on a private datapath — so every shard
/// models a unified RT unit time-multiplexing the two query kinds, and shards run side by side.
///
/// Returns the closest-hit results, the any-hit results (both in input order) and the summed
/// statistics; all three are bit-identical to an unsharded [`TraversalEngine::trace_fused`] run,
/// which is itself bit-identical to sequential scheduling.  The streams may have different
/// lengths (a worker whose range lies past the end of one stream simply traces the other alone).
#[must_use]
pub fn trace_fused_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    closest_rays: &[Ray],
    any_rays: &[Ray],
    threads: usize,
) -> (
    Vec<Option<TraversalHit>>,
    Vec<Option<TraversalHit>>,
    TraversalStats,
) {
    let total = closest_rays.len().max(any_rays.len());
    let threads = effective_threads(threads, closest_rays.len() + any_rays.len()).min(total.max(1));
    let clamp = |range: &core::ops::Range<usize>, len: usize| -> core::ops::Range<usize> {
        range.start.min(len)..range.end.min(len)
    };
    if threads <= 1 {
        let mut engine = TraversalEngine::with_config(config);
        let (closest, any) = engine.trace_fused(bvh, triangles, closest_rays, any_rays);
        return (closest, any, engine.stats());
    }
    let shard_len = total.div_ceil(threads).max(1);
    let shards = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..total)
            .step_by(shard_len)
            .map(|begin| {
                let range = begin..(begin + shard_len).min(total);
                let closest_range = clamp(&range, closest_rays.len());
                let any_range = clamp(&range, any_rays.len());
                scope.spawn(move || {
                    let mut engine = TraversalEngine::with_config(config);
                    let (closest, any) = engine.trace_fused(
                        bvh,
                        triangles,
                        &closest_rays[closest_range],
                        &any_rays[any_range],
                    );
                    (closest, any, engine.stats())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("fused traversal worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut closest = Vec::with_capacity(closest_rays.len());
    let mut any = Vec::with_capacity(any_rays.len());
    let mut stats = TraversalStats::default();
    for (shard_closest, shard_any, shard_stats) in shards {
        closest.extend(shard_closest);
        any.extend(shard_any);
        stats.merge(&shard_stats);
    }
    (closest, any, stats)
}

/// [`trace_rays_parallel`] over a structure-of-arrays [`RayPacket`] stream.
///
/// The packet is sharded by **index ranges**: each worker unpacks only its own contiguous SoA
/// slice into a private array-of-structures buffer, so peak AoS memory is one shard rather than
/// the whole stream (the stream used to be materialised in full before sharding).  Hits, hit
/// order and summed statistics are bit-identical to [`trace_rays_parallel`] over the unpacked
/// stream — `RayPacket::get` reconstructs every ray field exactly.
#[must_use]
pub fn trace_packet_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    rays: &RayPacket,
    threads: usize,
) -> (Vec<Option<TraversalHit>>, TraversalStats) {
    let threads = effective_threads(threads, rays.len());
    if threads <= 1 {
        // Single-engine batched fast path: the one shard is the whole stream, unpacked into the
        // engine's pooled scratch buffer.
        let mut engine = TraversalEngine::with_config(config);
        let hits = engine.closest_hits_stream(bvh, triangles, rays);
        return (hits, engine.stats());
    }
    shard_map(rays.len(), threads, |range| {
        // SoA slice → per-shard AoS: only this worker's rays are ever materialised.
        let shard: Vec<Ray> = range.map(|i| rays.get(i)).collect();
        let mut engine = TraversalEngine::with_config(config);
        let hits = engine.closest_hits_wavefront(bvh, triangles, &shard);
        (hits, engine.stats())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::Vec3;

    fn scene() -> Vec<Triangle> {
        (0..64)
            .map(|i| {
                let x = (i % 8) as f32 * 2.0 - 8.0;
                let y = (i / 8) as f32 * 2.0 - 8.0;
                let z = 12.0 + (i % 5) as f32;
                Triangle::new(
                    Vec3::new(x, y, z),
                    Vec3::new(x + 1.8, y, z),
                    Vec3::new(x + 0.9, y + 1.8, z),
                )
            })
            .collect()
    }

    fn camera_rays(n: usize) -> Vec<Ray> {
        (0..n)
            .map(|i| {
                let x = (i % 16) as f32 * 0.8 - 6.4;
                let y = (i / 16) as f32 * 0.8 - 6.4;
                Ray::new(Vec3::new(x, y, 0.0), Vec3::new(0.01, -0.02, 1.0))
            })
            .collect()
    }

    #[test]
    fn parallel_hits_and_stats_match_the_single_threaded_run() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let rays = camera_rays(96);
        let mut reference = TraversalEngine::baseline();
        let expected = reference.closest_hits(&bvh, &triangles, &rays);
        for threads in [1, 2, 3, 8, 96, 200] {
            let (hits, stats) = trace_rays_parallel(
                PipelineConfig::baseline_unified(),
                &bvh,
                &triangles,
                &rays,
                threads,
            );
            assert_eq!(hits, expected, "threads = {threads}");
            assert_eq!(stats, reference.stats(), "threads = {threads}");
        }
    }

    #[test]
    fn shadow_streams_shard_like_closest_hit_streams() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        // Long enough to force real sharding past the auto-tune threshold.
        let rays: Vec<Ray> = camera_rays(96)
            .into_iter()
            .cycle()
            .take(MIN_RAYS_PER_SHARD * 2)
            .collect();
        let mut reference = TraversalEngine::baseline();
        let expected = reference.any_hits(&bvh, &triangles, &rays);
        for threads in [1, 2, 7] {
            let (hits, stats) = trace_shadow_rays_parallel(
                PipelineConfig::baseline_unified(),
                &bvh,
                &triangles,
                &rays,
                threads,
            );
            assert_eq!(hits, expected, "threads = {threads}");
            assert_eq!(stats, reference.stats(), "threads = {threads}");
        }
    }

    #[test]
    fn short_streams_fall_back_to_the_single_engine_path() {
        // Below the shard threshold every request degenerates to one inline engine.
        assert_eq!(effective_threads(8, 0), 1);
        assert_eq!(effective_threads(8, 1), 1);
        assert_eq!(effective_threads(8, MIN_RAYS_PER_SHARD), 1);
        assert_eq!(effective_threads(1, 10 * MIN_RAYS_PER_SHARD), 1);
        // A stream must hold two *full* shards before a second worker spawns: no worker may
        // ever receive a shard below the floor.
        assert_eq!(effective_threads(8, 2 * MIN_RAYS_PER_SHARD - 1), 1);
        assert_eq!(effective_threads(8, 2 * MIN_RAYS_PER_SHARD), 2);
        assert_eq!(effective_threads(8, 3 * MIN_RAYS_PER_SHARD - 1), 2);
        assert_eq!(effective_threads(2, 64 * MIN_RAYS_PER_SHARD), 2);
        assert_eq!(effective_threads(0, 2 * MIN_RAYS_PER_SHARD), 1);
        // Every spawned worker's contiguous chunk stays at (or within a worker count of) the
        // floor — ceiling chunking can shave at most `threads - 1` rays off the last shard.
        for items in [513usize, 767, 1000, 1025, 4096] {
            let threads = effective_threads(8, items);
            if threads > 1 {
                let shard_len = items.div_ceil(threads);
                let last = items - shard_len * (threads - 1);
                assert!(
                    last + threads > MIN_RAYS_PER_SHARD,
                    "items {items}: last shard {last}"
                );
            }
        }
    }

    #[test]
    fn fused_pair_sharding_matches_the_single_engine_fused_run() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let config = PipelineConfig::baseline_unified();
        // Unequal stream lengths and a length past the shard threshold both get exercised.
        for (closest_count, any_count) in [(96, 40), (0, 64), (MIN_RAYS_PER_SHARD * 2, 300)] {
            let closest_rays: Vec<Ray> = camera_rays(96)
                .into_iter()
                .cycle()
                .take(closest_count)
                .collect();
            let any_rays: Vec<Ray> = camera_rays(96)
                .into_iter()
                .cycle()
                .take(any_count)
                .map(|r| Ray::with_extent(r.origin, r.dir, 1e-3, 30.0))
                .collect();
            let mut reference = TraversalEngine::with_config(config);
            let (expected_closest, expected_any) =
                reference.trace_fused(&bvh, &triangles, &closest_rays, &any_rays);
            for threads in [1, 2, 5, 8] {
                let (closest, any, stats) = trace_fused_parallel(
                    config,
                    &bvh,
                    &triangles,
                    &closest_rays,
                    &any_rays,
                    threads,
                );
                assert_eq!(closest, expected_closest, "threads = {threads}");
                assert_eq!(any, expected_any, "threads = {threads}");
                assert_eq!(stats, reference.stats(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn empty_streams_are_fine() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let (hits, stats) =
            trace_rays_parallel(PipelineConfig::baseline_unified(), &bvh, &triangles, &[], 8);
        assert!(hits.is_empty());
        assert_eq!(stats, TraversalStats::default());
    }

    #[test]
    fn packet_streams_shard_identically() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        // Both a short stream (inline single-engine path) and one long enough to force real
        // range-sharding: the SoA-sliced packet path must agree with the AoS slice path
        // bit-for-bit, hits and stats, at every worker count.
        for count in [40, MIN_RAYS_PER_SHARD * 3 + 17] {
            let rays: Vec<Ray> = camera_rays(96).into_iter().cycle().take(count).collect();
            let packet = RayPacket::from_rays(&rays);
            let config = PipelineConfig::baseline_unified();
            for threads in [1, 2, 3, 8] {
                let (a, a_stats) = trace_rays_parallel(config, &bvh, &triangles, &rays, threads);
                let (b, b_stats) =
                    trace_packet_parallel(config, &bvh, &triangles, &packet, threads);
                assert_eq!(a.len(), b.len(), "count {count}, threads {threads}");
                for (i, (e, g)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(e, g, "count {count}, threads {threads}, ray {i}");
                }
                assert_eq!(a_stats, b_stats, "count {count}, threads {threads}");
            }
        }
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
    }
}
